"""Command-line interface: ``python -m repro <command>``.

Wraps the framework for shell use, mirroring the push-button workflow of
Fig. 8:

* ``datasets``  — list the Table III registry;
* ``preprocess``— DBG + partition + schedule a graph, print the plan;
* ``run``       — execute an application and report throughput;
* ``sweep``     — throughput across all pipeline combinations;
* ``codegen``   — emit the accelerator artifact bundles;
* ``shuhai``    — characterise the HBM channel model;
* ``selfcheck`` — run the post-install correctness matrix;
* ``faultsim``  — inject faults and exercise the resilient runtime;
* ``check``     — run the conformance oracles and trace invariants;
* ``chaos``     — randomized fault soak campaigns (run/replay/report/
  kill-restart);
* ``fleet``     — serve a seeded job stream over a replica pool while
  killing replicas mid-campaign (run/resume/status/report); ``run
  --journal`` write-ahead logs every transition and ``resume`` rebuilds
  a hard-killed soak from its journal (docs/DURABILITY.md);
* ``serve``     — wall-clock HTTP gateway over the fleet kernel:
  tenant API keys and quotas, durable SQLite job store, traffic
  recording, graceful drain on SIGINT/SIGTERM, ``--resume`` after a
  kill -9 (docs/SERVING.md);
* ``traffic``   — record a seeded stream into a ``regraph-traffic/v1``
  bundle, replay a bundle to a bit-identical report digest, or
  summarise one (record/replay/show).

Graphs come either from ``--dataset KEY`` (synthetic Table III stand-ins,
with ``--scale``) or ``--edge-list FILE``.

Exit codes are uniform across commands (docs/TESTING.md): 0 success,
1 oracle/check failure, 2 user or fault error, 3 interrupted or
hard-killed but resumable.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.errors import FleetKilledError, ReproError, RunInterrupted
from repro.graph.datasets import DATASETS, load_dataset, table3_rows
from repro.graph.io import read_edge_list
from repro.hbm.channel import HbmChannelModel
from repro.reporting import format_table


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="Table III key, e.g. HD")
    parser.add_argument("--edge-list", help="path to an edge-list file")
    parser.add_argument(
        "--scale", type=float, default=1 / 32,
        help="dataset scale factor (default 1/32)",
    )
    parser.add_argument("--seed", type=int, default=1)


def _add_platform_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", default="U280", choices=["U280", "U50"])
    parser.add_argument(
        "--buffer-vertices", type=int, default=2048,
        help="destination vertices per Gather PE (scaled default: 2048)",
    )
    parser.add_argument("--pipelines", type=int, default=None)


def _add_perf_arguments(parser: argparse.ArgumentParser) -> None:
    """Uniform execution-acceleration knobs (see docs/PERFORMANCE.md)."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallelizable stages (default 1 = "
             "serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--no-sim-cache", action="store_true",
        help="disable the content-addressed partition-timing cache",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=None, metavar="N",
        help="simulation-cache capacity in entries (default 4096)",
    )
    parser.add_argument(
        "--no-compiled", action="store_true",
        help="disable the compiled simulation core and take the "
             "interpreted reference path (results are bit-identical "
             "either way; this is the escape hatch)",
    )
    parser.add_argument(
        "--shared-cache", default=None, metavar="DIR",
        help="attach a crash-safe on-disk timing store (tier 2) under "
             "DIR, shared across processes; damaged entries are "
             "quarantined, never served (see docs/PERFORMANCE.md)",
    )


def _perf_config(args):
    from repro.perf import DEFAULT_CACHE_ENTRIES, PerfConfig

    entries = args.cache_entries
    if entries is None:
        entries = DEFAULT_CACHE_ENTRIES
    return PerfConfig(
        workers=args.jobs,
        cache_enabled=not args.no_sim_cache,
        cache_entries=entries,
        compiled=not args.no_compiled,
        shared_cache_dir=args.shared_cache,
    )


def _print_cache_stats() -> None:
    """One-line simulation-cache summary (silent when nothing ran)."""
    from repro.perf import get_cache

    stats = get_cache().stats()
    activity = (
        stats["hits"] + stats["misses"] + stats["bypasses"]
        + stats["tier2_hits"]
    )
    if not stats["enabled"] or activity == 0:
        return
    print(f"sim cache: {stats['hits']} hits / {stats['misses']} misses "
          f"(hit rate {stats['hit_rate']:.1%}), "
          f"{stats['entries']}/{stats['max_entries']} entries, "
          f"{stats['bypasses']} fault bypasses")
    shared = stats.get("shared")
    if shared is not None:
        print(f"shared cache [{shared['root']}]: "
              f"{stats['tier2_hits']} tier-2 hits / "
              f"{stats['tier2_misses']} tier-2 misses, "
              f"{shared['entries']} entries on disk, "
              f"{shared['writes']} written, "
              f"{shared['quarantined']} quarantined "
              f"({shared['stale']} stale)")
    from repro.compiled import compiled_stats

    cstats = compiled_stats()
    if cstats["evaluations"] or cstats["plans_compiled"]:
        print(f"compiled core: {cstats['plans_compiled']} plans "
              f"({cstats['nodes_lowered']} nodes) compiled, "
              f"{cstats['evaluations']} batched evaluations, "
              f"{cstats['memo_hits']} memo hits")
    routed = (
        cstats["functional_iterations"] + cstats["functional_fallbacks"]
        + cstats["traces_synthesized"] + cstats["traces_interpreted"]
    )
    if routed:
        print(f"compiled routing: "
              f"{cstats['functional_iterations']} functional iterations "
              f"compiled ({cstats['functional_batches']} batches) / "
              f"{cstats['functional_fallbacks']} interpreted, "
              f"{cstats['traces_synthesized']} traces synthesized / "
              f"{cstats['traces_interpreted']} interpreted")


def _load_graph(args):
    if args.edge_list:
        return read_edge_list(args.edge_list)
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    raise SystemExit("provide --dataset or --edge-list")


def _framework(args) -> ReGraph:
    return ReGraph(
        args.platform,
        pipeline=PipelineConfig(gather_buffer_vertices=args.buffer_vertices),
        num_pipelines=args.pipelines,
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_datasets(_args) -> int:
    rows = table3_rows()
    print(format_table(
        ["key", "name", "V", "E", "D", "type", "category"],
        rows,
        title=f"Table III registry ({len(DATASETS)} datasets)",
    ))
    return 0


def cmd_preprocess(args) -> int:
    graph = _load_graph(args)
    framework = _framework(args)
    pre = framework.preprocess(graph)
    plan = pre.plan
    print(f"graph: V={graph.num_vertices:,} E={graph.num_edges:,}")
    print(f"partitions: {pre.pset.num_partitions} "
          f"({len(plan.dense_indices)} dense, "
          f"{len(plan.sparse_indices)} sparse)")
    print(f"accelerator: {plan.accelerator.label}")
    print(f"resources: LUT {pre.resources.lut_util:.1%} "
          f"BRAM {pre.resources.bram_util:.1%} "
          f"URAM {pre.resources.uram_util:.1%} "
          f"@ {pre.resources.frequency_mhz:.0f} MHz")
    print(f"estimated iteration makespan: {plan.estimated_makespan:,.0f} "
          f"cycles (balance {plan.balance_ratio:.2f})")
    print(f"preprocessing: DBG {pre.dbg_seconds * 1e3:.1f} ms, "
          f"partition+schedule {pre.schedule_seconds * 1e3:.1f} ms")
    return 0


def cmd_run(args) -> int:
    _perf_config(args).apply()
    graph = _load_graph(args)
    framework = _framework(args)
    pre = framework.preprocess(graph)
    app = args.app.lower()
    if app == "pagerank":
        run = framework.run_pagerank(pre, max_iterations=args.iterations)
    elif app == "bfs":
        run = framework.run_bfs(
            pre, root=args.root, max_iterations=args.iterations
        )
    elif app == "closeness":
        run = framework.run_closeness(
            pre, root=args.root, max_iterations=args.iterations
        )
    else:
        raise SystemExit(f"unknown app {args.app!r}")
    print(f"{run.app_name} on {run.graph_name} "
          f"[{run.accel_label} @ {run.frequency_mhz:.0f} MHz]")
    print(f"iterations: {run.iterations} "
          f"({'converged' if run.converged else 'cap reached'})")
    print(f"simulated time: {run.total_seconds * 1e3:.3f} ms")
    print(f"throughput: {run.mteps:,.0f} MTEPS")
    _print_cache_stats()
    return 0


def cmd_sweep(args) -> int:
    from repro.apps.pagerank import PageRank
    from repro.core.system import SystemSimulator
    from repro.sched.scheduler import build_schedule

    _perf_config(args).apply()
    graph = _load_graph(args)
    framework = _framework(args)
    pre = framework.preprocess(graph)
    n_pip = framework.num_pipelines
    rows = []
    for m in range(n_pip + 1):
        plan = build_schedule(
            pre.pset, framework.model, n_pip, forced_combo=(m, n_pip - m)
        )
        sim = SystemSimulator(plan, framework.platform, framework.channel)
        run = sim.run(
            PageRank(pre.graph), max_iterations=5, functional=False
        )
        marker = "<- selected" if (
            plan.accelerator.label == pre.plan.accelerator.label
        ) else ""
        rows.append((plan.accelerator.label, f"{run.mteps:,.0f}", marker))
    print(format_table(
        ["combo", "PR MTEPS", ""],
        rows,
        title=f"pipeline-combination sweep on {graph.name}",
    ))
    _print_cache_stats()
    return 0


def cmd_codegen(args) -> int:
    from repro.arch.platform import get_platform
    from repro.codegen.generator import generate_all_combinations, write_bundle

    platform = get_platform(args.platform)
    bundles = generate_all_combinations(platform)
    for bundle in bundles:
        path = write_bundle(bundle, args.output)
        print(f"wrote {bundle.label:>6} -> {path}")
    return 0


def cmd_selfcheck(args) -> int:
    from repro.verify import all_passed, verify_installation

    results = verify_installation(verbose=True)
    ok = all_passed(results)
    print(f"{sum(r.passed for r in results)}/{len(results)} checks passed")
    return 0 if ok else 1


def cmd_shuhai(_args) -> int:
    from repro.hbm.shuhai import run_shuhai_suite

    report = run_shuhai_suite(HbmChannelModel())
    rows = [
        (r.pattern, r.stride_bytes, f"{r.cycles_per_block:.2f}",
         f"{r.effective_bandwidth_fraction:.1%}", f"{r.latency_cycles:.1f}")
        for r in report.results
    ]
    print(format_table(
        ["pattern", "stride B", "cyc/block", "bandwidth", "latency cyc"],
        rows,
        title="HBM channel characterisation (Shuhai-style)",
    ))
    print(f"latency knee at stride {report.knee_stride_bytes} B")
    return 0


def cmd_faultsim(args) -> int:
    from repro.faults import (
        BitFlipFault,
        DeadChannelFault,
        FaultPlan,
        LatencySpikeFault,
        PipelineStallFault,
    )
    from repro.faults.resilience import ResiliencePolicy

    graph = _load_graph(args)
    framework = _framework(args)
    pre = framework.preprocess(graph)

    # --fault-seed defaults to the graph seed so one --seed value pins
    # the whole invocation; the effective pair is printed either way.
    fault_seed = (
        args.fault_seed if args.fault_seed is not None else args.seed
    )
    dead = tuple(
        DeadChannelFault(channel=c, onset_cycle=args.onset)
        for c in (args.dead_channel or [])
    )
    flips = ()
    if args.bit_flip_rate > 0:
        flips = (BitFlipFault(
            probability=args.bit_flip_rate,
            detectable=not args.silent_flips,
            onset_cycle=args.onset,
        ),)
    stalls = ()
    if args.stall_rate > 0:
        stalls = (PipelineStallFault(
            probability=args.stall_rate,
            pipeline=args.stall_pipeline,
            onset_cycle=args.onset,
        ),)
    spikes = ()
    if args.spike_channel is not None:
        spikes = (LatencySpikeFault(
            channel=args.spike_channel,
            onset_cycle=args.onset,
            duration_cycles=args.spike_duration,
            multiplier=args.spike_multiplier,
        ),)
    fault_plan = FaultPlan(
        seed=fault_seed,
        dead_channels=dead,
        latency_spikes=spikes,
        bit_flips=flips,
        stalls=stalls,
    )
    policy = ResiliencePolicy(
        max_retries=args.retries, watchdog_slack=args.slack
    )

    def _execute(**kwargs):
        app = args.app.lower()
        if app == "pagerank":
            return framework.run_pagerank(
                pre, max_iterations=args.iterations, **kwargs
            )
        if app == "bfs":
            return framework.run_bfs(
                pre, root=args.root, max_iterations=args.iterations, **kwargs
            )
        return framework.run_closeness(
            pre, root=args.root, max_iterations=args.iterations, **kwargs
        )

    clean = _execute()
    run = _execute(fault_plan=fault_plan, resilience=policy)
    health = run.health

    print(f"{run.app_name} on {run.graph_name} under fault plan "
          f"(seed {fault_plan.seed}): {len(dead)} dead channel(s), "
          f"{len(spikes)} latency spike(s), {len(flips)} bit-flip model(s), "
          f"{len(stalls)} stall model(s)")
    print(f"seeds: graph={args.seed} fault={fault_seed} "
          f"(reproduce with --seed {args.seed} --fault-seed {fault_seed})")
    print(f"clean run:   {clean.iterations} iterations, "
          f"{clean.total_cycles:,.0f} cycles, {clean.mteps:,.0f} MTEPS")
    print(f"faulted run: {run.iterations} iterations, "
          f"{run.total_cycles:,.0f} cycles, {run.mteps:,.0f} MTEPS "
          f"({'converged' if run.converged else 'cap reached'})")
    print(f"accelerator: {health.initial_label} -> {health.final_label}"
          + (f" (degraded: {', '.join(health.degraded_pipelines)})"
             if health.degraded_pipelines else ""))
    for f in health.faults:
        print(f"  iter {f.iteration:>3} @ {f.cycle:>12,.0f} cyc  "
              f"[{f.category}] {f.detail}")
    print(f"absorbed: {health.fault_count} faults, {health.retries} retries, "
          f"{health.replans} re-plans, "
          f"{health.checkpoint_restores} checkpoint restores, "
          f"{health.watchdog_trips} watchdog trips, "
          f"{health.breaker_trips} breaker trips")
    open_channels = [
        ch for ch, state in health.channel_breakers.items()
        if state["state"] == "open"
    ]
    if open_channels:
        print(f"open breakers: channel(s) {', '.join(open_channels)}")
    print(f"overhead: {health.overhead_cycles:,.0f} cycles "
          f"({health.overhead_fraction:.1%} of useful work)")
    return 0


def cmd_check(args) -> int:
    from repro.check import ORACLE_APPS, run_conformance

    _perf_config(args).apply()
    apps = None
    if args.app:
        apps = ORACLE_APPS if "all" in args.app else tuple(args.app)
    graphs = None
    if args.edge_list or args.dataset:
        graphs = [_load_graph(args)]
    report = run_conformance(
        device=args.device,
        apps=apps,
        graphs=graphs,
        buffer_vertices=args.buffer_vertices,
        num_pipelines=args.pipelines,
        seed=args.seed,
        quick=args.quick,
    )
    print(format_table(
        ["check", "subject", "status", "detail"],
        report.rows(),
        title=f"conformance on {report.device} "
              f"(apps: {', '.join(report.apps)})",
    ))
    failed_oracles = sum(not r.passed for r in report.results)
    print(f"{report.num_checks - failed_oracles}/{report.num_checks} "
          f"oracle checks passed, "
          f"{len(report.violations)} invariant violation(s)")
    _print_cache_stats()
    return 0 if report.passed else 1


def cmd_chaos(args) -> int:
    if args.chaos_command == "run":
        return _chaos_run(args)
    if args.chaos_command == "replay":
        return _chaos_replay(args)
    if args.chaos_command == "kill-restart":
        return _chaos_kill_restart(args)
    if args.chaos_command == "serve-kill":
        return _chaos_serve_kill(args)
    if args.chaos_command == "cache-poison":
        return _chaos_cache_poison(args)
    return _chaos_report(args)


def _print_campaign_summary(report) -> None:
    rows = []
    for result in report.results:
        health = result.health
        rows.append((
            result.cell_id,
            result.status,
            len(health.get("faults", [])),
            health.get("replans", 0),
            health.get("breaker_trips", 0),
            result.detail[:60] if result.detail else "",
        ))
    print(format_table(
        ["cell", "status", "faults", "re-plans", "breaker trips", "detail"],
        rows,
        title=f"chaos campaign: {report.survived}/{len(report.results)} "
              f"cells survived",
    ))
    counts = report.fault_counts()
    if counts:
        absorbed = ", ".join(
            f"{n} {cat}" for cat, n in sorted(counts.items())
        )
        print(f"faults absorbed: {absorbed}")
    for path in report.bundles:
        print(f"repro bundle: {path}")


def _chaos_run(args) -> int:
    import json

    from repro.chaos import CampaignConfig, run_campaign

    perf = _perf_config(args)
    config = CampaignConfig(
        seed=args.chaos_seed,
        cells=args.cells,
        devices=tuple(args.device or ["U280", "U50"]),
        intensity=args.intensity,
        buffer_vertices=args.buffer_vertices,
        num_pipelines=args.pipelines or 4,
        max_iterations=args.iterations,
    )
    print(f"chaos campaign: {config.cells} cells, seed {config.seed}, "
          f"intensity {config.intensity}, "
          f"devices {'/'.join(config.devices)}"
          + (f", {perf.workers} workers" if perf.parallel else ""))

    def progress(index, total, result):
        if not result.survived:
            print(f"  [{index + 1}/{total}] {result.cell_id}: "
                  f"{result.status} ({result.category})")

    from repro.serving.signals import graceful_interrupts

    with graceful_interrupts():
        # Campaign cells are independent and seeded; an interrupt here
        # surfaces as RunInterrupted -> exit 3 (re-run with the same
        # --chaos-seed to reproduce the full campaign).
        report = run_campaign(
            config,
            bundle_dir=args.bundle_dir,
            shrink_failures=not args.no_shrink,
            max_probes=args.max_probes,
            progress=progress,
            perf=perf,
        )
    _print_campaign_summary(report)
    _print_cache_stats()
    if args.report_json:
        with open(args.report_json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    return 0 if report.passed else 1


def _chaos_replay(args) -> int:
    from repro.chaos import load_bundle, replay_bundle

    bundle = load_bundle(args.bundle)
    cell = bundle["cell"]
    shrink = bundle.get("shrink")
    print(f"replaying {cell['cell_id']}: {cell['app']} on "
          f"{cell['device']} ({cell['graph']['kind']} graph, "
          f"{cell['graph']['vertices']} vertices)")
    if shrink:
        print(f"shrunk plan: {shrink['original_events']} -> "
              f"{shrink['shrunk_events']} fault event(s) "
              f"in {shrink['probes']} probes")
    replay = replay_bundle(bundle)
    print(f"outcome: {replay.result.status}"
          + (f" ({replay.result.category})" if replay.result.category else ""))
    print(f"expected digest: {replay.expected_digest}")
    print(f"actual digest:   {replay.actual_digest}")
    print("failure reproduced bit-for-bit" if replay.reproduced
          else "DIGEST MISMATCH: failure did not reproduce")
    return 0 if replay.reproduced else 1


def _chaos_report(args) -> int:
    import json

    from repro.chaos import CampaignReport

    with open(args.report) as fh:
        report = CampaignReport.from_dict(json.load(fh))
    _print_campaign_summary(report)
    return 0 if report.passed else 1


def _parse_storage_fault(spec: str, default_target: str = "journal"):
    """``KIND[:RECORD][@TARGET]`` -> StorageFault.

    Examples: ``torn-write``, ``bit-flip:5``, ``bit-flip:-1@store``.
    """
    from repro.errors import UserInputError
    from repro.faults.plan import StorageFault

    try:
        body, _, target = spec.partition("@")
        kind, _, record = body.partition(":")
        return StorageFault(
            kind=kind,
            record=int(record) if record else -1,
            target=target or default_target,
        )
    except (ValueError, TypeError) as exc:
        raise UserInputError(
            f"bad --corrupt spec {spec!r} (expected KIND[:RECORD][@TARGET], "
            f"e.g. torn-write or bit-flip:5@store): {exc}"
        ) from exc


def _chaos_kill_restart(args) -> int:
    import json

    from repro.chaos.fleet_soak import FleetSoakConfig
    from repro.chaos.kill_restart import KillRestartConfig, run_kill_restart
    from repro.fleet import FleetPolicy

    config = KillRestartConfig(
        soak=FleetSoakConfig(
            seed=args.fleet_seed,
            jobs=args.num_jobs,
            replicas=tuple(args.replica or ["U280", "U50"]),
            intensity=args.intensity,
            random_kills=args.kills,
            buffer_vertices=args.buffer_vertices,
            num_pipelines=args.pipelines or 4,
            max_iterations=args.iterations,
        ),
        crashes=args.crashes,
        storage_faults=tuple(
            _parse_storage_fault(s) for s in (args.corrupt or [])
        ),
        fsync=not args.no_fsync,
    )
    print(f"kill-restart: {config.soak.jobs} jobs over "
          f"{'/'.join(config.soak.replicas)}, seed {config.soak.seed}, "
          f"{config.crashes} hard kill(s), "
          f"{len(config.storage_faults)} storage fault(s)")
    result = run_kill_restart(
        config, args.workdir, policy=FleetPolicy()
    )
    print(f"crash points (events): "
          f"{', '.join(str(p) for p in result.crash_points)}")
    for line in result.storage_fault_log:
        print(f"  corrupt: {line}")
    print(f"restarts: {result.restarts}, "
          f"results restored from store: {result.results_restored}, "
          f"replay duplicates suppressed: {result.duplicates_suppressed}")
    if result.quarantined_records or result.truncated_bytes:
        print(f"corruption contained: {result.quarantined_records} "
              f"record(s) quarantined, {result.truncated_bytes} tail "
              f"byte(s) truncated"
              + (f" -> {result.quarantine_path}"
                 if result.quarantine_path else ""))
    print(f"reference digest: {result.reference_digest}")
    print(f"recovered digest: {result.final_digest}")
    print(f"oracles: lost={len(result.lost_jobs)} "
          f"duplicates={result.duplicate_results} "
          f"divergences={result.replay_divergences} "
          f"equivalent={'yes' if result.equivalent else 'NO'}")
    if args.report_json:
        with open(args.report_json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    print("kill-restart PASSED: recovery is lossless, exactly-once and "
          "bit-equivalent" if result.passed else "kill-restart FAILED")
    return 0 if result.passed else 1


def _chaos_cache_poison(args) -> int:
    import json

    from repro.chaos.cache_poison import CachePoisonConfig, run_cache_poison

    config = CachePoisonConfig(
        apps=tuple(args.app or ["pagerank", "bfs"]),
        graphs=args.graphs,
        vertices=args.vertices,
        edges=args.edges,
        seed=args.chaos_seed,
        max_iterations=args.iterations,
        bit_flips=args.bit_flips,
        torn_writes=args.torn_writes,
        stale_entries=args.stale_entries,
    )
    print(f"cache-poison: {'/'.join(config.apps)} over "
          f"{config.graphs} graph(s) each, seed {config.seed}, "
          f"damage {config.bit_flips} bit-flip / "
          f"{config.torn_writes} torn / {config.stale_entries} stale")
    result = run_cache_poison(config, args.workdir)
    print(f"seeded {result.entries_seeded} entries; warm rerun served "
          f"{result.tier2_hits_warm} tier-2 hit(s)")
    for line in result.poison_log:
        print(f"  poison: {line}")
    print(f"quarantined: {len(result.quarantined_keys)} bundle(s), "
          f"swept {result.swept_tmp} orphaned tmp file(s), "
          f"scrub quarantined {result.scrub_quarantined} file(s)")
    print(f"reference digest: {result.reference_digest}")
    print(f"poisoned  digest: {result.poisoned_digest}")
    print(f"oracles: digests_equal="
          f"{'yes' if result.digests_equal else 'NO'} "
          f"victims_quarantined="
          f"{'yes' if result.all_victims_quarantined else 'NO'} "
          f"stale_served={result.stale_served}")
    if args.report_json:
        with open(args.report_json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    print("cache-poison PASSED: damage quarantined, never served, "
          "results bit-identical" if result.passed
          else "cache-poison FAILED")
    return 0 if result.passed else 1


def _chaos_serve_kill(args) -> int:
    import json

    from repro.chaos.fleet_soak import FleetSoakConfig
    from repro.chaos.serve_kill import ServeKillConfig, run_serve_kill

    config = ServeKillConfig(
        soak=FleetSoakConfig(
            seed=args.fleet_seed,
            jobs=args.num_jobs,
            replicas=tuple(args.replica or ["U280", "U50"]),
            intensity=args.intensity,
            buffer_vertices=args.buffer_vertices,
            num_pipelines=args.pipelines or 4,
            max_iterations=args.iterations,
        ),
        crash_after_results=args.crash_after,
        storage_fault=(
            _parse_storage_fault(args.corrupt, default_target="traffic")
            if args.corrupt else None
        ),
        fsync=not args.no_fsync,
    )
    print(f"serve-kill: {config.soak.jobs} jobs over "
          f"{'/'.join(config.soak.replicas)}, seed {config.soak.seed}, "
          f"SIGKILL after {config.crash_after_results} durable result(s)"
          + (f", fault {args.corrupt}" if args.corrupt else ""))
    result = run_serve_kill(config, args.workdir)
    print(f"acked before crash: {result.acked}, "
          f"durable results at crash: {result.results_at_crash}")
    if result.storage_fault_log:
        print(f"  corrupt: {result.storage_fault_log}")
    print(f"recovery: {result.accepts_merged_from_traffic} accept(s) "
          f"merged back from the traffic bundle, "
          f"{result.duplicates_suppressed} replay duplicate(s) "
          f"suppressed, {result.corrupt_traffic_lines} corrupt bundle "
          f"line(s) skipped")
    print(f"reference digest: {result.reference_digest}")
    print(f"recovered digest: {result.final_digest}")
    print(f"oracles: lost-acked={len(result.lost_acked)} "
          f"divergences={result.replay_divergences} "
          f"drained={'yes' if result.drained else 'NO'} "
          f"equivalent={'yes' if result.equivalent else 'NO'}")
    if args.report_json:
        with open(args.report_json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    print("serve-kill PASSED: no acknowledged job lost, recovery is "
          "exactly-once and digest-equivalent" if result.passed
          else "serve-kill FAILED")
    return 0 if result.passed else 1


def cmd_fleet(args) -> int:
    if args.fleet_command == "run":
        return _fleet_run(args)
    if args.fleet_command == "resume":
        return _fleet_resume(args)
    if args.fleet_command == "status":
        return _fleet_status(args)
    return _fleet_report(args)


def _parse_kill(spec: str):
    """``INDEX@SECONDS`` (or ``rINDEX@SECONDS``) -> ReplicaKill."""
    from repro.errors import UserInputError
    from repro.fleet import ReplicaKill

    try:
        target, _, when = spec.partition("@")
        if not when:
            raise ValueError("missing '@'")
        replica_id = target if target.startswith("r") else f"r{int(target)}"
        return ReplicaKill(replica_id=replica_id, at_seconds=float(when))
    except (ValueError, TypeError) as exc:
        raise UserInputError(
            f"bad --kill spec {spec!r} (expected INDEX@SECONDS, "
            f"e.g. 1@0.002): {exc}"
        ) from exc


def _print_fleet_summary(report) -> None:
    rows = [
        (
            r["replica_id"], r["device"], r["state"],
            r["jobs_completed"], r["jobs_failed"], r["repairs"],
            r["retired_reason"][:40],
        )
        for r in report.replicas
    ]
    print(format_table(
        ["replica", "device", "state", "done", "failed", "repairs", "note"],
        rows,
        title=f"fleet: {report.completed}/{len(report.jobs)} jobs completed "
              f"({report.rejected} shed, {report.failed} failed, "
              f"{report.lost} lost)",
    ))
    latency = report.latency_percentiles()
    counters = report.counters
    print(f"makespan {report.makespan_seconds * 1e3:.2f} ms virtual, "
          f"{report.jobs_per_second:.0f} jobs/s, "
          f"latency p50 {latency['p50'] * 1e3:.2f} ms / "
          f"p99 {latency['p99'] * 1e3:.2f} ms")
    print(f"failovers {counters.get('failovers', 0)}, "
          f"hedges {counters.get('hedges', 0)} "
          f"({counters.get('hedge_wins', 0)} won), "
          f"canaries {counters.get('canaries', 0)} "
          f"({counters.get('repairs', 0)} repairs), "
          f"replica kills {counters.get('kills', 0)}")
    print("soak PASSED: zero jobs lost, all completions conformance-clean"
          if report.passed else "soak FAILED")


def _fleet_run(args) -> int:
    import json

    from repro.chaos.fleet_soak import FleetSoakConfig, run_fleet_soak
    from repro.fleet import FleetPolicy

    perf = _perf_config(args)
    config = FleetSoakConfig(
        seed=args.fleet_seed,
        jobs=args.num_jobs,
        replicas=tuple(args.replica or ["U280", "U280", "U50"]),
        intensity=args.intensity,
        kills=tuple(_parse_kill(s) for s in (args.kill or [])),
        random_kills=args.kills,
        buffer_vertices=args.buffer_vertices,
        num_pipelines=args.pipelines or 4,
        max_iterations=args.iterations,
    )
    policy = FleetPolicy(
        max_queue_depth=args.max_queue_depth,
        rate_limit_jobs_per_second=args.rate_limit,
        max_attempts=args.max_attempts,
        hedge_enabled=not args.no_hedge,
    )
    print(f"fleet soak: {config.jobs} jobs over "
          f"{len(config.replicas)} replicas "
          f"({'/'.join(config.replicas)}), seed {config.seed}, "
          f"intensity {config.intensity}"
          + (f", {perf.workers} workers" if perf.parallel else "")
          + (f", journaled to {args.journal}" if args.journal else ""))
    if (args.store or args.crash_after) and not args.journal:
        from repro.errors import UserInputError

        raise UserInputError(
            "--store/--crash-after need --journal (recovery replays the "
            "journaled input batch)"
        )
    from repro.serving.signals import graceful_interrupts

    autoscale = None
    if args.autoscale:
        from repro.fleet import AutoscalePolicy

        autoscale = AutoscalePolicy(
            min_replicas=args.autoscale_min,
            max_replicas=args.autoscale_max,
            cooldown_seconds=args.autoscale_cooldown,
        )
    try:
        # SIGINT/SIGTERM raise a typed RunInterrupted instead of dying
        # mid-write: the journal/store appends are atomic-per-record,
        # so whatever is flushed is exactly what resume replays.
        with graceful_interrupts():
            result = run_fleet_soak(
                config, policy, perf=perf,
                journal_path=args.journal,
                store_path=args.store,
                halt_after_events=args.crash_after,
                journal_fsync=not args.no_fsync,
                autoscale=autoscale,
            )
    except (FleetKilledError, RunInterrupted) as exc:
        verb = (
            "interrupted" if isinstance(exc, RunInterrupted)
            else "hard-killed"
        )
        print(f"fleet {verb}: {exc}")
        if args.journal:
            print(f"recover with: repro fleet resume {args.journal}"
                  + (f" --store {args.store}" if args.store else ""))
        return 3
    for kill in result.kills:
        print(f"  kill: {kill.replica_id} at t={kill.at_seconds * 1e3:.2f} ms")
    _print_fleet_summary(result.report)
    _print_perf_stats(result.perf)
    _print_recovery_stats(result.recovery)
    _print_autoscale_stats(result.autoscale)
    if args.report_json:
        with open(args.report_json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    return 0 if result.report.passed else 1


def _print_recovery_stats(recovery: dict) -> None:
    """Durability side-channel line (silent for in-memory runs)."""
    if not recovery:
        return
    print(f"durability: {recovery.get('results_restored', 0)} result(s) "
          f"restored from store, "
          f"{recovery.get('duplicates_suppressed', 0)} replay "
          f"duplicate(s) suppressed, "
          f"{recovery.get('replay_divergences', 0)} divergence(s)")


def _fleet_resume(args) -> int:
    import json

    from repro.fleet import FleetRuntime

    recovered = FleetRuntime.recover(
        args.journal,
        store_path=args.store,
        quarantine_dir=args.quarantine_dir,
    )
    view = recovered.projection
    print(f"recovered journal {args.journal}: "
          f"{len(recovered.jobs)} job(s) in batch, "
          f"{len(view.results)} already terminal, "
          f"{len(view.outstanding)} outstanding, "
          f"{view.recoveries} earlier recovery/recoveries")
    if recovered.repair.quarantined or recovered.repair.truncated_bytes:
        print(f"journal repair: {recovered.repair.quarantined} corrupt "
              f"record(s) quarantined, "
              f"{recovered.repair.truncated_bytes} torn tail byte(s) "
              f"truncated"
              + (f" -> {recovered.repair.quarantine_path}"
                 if recovered.repair.quarantine_path else ""))
    for job_id, info in sorted(view.inflight.items()):
        print(f"  was in flight: {job_id} on {info['replica_id']} "
              f"(attempt {info['attempt']}, {info['kind']})")
    from repro.serving.signals import graceful_interrupts

    try:
        with graceful_interrupts():
            report = recovered.resume(fsync=not args.no_fsync)
    except (FleetKilledError, RunInterrupted) as exc:
        print(f"fleet hard-killed again: {exc}")
        print(f"recover with: repro fleet resume {args.journal}"
              + (f" --store {args.store}" if args.store else ""))
        return 3
    _print_fleet_summary(report)
    _print_recovery_stats(recovered.runtime.recovery_stats)
    if args.report_json:
        with open(args.report_json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    return 0 if report.passed else 1


def _print_perf_stats(perf: dict) -> None:
    """Execution-acceleration line for a soak (silent when absent)."""
    if not perf:
        return
    line = (f"perf: {perf.get('workers', 1)} worker(s), "
            f"{perf.get('prewarmed_specs', 0)} prewarmed spec(s)")
    if perf.get("hits", 0) or perf.get("misses", 0):
        line += (f", sim cache {perf['hits']} hits / "
                 f"{perf['misses']} misses "
                 f"(hit rate {perf.get('hit_rate', 0.0):.1%})")
    if perf.get("bypasses", 0):
        line += f", {perf['bypasses']} fault bypasses"
    print(line)
    placement = perf.get("placement")
    if placement and placement.get("probes", 0):
        print(f"placement probes: {placement['probes']} what-if probes, "
              f"{placement['evaluator_builds']} evaluators built, "
              f"{placement['incremental_refreshes']} incremental "
              f"refreshes ({placement['nodes_reevaluated']} nodes), "
              f"{placement['full_evaluations']} full evaluations")
    shared = perf.get("shared")
    if shared:
        print(f"shared cache [{shared.get('root', '?')}]: "
              f"{perf.get('tier2_hits', 0)} tier-2 hits / "
              f"{perf.get('tier2_misses', 0)} tier-2 misses, "
              f"{shared.get('entries', 0)} entries on disk, "
              f"{shared.get('writes', 0)} written, "
              f"{shared.get('quarantined', 0)} quarantined "
              f"({shared.get('stale', 0)} stale)")


def _print_autoscale_stats(autoscale: dict) -> None:
    """Autoscaler side-channel lines (silent when not attached)."""
    if not autoscale:
        return
    p99 = autoscale.get("p99_latency_seconds")
    print(f"autoscaler: {autoscale.get('spawned', 0)} spawned / "
          f"{autoscale.get('retired', 0)} retired, "
          f"{autoscale.get('warmed_entries', 0)} cache entries "
          f"warm-started"
          + (f", p99 latency {p99 * 1e3:.2f} ms" if p99 else ""))
    for decision in autoscale.get("decisions", []):
        print(f"  {decision['action']}: {decision['replica_id']} "
              f"at t={decision['time'] * 1e3:.2f} ms"
              + (f" (warmed {decision['warmed_entries']})"
                 if "warmed_entries" in decision else ""))


def _load_fleet_report(path):
    """-> (FleetReport, perf dict, autoscale dict) from either layout.

    Missing, empty or undecodable files raise a typed
    :class:`~repro.errors.UserInputError` (one-line message, exit 2)
    instead of surfacing a traceback.
    """
    import json
    import os

    from repro.chaos.fleet_soak import FleetSoakResult
    from repro.errors import UserInputError
    from repro.fleet import FleetReport

    if not os.path.exists(path):
        raise UserInputError(
            f"fleet report not found: {path} (write one with "
            f"`repro fleet run --report-json {path}`)"
        )
    if os.path.getsize(path) == 0:
        raise UserInputError(
            f"fleet report {path} is empty (was the run interrupted "
            "mid-write? re-run `repro fleet run --report-json`)"
        )
    try:
        with open(path) as fh:
            data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise UserInputError(
            f"fleet report {path} is not valid JSON ({exc}); expected a "
            "file written by `repro fleet run --report-json`"
        ) from exc
    if not isinstance(data, dict):
        raise UserInputError(
            f"fleet report {path} does not contain a report object"
        )
    try:
        if "report" in data:
            result = FleetSoakResult.from_dict(data)
            return result.report, result.perf, result.autoscale
        return FleetReport.from_dict(data), {}, {}
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise UserInputError(
            f"fleet report {path} is malformed: {exc!r}"
        ) from exc


def _fleet_status(args) -> int:
    report, perf, autoscale = _load_fleet_report(args.report)
    for r in report.replicas:
        note = f" ({r['retired_reason']})" if r.get("retired_reason") else ""
        print(f"{r['replica_id']} [{r['device']}] {r['state']}{note}: "
              f"{r['jobs_completed']} done, {r['jobs_failed']} failed, "
              f"{r['open_breakers']} open breaker(s)")
    admission = report.admission
    print(f"admission: {admission.get('admitted', 0)}/"
          f"{admission.get('submitted', 0)} admitted, "
          f"{admission.get('shed_queue_depth', 0)} shed on queue depth, "
          f"{admission.get('shed_rate_limit', 0)} rate-limited")
    _print_perf_stats(perf)
    _print_autoscale_stats(autoscale)
    return 0


def _fleet_report(args) -> int:
    report, perf, autoscale = _load_fleet_report(args.report)
    _print_fleet_summary(report)
    _print_perf_stats(perf)
    _print_autoscale_stats(autoscale)
    return 0 if report.passed else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.errors import UserInputError
    from repro.serving import (
        EXIT_RESUMABLE,
        HttpServer,
        ServingConfig,
        ServingGateway,
        TenantSpec,
        install_async_drain,
    )

    if args.resume and not args.store:
        raise UserInputError(
            "--resume needs --store (recovery replays the acknowledged "
            "jobs persisted there, merged with the --record bundle)"
        )
    tenants = tuple(TenantSpec.parse(s) for s in (args.tenant or []))
    kwargs = dict(
        devices=tuple(args.replica or ["U280", "U50"]),
        buffer_vertices=args.buffer_vertices,
        num_pipelines=args.pipelines or 4,
        rate_jobs_per_second=args.rate_limit,
        max_pending=args.max_pending,
        drain_budget_seconds=args.drain_budget,
        store_path=args.store,
        traffic_path=args.record,
        fsync=not args.no_fsync,
    )
    if tenants:
        kwargs["tenants"] = tenants
    config = ServingConfig(**kwargs)

    async def _serve() -> int:
        gateway = ServingGateway(config, resume=args.resume)
        try:
            if args.resume:
                stats = gateway.recovery_stats
                print(f"recovered store {args.store}: "
                      f"{stats['accepts_restored']} accept(s) replayed "
                      f"({stats['accepts_merged_from_traffic']} merged "
                      f"back from the traffic bundle), "
                      f"{stats['duplicates_suppressed']} duplicate(s) "
                      f"suppressed, "
                      f"{stats['replay_divergences']} divergence(s)")
            server = HttpServer(gateway, args.host, args.port)
            await server.start()
            print(f"serving on http://{args.host}:{server.port} "
                  f"({len(config.tenants)} tenant(s); SIGINT/SIGTERM "
                  f"drains within {config.drain_budget_seconds:.0f}s)")
            stop = asyncio.Event()

            def _on_signal(name: str) -> None:
                print(f"{name}: draining — no new submissions; signal "
                      "again to force-quit")
                stop.set()

            uninstall = install_async_drain(
                asyncio.get_running_loop(), _on_signal
            )
            try:
                await stop.wait()
            finally:
                uninstall()
            await server.stop()
            summary = await gateway.drain()
            print(f"drained: {summary['served']} job(s) served, "
                  f"{len(summary['outstanding'])} outstanding"
                  + (f", digest {summary['digest']}"
                     if summary["digest"] else ""))
            if summary["outstanding"]:
                print(f"resume with: repro serve --resume "
                      f"--store {args.store}"
                      + (f" --record {args.record}" if args.record else ""))
            return 0 if summary["drained"] else EXIT_RESUMABLE
        finally:
            gateway.close()

    return asyncio.run(_serve())


def cmd_traffic(args) -> int:
    if args.traffic_command == "record":
        return _traffic_record(args)
    if args.traffic_command == "replay":
        return _traffic_replay(args)
    return _traffic_show(args)


def _traffic_record(args) -> int:
    import asyncio
    import os

    from repro.chaos.fleet_soak import FleetSoakConfig, generate_jobs
    from repro.errors import UserInputError
    from repro.serving import ServingConfig, ServingGateway, TenantSpec

    if os.path.exists(args.bundle) and os.path.getsize(args.bundle) > 0:
        raise UserInputError(
            f"traffic bundle {args.bundle} already exists; recording "
            "never overwrites evidence — pick a fresh path"
        )
    soak = FleetSoakConfig(
        seed=args.fleet_seed,
        jobs=args.num_jobs,
        replicas=tuple(args.replica or ["U280", "U50"]),
        intensity=args.intensity,
        buffer_vertices=args.buffer_vertices,
        num_pipelines=args.pipelines or 4,
        max_iterations=args.iterations,
    )
    payloads = [job.to_dict() for job in generate_jobs(soak)]
    config = ServingConfig(
        devices=soak.replicas,
        buffer_vertices=soak.buffer_vertices,
        num_pipelines=soak.num_pipelines,
        tenants=(TenantSpec(name="recorder", api_key="recorder-key"),),
        traffic_path=args.bundle,
        fsync=not args.no_fsync,
    )

    async def _record() -> dict:
        gateway = ServingGateway(config)
        try:
            for payload in payloads:
                await gateway.submit("recorder-key", payload)
            return await gateway.drain()
        finally:
            gateway.close()

    summary = asyncio.run(_record())
    print(f"recorded {summary['served']} job(s) (seed {soak.seed}) "
          f"-> {args.bundle}")
    print(f"session digest: {summary['digest']}")
    print(f"verify with: repro traffic replay {args.bundle}")
    return 0 if summary["drained"] else 1


def _traffic_replay(args) -> int:
    from repro.serving import replay_traffic

    session, bundle = replay_traffic(args.bundle)
    info = bundle.summary()
    print(f"replayed {info['accepts']} accepted job(s) from "
          f"{args.bundle} ({info['rejects']} reject(s), "
          f"{info['corrupt_lines']} corrupt line(s) skipped)")
    digest = session.digest() if session.served_jobs else ""
    print(f"replayed digest: {digest or '(no jobs)'}")
    if not bundle.drained:
        print("bundle has no traffic-end record (undrained / crashed "
              "run): the replayed digest above is the ground truth")
        return 0
    recorded = info["recorded_digest"]
    print(f"recorded digest: {recorded or '(none)'}")
    print("traffic replay reproduced the live digest bit-for-bit"
          if digest == recorded
          else "DIGEST MISMATCH: the bundle does not reproduce its run")
    return 0 if digest == recorded else 1


def _traffic_show(args) -> int:
    from repro.serving import read_traffic

    bundle = read_traffic(args.bundle)
    info = bundle.summary()
    print(f"traffic bundle {args.bundle} ({info['schema']})")
    print(f"  accepts:  {info['accepts']}")
    print(f"  rejects:  {info['rejects']}")
    print(f"  results:  {info['results']}")
    print(f"  drained:  {'yes' if info['drained'] else 'no'}")
    print(f"  corrupt:  {info['corrupt_lines']} line(s) skipped")
    if info["recorded_digest"]:
        print(f"  digest:   {info['recorded_digest']}")
    for seq, tenant, payload in bundle.accepts:
        print(f"  [{seq:>4}] {payload.get('job_id', '?')} "
              f"({tenant}: {payload.get('app', '?')})")
    return 0


#: Uniform exit-code contract of every subcommand (docs/TESTING.md).
EXIT_CODE_EPILOG = """\
exit codes:
  0  success — the command (and its oracles, if any) passed
  1  a check, oracle or campaign failed (output says which)
  2  user or fault error — one-line message on stderr, no traceback
  3  interrupted (SIGINT/SIGTERM) or hard-killed, but *resumable*:
     durable state is flushed; continue with `repro fleet resume`
     or `repro serve --resume`
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReGraph reproduction: heterogeneous graph pipelines "
                    "on simulated HBM FPGAs",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table III registry")

    p = sub.add_parser("preprocess", help="partition + schedule a graph")
    _add_graph_arguments(p)
    _add_platform_arguments(p)

    p = sub.add_parser("run", help="execute an application")
    _add_graph_arguments(p)
    _add_platform_arguments(p)
    _add_perf_arguments(p)
    p.add_argument("--app", default="pagerank",
                   choices=["pagerank", "bfs", "closeness"])
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--iterations", type=int, default=None)

    p = sub.add_parser("sweep", help="sweep pipeline combinations")
    _add_graph_arguments(p)
    _add_platform_arguments(p)
    _add_perf_arguments(p)

    p = sub.add_parser("codegen", help="emit accelerator bundles")
    p.add_argument("--platform", default="U280", choices=["U280", "U50"])
    p.add_argument("--output", default="generated")

    sub.add_parser("shuhai", help="characterise the HBM channel model")
    sub.add_parser(
        "selfcheck",
        help="run the post-install correctness matrix",
    )

    p = sub.add_parser(
        "faultsim",
        help="inject faults and exercise the resilient runtime",
    )
    _add_graph_arguments(p)
    _add_platform_arguments(p)
    p.add_argument("--app", default="pagerank",
                   choices=["pagerank", "bfs", "closeness"])
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--iterations", type=int, default=None)
    p.add_argument("--fault-seed", type=int, default=None,
                   help="seed of the fault injector's RNG "
                        "(default: the graph --seed)")
    p.add_argument("--dead-channel", type=int, action="append",
                   metavar="CH",
                   help="pseudo-channel that dies at --onset (repeatable)")
    p.add_argument("--bit-flip-rate", type=float, default=0.0,
                   help="per-drain bit-flip probability")
    p.add_argument("--silent-flips", action="store_true",
                   help="flips corrupt data instead of raising (no ECC)")
    p.add_argument("--stall-rate", type=float, default=0.0,
                   help="per-task mid-partition stall probability")
    p.add_argument("--stall-pipeline", type=int, default=None,
                   help="pin stalls to one global pipeline index")
    p.add_argument("--spike-channel", type=int, default=None,
                   help="channel hit by a latency-spike burst")
    p.add_argument("--spike-multiplier", type=float, default=8.0)
    p.add_argument("--spike-duration", type=float, default=100_000.0,
                   help="spike window length in cycles")
    p.add_argument("--onset", type=float, default=0.0,
                   help="cycle at which the configured faults switch on")
    p.add_argument("--retries", type=int, default=3,
                   help="retries per iteration before degrading")
    p.add_argument("--slack", type=float, default=8.0,
                   help="watchdog budget = slack * predicted makespan")

    p = sub.add_parser(
        "check",
        help="run the conformance oracles and trace invariants",
    )
    p.add_argument("--device", default="U280",
                   help="platform to check (U280 or U50, case-insensitive)")
    p.add_argument("--app", action="append",
                   help="oracle app to cross-check (repeatable; 'all' or "
                        "default = every oracle app)")
    p.add_argument("--dataset", help="Table III key to check instead of "
                                     "the seed suite")
    p.add_argument("--edge-list", help="edge-list file to check instead of "
                                       "the seed suite")
    p.add_argument("--scale", type=float, default=1 / 32,
                   help="dataset scale factor (default 1/32)")
    p.add_argument("--seed", type=int, default=1,
                   help="seed of the generated conformance graphs")
    p.add_argument("--buffer-vertices", type=int, default=256,
                   help="destination vertices per Gather PE for the check")
    p.add_argument("--pipelines", type=int, default=4)
    p.add_argument("--quick", action="store_true",
                   help="single-graph smoke suite instead of the full one")
    _add_perf_arguments(p)

    p = sub.add_parser(
        "chaos",
        help="randomized fault soak campaigns with conformance oracles",
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    pr = chaos_sub.add_parser(
        "run", help="generate and execute a seeded campaign"
    )
    pr.add_argument("--cells", type=int, default=50,
                    help="number of campaign cells (default 50)")
    pr.add_argument("--chaos-seed", type=int, default=0,
                    help="campaign seed: determines every cell exactly")
    pr.add_argument("--device", action="append",
                    choices=["U280", "U50"],
                    help="device(s) to cycle through (repeatable; "
                         "default both)")
    pr.add_argument("--intensity", default="moderate",
                    choices=["light", "moderate", "heavy"],
                    help="fault-envelope preset per cell")
    pr.add_argument("--buffer-vertices", type=int, default=256,
                    help="destination vertices per Gather PE")
    pr.add_argument("--pipelines", type=int, default=4)
    pr.add_argument("--iterations", type=int, default=30,
                    help="per-cell iteration cap")
    pr.add_argument("--bundle-dir", default=None,
                    help="directory for repro bundles of failing cells")
    pr.add_argument("--report-json", default=None,
                    help="write the full campaign report as JSON")
    pr.add_argument("--no-shrink", action="store_true",
                    help="bundle failures without delta-debugging them")
    pr.add_argument("--max-probes", type=int, default=48,
                    help="probe budget per shrink (default 48)")
    _add_perf_arguments(pr)

    pp = chaos_sub.add_parser(
        "replay", help="re-execute a repro bundle and verify its digest"
    )
    pp.add_argument("bundle", help="path to a .repro.json bundle")

    pp = chaos_sub.add_parser(
        "report", help="summarise a campaign report JSON"
    )
    pp.add_argument("report", help="path written by chaos run --report-json")

    pk = chaos_sub.add_parser(
        "kill-restart",
        help="hard-kill a journaled fleet soak mid-run, recover from "
             "the journal, assert lossless exactly-once recovery",
    )
    pk.add_argument("--num-jobs", type=int, default=16,
                    help="jobs in the soak stream (default 16)")
    pk.add_argument("--fleet-seed", type=int, default=0,
                    help="soak seed (also seeds the crash points)")
    pk.add_argument("--replica", action="append", metavar="DEVICE",
                    help="device of one pool member (repeatable; "
                         "default U280 U50)")
    pk.add_argument("--intensity", default="moderate",
                    choices=["light", "moderate", "heavy"])
    pk.add_argument("--kills", type=int, default=0,
                    help="seeded random replica kills during the soak")
    pk.add_argument("--crashes", type=int, default=2,
                    help="hard kills of the runtime process (default 2)")
    pk.add_argument("--corrupt", action="append",
                    metavar="KIND[:RECORD][@TARGET]",
                    help="storage fault applied after the matching crash "
                         "(repeatable; kinds torn-write / partial-fsync "
                         "/ bit-flip, target journal or store)")
    pk.add_argument("--iterations", type=int, default=30)
    pk.add_argument("--buffer-vertices", type=int, default=256)
    pk.add_argument("--pipelines", type=int, default=4)
    pk.add_argument("--workdir", default="kill-restart",
                    help="directory for journal, store and quarantine "
                         "(default ./kill-restart)")
    pk.add_argument("--no-fsync", action="store_true",
                    help="skip per-append fsync (faster; determinism "
                         "is unaffected)")
    pk.add_argument("--report-json", default=None,
                    help="write the cell result as JSON")

    pk = chaos_sub.add_parser(
        "serve-kill",
        help="SIGKILL the serving gateway mid-load, resume from the "
             "store+bundle pair, assert lossless digest-equal recovery",
    )
    pk.add_argument("--num-jobs", type=int, default=8,
                    help="jobs in the submitted stream (default 8)")
    pk.add_argument("--fleet-seed", type=int, default=11,
                    help="stream seed (apps/graphs/fault plans)")
    pk.add_argument("--replica", action="append", metavar="DEVICE",
                    help="device of one pool member (repeatable; "
                         "default U280 U50)")
    pk.add_argument("--intensity", default="moderate",
                    choices=["light", "moderate", "heavy"])
    pk.add_argument("--crash-after", type=int, default=3,
                    metavar="RESULTS",
                    help="durable terminal results required before the "
                         "SIGKILL (default 3)")
    pk.add_argument("--corrupt", metavar="KIND[:RECORD][@TARGET]",
                    help="storage fault between death and rebirth: "
                         "kinds torn-write / partial-fsync / bit-flip, "
                         "targets traffic (default) or store-wal")
    pk.add_argument("--iterations", type=int, default=30)
    pk.add_argument("--buffer-vertices", type=int, default=256)
    pk.add_argument("--pipelines", type=int, default=4)
    pk.add_argument("--workdir", default="serve-kill",
                    help="directory for jobs.sqlite and traffic.jsonl "
                         "(on failure they are the evidence)")
    pk.add_argument("--no-fsync", action="store_true",
                    help="skip per-append fsync (faster; determinism "
                         "is unaffected)")
    pk.add_argument("--report-json", default=None,
                    help="write the cell result as JSON")

    pc = chaos_sub.add_parser(
        "cache-poison",
        help="corrupt the shared timing cache (bit rot, torn writes, "
             "stale configs, kill -9 leftovers), assert quarantine "
             "containment and bit-identical results",
    )
    pc.add_argument("--app", action="append", metavar="APP",
                    help="workload app (repeatable; default pagerank bfs)")
    pc.add_argument("--graphs", type=int, default=3,
                    help="seeded graphs per app (default 3)")
    pc.add_argument("--vertices", type=int, default=192)
    pc.add_argument("--edges", type=int, default=768)
    pc.add_argument("--chaos-seed", type=int, default=0,
                    help="seeds graphs AND victim selection")
    pc.add_argument("--iterations", type=int, default=5,
                    help="per-cell iteration cap (default 5)")
    pc.add_argument("--bit-flips", type=int, default=2,
                    help="cache entries damaged by bit rot (default 2)")
    pc.add_argument("--torn-writes", type=int, default=2,
                    help="cache entries with truncated tails (default 2)")
    pc.add_argument("--stale-entries", type=int, default=1,
                    help="intact entries forged with a wrong config "
                         "digest (default 1)")
    pc.add_argument("--workdir", default="cache-poison",
                    help="directory for the shared store and its "
                         "quarantine (default ./cache-poison)")
    pc.add_argument("--report-json", default=None,
                    help="write the cell result as JSON")

    p = sub.add_parser(
        "fleet",
        help="serve a seeded job stream over a replica pool under faults",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    pf = fleet_sub.add_parser(
        "run", help="generate and serve a seeded fleet soak"
    )
    pf.add_argument("--num-jobs", type=int, default=30,
                    help="number of jobs in the stream (default 30)")
    pf.add_argument("--fleet-seed", type=int, default=0,
                    help="soak seed: determines the whole job stream")
    # Deliberately no `choices`: unknown devices flow through
    # init_accelerator, which lists the valid names in its error.
    pf.add_argument("--replica", action="append", metavar="DEVICE",
                    help="device of one pool member (repeatable; "
                         "default U280 U280 U50)")
    pf.add_argument("--intensity", default="moderate",
                    choices=["light", "moderate", "heavy"],
                    help="fault-envelope preset per faulty job")
    pf.add_argument("--kill", action="append", metavar="INDEX@SECONDS",
                    help="kill replica INDEX at a virtual time "
                         "(repeatable, e.g. --kill 1@0.002)")
    pf.add_argument("--kills", type=int, default=0,
                    help="seeded random replica kills (when no --kill)")
    pf.add_argument("--iterations", type=int, default=30,
                    help="per-job iteration cap (must cover convergence; "
                         "the oracles expect converged answers)")
    pf.add_argument("--buffer-vertices", type=int, default=256)
    pf.add_argument("--pipelines", type=int, default=4)
    pf.add_argument("--max-queue-depth", type=int, default=64,
                    help="admission queue bound (deeper backlog is shed)")
    pf.add_argument("--rate-limit", type=float, default=None,
                    help="token-bucket admission rate (jobs per virtual "
                         "second; default unlimited)")
    pf.add_argument("--max-attempts", type=int, default=3,
                    help="dispatches per job before failover exhausts")
    pf.add_argument("--no-hedge", action="store_true",
                    help="disable hedged execution of deadline jobs")
    pf.add_argument("--report-json", default=None,
                    help="write the full fleet report as JSON")
    pf.add_argument("--journal", default=None, metavar="PATH",
                    help="write-ahead journal: every transition is "
                         "durable before it takes effect "
                         "(docs/DURABILITY.md)")
    pf.add_argument("--store", default=None, metavar="PATH",
                    help="durable result store (exactly-once terminal "
                         "results; needs --journal)")
    pf.add_argument("--crash-after", type=int, default=None,
                    metavar="EVENTS",
                    help="chaos: hard-kill the runtime after N loop "
                         "events (exit 3; recover with fleet resume)")
    pf.add_argument("--no-fsync", action="store_true",
                    help="skip per-append fsync on journal/store "
                         "(faster; crash guarantee weakened)")
    pf.add_argument("--autoscale", action="store_true",
                    help="attach the warm-start autoscaler: spawn/retire "
                         "replicas off admission telemetry "
                         "(docs/FLEET.md)")
    pf.add_argument("--autoscale-min", type=int, default=1,
                    metavar="N", help="replica floor (default 1)")
    pf.add_argument("--autoscale-max", type=int, default=8,
                    metavar="N", help="replica ceiling (default 8)")
    pf.add_argument("--autoscale-cooldown", type=float, default=0.5,
                    metavar="SECONDS",
                    help="virtual seconds between scaling actions "
                         "(default 0.5)")
    _add_perf_arguments(pf)

    pf = fleet_sub.add_parser(
        "resume",
        help="recover a hard-killed soak from its journal and finish it",
    )
    pf.add_argument("journal", help="path given to fleet run --journal")
    pf.add_argument("--store", default=None, metavar="PATH",
                    help="result store of the killed run (restores "
                         "exactly-once semantics across the crash)")
    pf.add_argument("--quarantine-dir", default=None, metavar="DIR",
                    help="where corrupt journal records are quarantined "
                         "(default: alongside the journal, skipped when "
                         "clean)")
    pf.add_argument("--no-fsync", action="store_true",
                    help="skip per-append fsync while resuming")
    pf.add_argument("--report-json", default=None,
                    help="write the recovered fleet report as JSON")

    pf = fleet_sub.add_parser(
        "status", help="replica and admission state from a report JSON"
    )
    pf.add_argument("report", help="path written by fleet run --report-json")

    pf = fleet_sub.add_parser(
        "report", help="summarise a fleet report JSON"
    )
    pf.add_argument("report", help="path written by fleet run --report-json")

    p = sub.add_parser(
        "serve",
        help="wall-clock HTTP gateway over the fleet kernel: tenants, "
             "quotas, durable store, graceful drain (docs/SERVING.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8373,
                   help="listen port (0 picks a free one; the bound "
                        "port is printed)")
    p.add_argument("--replica", action="append", metavar="DEVICE",
                   help="device of one pool member (repeatable; "
                        "default U280 U50)")
    p.add_argument("--buffer-vertices", type=int, default=256)
    p.add_argument("--pipelines", type=int, default=4)
    p.add_argument("--tenant", action="append",
                   metavar="NAME:KEY[:RATE[:BURST]]",
                   help="tenant + API key, optional per-tenant admission "
                        "rate in jobs/s (repeatable; default "
                        "demo:demo-key, unmetered)")
    p.add_argument("--rate-limit", type=float, default=None,
                   help="gateway-wide admission rate (jobs per wall "
                        "second; default unlimited)")
    p.add_argument("--max-pending", type=int, default=256,
                   help="jobs allowed to wait across all tenants")
    p.add_argument("--drain-budget", type=float, default=30.0,
                   metavar="SECONDS",
                   help="graceful-drain budget; past it the gateway "
                        "exits with the resumable code 3")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="durable SQLite job/result store: acknowledged "
                        "jobs survive kill -9 (needed by --resume)")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="record accepted traffic into a "
                        "regraph-traffic/v1 bundle (docs/SERVING.md)")
    p.add_argument("--resume", action="store_true",
                   help="before serving, replay the store (merged with "
                        "the --record bundle) through a fresh kernel "
                        "session — recovers a killed gateway")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip fsync on store/bundle appends (faster; "
                        "crash guarantee weakened)")

    p = sub.add_parser(
        "traffic",
        help="record / replay / inspect regraph-traffic/v1 bundles",
    )
    traffic_sub = p.add_subparsers(dest="traffic_command", required=True)

    pt = traffic_sub.add_parser(
        "record",
        help="serve a seeded job stream through a recording gateway",
    )
    pt.add_argument("bundle", help="bundle path to write (must not exist)")
    pt.add_argument("--num-jobs", type=int, default=8)
    pt.add_argument("--fleet-seed", type=int, default=0,
                    help="stream seed: determines every job exactly")
    pt.add_argument("--replica", action="append", metavar="DEVICE",
                    help="device of one pool member (repeatable; "
                         "default U280 U50)")
    pt.add_argument("--intensity", default="moderate",
                    choices=["light", "moderate", "heavy"])
    pt.add_argument("--iterations", type=int, default=30)
    pt.add_argument("--buffer-vertices", type=int, default=256)
    pt.add_argument("--pipelines", type=int, default=4)
    pt.add_argument("--no-fsync", action="store_true")

    pt = traffic_sub.add_parser(
        "replay",
        help="re-serve a bundle through a fresh virtual-clock session "
             "and verify the recorded report digest bit-for-bit",
    )
    pt.add_argument("bundle", help="path written by serve --record or "
                                   "traffic record")

    pt = traffic_sub.add_parser(
        "show", help="summarise a bundle without executing anything"
    )
    pt.add_argument("bundle")
    return parser


_COMMANDS = {
    "datasets": cmd_datasets,
    "preprocess": cmd_preprocess,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "codegen": cmd_codegen,
    "shuhai": cmd_shuhai,
    "selfcheck": cmd_selfcheck,
    "faultsim": cmd_faultsim,
    "check": cmd_check,
    "chaos": cmd_chaos,
    "fleet": cmd_fleet,
    "serve": cmd_serve,
    "traffic": cmd_traffic,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    The exit-code contract is uniform (:data:`EXIT_CODE_EPILOG`,
    docs/TESTING.md): 0 success, 1 oracle/check failure, 2 user or
    fault error (one-line message on stderr, never a traceback),
    3 interrupted-or-killed but resumable.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except RunInterrupted as exc:
        # Graceful SIGINT/SIGTERM: durable state is already flushed
        # (fsync-per-append WAL), so the run is resumable — exit 3,
        # the documented killed-but-resumable code, never a traceback.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 3
    except (ReproError, OSError, KeyError, ValueError) as exc:
        # str(KeyError) wraps the message in quotes; unwrap it.
        detail = (
            str(exc.args[0])
            if isinstance(exc, KeyError) and exc.args
            else str(exc)
        ) or exc.__class__.__name__
        print(f"error: {detail}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
