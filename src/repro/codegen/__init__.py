"""Accelerator code generation (Sec. V-D, Fig. 8 step 2).

Reproduces ReGraph's python-based generation flow up to the vendor
toolchain boundary: for every pipeline combination it emits the kernel
instance list, the kernel-to-SLR placement, the AXI port connectivity in
Vitis ``--connectivity.sp`` style, and HLS-like stub sources carrying the
user's UDFs.  (The real framework would hand these to Vitis; we stop at
the synthesizable-artifact boundary since no toolchain exists offline.)
"""

from repro.codegen.generator import (
    AcceleratorBundle,
    KernelInstance,
    generate_accelerator,
    generate_all_combinations,
    write_bundle,
)
from repro.codegen.slr import DEFAULT_SLR_TABLE, assign_slrs
from repro.codegen.templates import render_kernel_stub, render_udf_header

__all__ = [
    "AcceleratorBundle",
    "KernelInstance",
    "generate_accelerator",
    "generate_all_combinations",
    "write_bundle",
    "DEFAULT_SLR_TABLE",
    "assign_slrs",
    "render_kernel_stub",
    "render_udf_header",
]
