"""Accelerator bundle generation (Sec. V-D).

For a pipeline combination (M Little, N Big) the generator produces:

* the kernel instance list (pipelines, mergers, apply, writer);
* an SLR assignment from the preset mapping table;
* memory-port bindings with the HBM port wrapper (2 ports per pipeline);
* a Vitis-style connectivity config (``--connectivity.sp`` / ``.slr``);
* HLS stub sources and the rendered UDF header.

``generate_all_combinations`` enumerates every (M, N) with
``M + N = N_pip``, mirroring the framework's pre-built accelerator set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import FpgaPlatform
from repro.hbm.ports import bind_ports
from repro.codegen.slr import assign_slrs
from repro.codegen.templates import (
    render_host_stub,
    render_kernel_stub,
    render_makefile,
    render_udf_header,
)


@dataclass(frozen=True)
class KernelInstance:
    """One kernel in the generated design."""

    name: str
    kind: str  # little | big | apply | writer
    slr: int
    ports: List[int]


@dataclass
class AcceleratorBundle:
    """Everything generated for one pipeline combination."""

    label: str
    platform: str
    kernels: List[KernelInstance] = field(default_factory=list)
    connectivity_cfg: str = ""
    udf_header: str = ""
    host_source: str = ""
    makefile: str = ""
    stub_sources: Dict[str, str] = field(default_factory=dict)

    def to_manifest(self) -> dict:
        """JSON-serialisable summary of the bundle."""
        return {
            "label": self.label,
            "platform": self.platform,
            "kernels": [
                {
                    "name": k.name,
                    "kind": k.kind,
                    "slr": k.slr,
                    "ports": k.ports,
                }
                for k in self.kernels
            ],
        }


def _connectivity_lines(kernels: List[KernelInstance]) -> str:
    """Vitis-style connectivity: sp (port) and slr (placement) lines."""
    lines = ["[connectivity]"]
    for kernel in kernels:
        for i, port in enumerate(kernel.ports):
            lines.append(
                f"sp={kernel.name}.gmem{i}:HBM[{port}]"
            )
        lines.append(f"slr={kernel.name}:SLR{kernel.slr}")
    return "\n".join(lines) + "\n"


def generate_accelerator(
    accel: AcceleratorConfig,
    platform: FpgaPlatform,
    udf_exprs: Optional[dict] = None,
) -> AcceleratorBundle:
    """Generate the full artifact bundle for one pipeline combination."""
    names: List[str] = []
    kinds: Dict[str, str] = {}
    for i in range(accel.num_little):
        name = f"little_pipeline_{i}"
        names.append(name)
        kinds[name] = "little"
    for i in range(accel.num_big):
        name = f"big_pipeline_{i}"
        names.append(name)
        kinds[name] = "big"
    names += ["apply_0", "writer_0"]
    kinds["apply_0"] = "apply"
    kinds["writer_0"] = "writer"

    slr_map = assign_slrs(names, platform.slrs)
    binding = bind_ports(accel.total_pipelines, platform.num_ports)

    kernels: List[KernelInstance] = []
    pipe_idx = 0
    for name in names:
        kind = kinds[name]
        if kind in ("little", "big"):
            ports = binding.pipeline_ports[pipe_idx]
            pipe_idx += 1
        elif kind == "apply":
            ports = binding.apply_ports[:2]
        else:
            ports = binding.apply_ports[2:]
        kernels.append(
            KernelInstance(
                name=name, kind=kind, slr=slr_map[name], ports=list(ports)
            )
        )

    udf_exprs = udf_exprs or {}
    header = render_udf_header(**udf_exprs)
    stubs = {
        f"{k.name}.cpp": render_kernel_stub(k.name, k.kind, k.slr, k.ports)
        for k in kernels
    }
    return AcceleratorBundle(
        label=accel.label,
        platform=platform.name,
        kernels=kernels,
        connectivity_cfg=_connectivity_lines(kernels),
        udf_header=header,
        host_source=render_host_stub(
            accel.label, platform.name, accel.total_pipelines
        ),
        makefile=render_makefile(accel.label, platform.name),
        stub_sources=stubs,
    )


def generate_all_combinations(
    platform: FpgaPlatform,
    pipeline: Optional[PipelineConfig] = None,
    udf_exprs: Optional[dict] = None,
) -> List[AcceleratorBundle]:
    """One bundle per (M, N) combination, M from 0 to N_pip."""
    from repro.core.accelerator import enumerate_accelerators

    return [
        generate_accelerator(accel, platform, udf_exprs)
        for accel in enumerate_accelerators(platform, pipeline)
    ]


def write_bundle(bundle: AcceleratorBundle, out_dir) -> Path:
    """Write a bundle's artifacts to disk; returns the bundle directory."""
    root = Path(out_dir) / bundle.label
    root.mkdir(parents=True, exist_ok=True)
    (root / "manifest.json").write_text(
        json.dumps(bundle.to_manifest(), indent=2)
    )
    (root / "connectivity.cfg").write_text(bundle.connectivity_cfg)
    (root / "regraph_udf.h").write_text(bundle.udf_header)
    (root / "host.cpp").write_text(bundle.host_source)
    (root / "Makefile").write_text(bundle.makefile)
    src = root / "src"
    src.mkdir(exist_ok=True)
    for filename, content in bundle.stub_sources.items():
        (src / filename).write_text(content)
    return root
