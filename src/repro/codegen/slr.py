"""Kernel-to-SLR placement (Sec. V-C/V-D).

Modern Alveo cards have multiple super logic regions; ReGraph spreads
kernels evenly across SLRs from a preset mapping table and merges data
within an SLR before crossing (the merge-tree optimisation).  We reproduce
the placement policy: pipelines round-robin over SLRs, the Apply/Writer
pair sits on the SLR adjacent to the HBM stacks (SLR0 on U280).
"""

from __future__ import annotations

from typing import Dict, List

#: Preset kernel-role -> preferred SLR (U280 has SLR0 next to HBM).
DEFAULT_SLR_TABLE: Dict[str, int] = {
    "apply": 0,
    "writer": 0,
    "little_merger": 1,
    "big_merger": 1,
}


def assign_slrs(
    kernel_names: List[str],
    num_slrs: int,
    table: Dict[str, int] = None,
) -> Dict[str, int]:
    """Assign every kernel instance an SLR.

    Named roles follow the preset table (clamped to the SLR count);
    pipeline kernels round-robin so no SLR concentrates the heavy logic.
    """
    if num_slrs < 1:
        raise ValueError("num_slrs must be >= 1")
    table = {**DEFAULT_SLR_TABLE, **(table or {})}
    assignment: Dict[str, int] = {}
    rr = 0
    for name in kernel_names:
        role = name.rsplit("_", 1)[0]
        if role in table:
            assignment[name] = min(table[role], num_slrs - 1)
        elif name in table:
            assignment[name] = min(table[name], num_slrs - 1)
        else:
            assignment[name] = rr % num_slrs
            rr += 1
    return assignment


def crossing_count(
    assignment: Dict[str, int],
    edges: List[tuple],
) -> int:
    """Number of stream connections that cross an SLR boundary.

    ``edges`` are (producer, consumer) kernel-name pairs; the SLR-aware
    merge-tree design exists to minimise this count.
    """
    return sum(
        1 for a, b in edges if assignment.get(a, 0) != assignment.get(b, 0)
    )
