"""Resilient execution: watchdog, retry, checkpoint, degrade.

The :class:`ResilientExecutor` runs an application the same way
:meth:`repro.core.system.SystemSimulator.run` does, but wraps every
iteration in a fault-handling loop:

* **Watchdog** — each iteration gets a cycle budget derived from the
  Eq. 1-4 model's predicted makespan times a slack factor; an iteration
  that exceeds it (latency spikes) or never finishes (stalls, dead
  channels) is reclaimed after charging the budget.
* **Bounded retry with backoff** — transient faults re-run the iteration
  from its checkpoint; each attempt charges the wasted cycles plus an
  exponentially growing backoff, which advances simulated time and lets
  bounded fault windows expire.
* **Checkpointing** — per-iteration vertex state is snapshotted so a
  failed iteration resumes instead of restarting the whole run, and so a
  degraded system picks up exactly where the old one stopped.
* **Graceful degradation** — a permanent fault (dead channel, or a pinned
  fault that exhausts its retries) retires the victim pipeline, re-plans
  the remaining partitions onto the survivors (``M + N`` shrinks) via the
  model-guided scheduler, and revalidates the new plan with
  :func:`repro.sched.serialize.verify_plan_against`.
* **Per-channel circuit breakers** — every fault attributable to a
  pseudo-channel charges that channel's :class:`CircuitBreakerBank`
  entry; a channel whose failure count reaches the policy threshold has
  its breaker *opened* and its pipeline is permanently degraded instead
  of being retried forever.  A bank can be shared across runs (the host
  runtime and the chaos campaign engine do this), in which case channels
  opened by an earlier run are retired before the next run's first
  iteration.

Everything the run survived is accounted in a :class:`RunHealthReport`
attached to the returned :class:`~repro.core.system.RunReport`.  With an
empty :class:`~repro.faults.plan.FaultPlan` the executor follows the
exact cached code path of the plain simulator — zero cycle overhead when
resilience is idle.
"""

from __future__ import annotations

import hashlib
import math
import os
import uuid
import warnings
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    ChannelFaultError,
    FaultInjectedError,
    ResilienceExhaustedError,
    UserInputError,
    WatchdogTimeoutError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sched.scheduler import build_schedule
from repro.sched.serialize import plan_to_dict, verify_plan_against


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunables of the resilient execution layer.

    Every field is validated at construction: a policy that could loop
    forever (negative retries), never advance simulated time (zero or
    negative backoff) or never fire the watchdog (non-finite budget
    factors) raises :class:`~repro.errors.UserInputError` immediately
    instead of silently mis-executing a run.
    """

    #: Retries per iteration before escalating to degradation / giving up.
    max_retries: int = 3
    #: Cycles charged for the first backoff; grows by ``backoff_factor``.
    backoff_base_cycles: float = 10_000.0
    backoff_factor: float = 2.0
    #: Watchdog budget = slack * model-predicted iteration makespan.
    watchdog_slack: float = 8.0
    #: Additive floor so degenerate plans still get a usable budget.
    watchdog_floor_cycles: float = 10_000.0
    #: Snapshot vertex state every this many iterations.
    checkpoint_interval: int = 1
    #: Faults attributed to one channel before its breaker opens and the
    #: owning pipeline is degraded instead of retried again.
    breaker_threshold: int = 5

    def __post_init__(self):
        if self.max_retries < 0:
            raise UserInputError(
                f"max_retries must be >= 0, got {self.max_retries} "
                "(negative retries would loop forever)"
            )
        if (
            not math.isfinite(self.backoff_base_cycles)
            or self.backoff_base_cycles <= 0
        ):
            raise UserInputError(
                "backoff_base_cycles must be a positive finite cycle "
                f"count, got {self.backoff_base_cycles} (zero/negative "
                "backoff never advances simulated time, so bounded fault "
                "windows never expire)"
            )
        if not math.isfinite(self.backoff_factor) or self.backoff_factor < 1.0:
            raise UserInputError(
                f"backoff_factor must be finite and >= 1, got "
                f"{self.backoff_factor} (a shrinking backoff never "
                "advances simulated time past a fault window)"
            )
        if not math.isfinite(self.watchdog_slack) or self.watchdog_slack <= 0:
            raise UserInputError(
                f"watchdog_slack must be a positive finite factor, got "
                f"{self.watchdog_slack} (a non-finite slack means the "
                "watchdog never fires)"
            )
        if (
            not math.isfinite(self.watchdog_floor_cycles)
            or self.watchdog_floor_cycles < 0
        ):
            raise UserInputError(
                "watchdog_floor_cycles must be a non-negative finite "
                f"cycle count, got {self.watchdog_floor_cycles}"
            )
        if self.checkpoint_interval < 1:
            raise UserInputError(
                f"checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if self.breaker_threshold < 1:
            raise UserInputError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )

    def backoff_cycles(self, attempt: int) -> float:
        """Exponential backoff charged before retry ``attempt`` (1-based)."""
        return self.backoff_base_cycles * self.backoff_factor ** (attempt - 1)

    def watchdog_budget(self, estimated_makespan: float) -> float:
        """Per-iteration cycle budget from the Eq. 1-4 estimate."""
        return (
            self.watchdog_slack * max(estimated_makespan, 0.0)
            + self.watchdog_floor_cycles
        )

    def to_dict(self) -> dict:
        """JSON-serialisable description (used by chaos repro bundles)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "ResiliencePolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return ResiliencePolicy(**data)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class CheckpointDiscardWarning(UserWarning):
    """A persisted checkpoint failed verification and was discarded.

    Structured (carries the path and reason) so restore paths can count
    discards in :class:`RunHealthReport` instead of losing them to a
    silent ``continue``."""

    def __init__(self, path, reason: str):
        super().__init__(
            f"discarding checkpoint {path}: {reason} (restore falls "
            "back to an older snapshot)"
        )
        self.path = str(path)
        self.reason = reason


@dataclass
class Checkpoint:
    """Vertex state at the start of one iteration."""

    iteration: int
    props: np.ndarray
    total_cycles: float


def _checkpoint_checksum(
    iteration: int, props: np.ndarray, total_cycles: float
) -> str:
    """SHA-256 over the checkpoint payload (dtype/shape included)."""
    arr = np.ascontiguousarray(props)
    h = hashlib.sha256()
    h.update(str(int(iteration)).encode())
    h.update(format(float(total_cycles), ".17g").encode())
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class CheckpointStore:
    """Holds the most recent vertex-state snapshots of a run."""

    def __init__(self, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = keep
        self._stack: List[Checkpoint] = []
        self.saves = 0
        self.restores = 0

    def save(self, iteration: int, props: np.ndarray, total_cycles: float):
        """Snapshot the state entering ``iteration``."""
        self._stack.append(
            Checkpoint(iteration, np.array(props, copy=True), total_cycles)
        )
        del self._stack[: -self.keep]
        self.saves += 1

    def latest(self) -> Optional[Checkpoint]:
        """The most recent snapshot, or ``None``."""
        return self._stack[-1] if self._stack else None

    def restore(self) -> Checkpoint:
        """Roll back to the most recent snapshot (counted)."""
        if not self._stack:
            raise ResilienceExhaustedError("no checkpoint to restore")
        self.restores += 1
        cp = self._stack[-1]
        return Checkpoint(cp.iteration, cp.props.copy(), cp.total_cycles)

    # -- persistence ---------------------------------------------------
    def to_file(self, path: Union[str, Path]) -> Path:
        """Persist the latest checkpoint (host-side DRAM -> disk).

        The write is crash-safe: the archive is staged to a temporary
        sibling and moved into place with :func:`os.replace` (atomic on
        POSIX), so a fleet worker dying mid-save can never leave a torn
        checkpoint under the final name.  The staging name carries the
        pid *and* a random suffix: pid alone is not unique under a
        worker pool (pids recycle, and one process may host several
        concurrent savers), so two parallel cells writing toward the
        same final path must never collide on one staging file.
        """
        cp = self.latest()
        if cp is None:
            raise ResilienceExhaustedError("no checkpoint to persist")
        path = Path(path)
        final = path if path.suffix == ".npz" else path.with_suffix(
            path.suffix + ".npz"
        )
        tmp = final.with_name(
            final.name + f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    iteration=cp.iteration,
                    props=cp.props,
                    total_cycles=cp.total_cycles,
                    checksum=np.array(
                        _checkpoint_checksum(
                            cp.iteration, cp.props, cp.total_cycles
                        )
                    ),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        return final

    @staticmethod
    def from_file(
        path: Union[str, Path],
        strict: bool = True,
        health: Optional["RunHealthReport"] = None,
    ) -> Optional[Checkpoint]:
        """Load a persisted checkpoint back, verifying its checksum.

        With ``strict=False`` a truncated, partial, bit-rotted or
        otherwise corrupt file returns ``None`` instead of raising —
        restore paths skip a torn checkpoint and fall back to an older
        one — and the discard is *structured*: a
        :class:`CheckpointDiscardWarning` is emitted and, when a
        ``health`` report is passed, counted in its
        ``checkpoints_discarded``.  Files written before checksums
        existed load without verification (legacy format).
        """
        path = Path(path)
        try:
            with np.load(path) as data:
                cp = Checkpoint(
                    iteration=int(data["iteration"]),
                    props=np.array(data["props"]),
                    total_cycles=float(data["total_cycles"]),
                )
                if "checksum" in getattr(data, "files", ()):
                    stored = str(data["checksum"])
                    expected = _checkpoint_checksum(
                        cp.iteration, cp.props, cp.total_cycles
                    )
                    if stored != expected:
                        raise ValueError(
                            f"checkpoint checksum mismatch in {path}: "
                            f"stored {stored[:12]}…, payload hashes to "
                            f"{expected[:12]}…"
                        )
                return cp
        except (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            if strict:
                raise
            warnings.warn(CheckpointDiscardWarning(path, str(exc)))
            if health is not None:
                health.checkpoints_discarded += 1
            return None

    @staticmethod
    def from_directory(
        directory: Union[str, Path],
        health: Optional["RunHealthReport"] = None,
    ) -> Optional[Checkpoint]:
        """Newest *valid* checkpoint in ``directory`` (``*.npz``).

        Torn or corrupt files (a worker died mid-save before the atomic
        rename, the archive is damaged, or the payload fails its
        checksum) are skipped with a :class:`CheckpointDiscardWarning`
        — counted in ``health`` when given — and never raised; returns
        ``None`` when no readable checkpoint exists.
        """
        best: Optional[Checkpoint] = None
        for path in sorted(Path(directory).glob("*.npz")):
            cp = CheckpointStore.from_file(path, strict=False, health=health)
            if cp is None:
                continue
            if best is None or cp.iteration > best.iteration:
                best = cp
        return best


# ----------------------------------------------------------------------
# Per-channel circuit breakers
# ----------------------------------------------------------------------
@dataclass
class ChannelBreakerState:
    """Failure history of one pseudo-channel.

    ``state`` is ``"closed"`` (healthy) or ``"open"`` (the channel
    faulted past the threshold, or hosted a permanent fault, and its
    pipeline must not be retried).  ``retired`` records that the owning
    pipeline has already been degraded *in the current run* — it resets
    at every run start so a shared bank re-applies its open breakers to
    each new run's full topology.
    """

    channel: int
    failures: int = 0
    state: str = "closed"
    last_category: str = ""
    opened_at_cycle: Optional[float] = None
    retired: bool = False

    @property
    def is_open(self) -> bool:
        """True once the breaker has opened (permanently, per bank)."""
        return self.state == "open"

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of this breaker."""
        return {
            "state": self.state,
            "failures": self.failures,
            "last_category": self.last_category,
            "opened_at_cycle": self.opened_at_cycle,
        }


class CircuitBreakerBank:
    """Per-channel circuit breakers shared by one run or one campaign.

    Channel ids use the host-runtime layout of the topology *at fault
    time* (pipeline ``g`` owns channels ``2g``/``2g+1``); after a
    degradation re-plan the surviving pipelines renumber, so breaker
    entries name capacity lost rather than physical silicon — the same
    modelling convention the injector's retired-channel set uses.
    """

    def __init__(self, threshold: int = 5):
        if threshold < 1:
            raise UserInputError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self._states: Dict[int, ChannelBreakerState] = {}
        self.trips = 0

    def ensure(self, channels: Iterable[int]) -> None:
        """Register (closed) breakers for every channel of a topology."""
        for channel in channels:
            self._states.setdefault(
                channel, ChannelBreakerState(channel=channel)
            )

    def state(self, channel: int) -> ChannelBreakerState:
        """The breaker of ``channel`` (registered on first touch)."""
        return self._states.setdefault(
            channel, ChannelBreakerState(channel=channel)
        )

    def record_failure(
        self, channel: int, category: str, cycle: float
    ) -> bool:
        """Charge one fault to ``channel``; True when the breaker opens
        *on this call* (closed -> open transition)."""
        st = self.state(channel)
        st.failures += 1
        st.last_category = category
        if st.is_open:
            return False
        if st.failures >= self.threshold:
            st.state = "open"
            st.opened_at_cycle = cycle
            self.trips += 1
            return True
        return False

    def force_open(self, channel: int, category: str, cycle: float) -> bool:
        """Open a breaker immediately (permanent faults skip the count)."""
        st = self.state(channel)
        st.failures += 1
        st.last_category = category
        if st.is_open:
            return False
        st.state = "open"
        st.opened_at_cycle = cycle
        self.trips += 1
        return True

    def is_open(self, channel: int) -> bool:
        """Whether ``channel``'s breaker has opened."""
        st = self._states.get(channel)
        return st is not None and st.is_open

    def open_channels(self) -> List[int]:
        """Every channel whose breaker has opened (placement signal)."""
        return sorted(
            ch for ch, st in self._states.items() if st.is_open
        )

    @property
    def open_count(self) -> int:
        """Number of open breakers (fleet placement scores on this)."""
        return sum(st.is_open for st in self._states.values())

    def open_unretired_channels(self) -> List[int]:
        """Open breakers whose pipeline has not been retired this run."""
        return sorted(
            ch for ch, st in self._states.items()
            if st.is_open and not st.retired
        )

    def mark_retired(self, channels: Iterable[int]) -> None:
        """Record that these channels' pipeline was degraded this run."""
        for channel in channels:
            self.state(channel).retired = True

    def reset_retired(self) -> None:
        """Start-of-run reset so open breakers re-apply to the fresh
        topology (shared banks only; per-run banks start empty)."""
        for st in self._states.values():
            st.retired = False

    def snapshot(self) -> Dict[str, dict]:
        """Per-channel state for :class:`RunHealthReport` serialisation."""
        return {
            str(ch): self._states[ch].to_dict()
            for ch in sorted(self._states)
        }

    # -- persistence (fleet recovery) -----------------------------------
    def to_dict(self) -> dict:
        """Complete, restorable serialisation of the bank.

        Unlike :meth:`snapshot` (the report-facing view), this includes
        the threshold, trip counter and per-channel ``retired`` flags —
        everything needed for :meth:`from_dict` to rebuild a bank that
        makes *identical* open/half-open/closed decisions on the same
        subsequent event stream.
        """
        return {
            "threshold": self.threshold,
            "trips": self.trips,
            "channels": {
                str(ch): {**st.to_dict(), "retired": st.retired}
                for ch, st in sorted(self._states.items())
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "CircuitBreakerBank":
        """Rebuild a bank from :meth:`to_dict` output."""
        bank = CircuitBreakerBank(int(data.get("threshold", 5)))
        bank.trips = int(data.get("trips", 0))
        for ch, st in data.get("channels", {}).items():
            opened = st.get("opened_at_cycle")
            bank._states[int(ch)] = ChannelBreakerState(
                channel=int(ch),
                failures=int(st.get("failures", 0)),
                state=str(st.get("state", "closed")),
                last_category=str(st.get("last_category", "")),
                opened_at_cycle=(
                    float(opened) if opened is not None else None
                ),
                retired=bool(st.get("retired", False)),
            )
        return bank


# ----------------------------------------------------------------------
# Health accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRecord:
    """One observed fault occurrence."""

    iteration: int
    category: str
    detail: str
    cycle: float


@dataclass
class RunHealthReport:
    """Everything the resilient layer absorbed during one run."""

    faults: List[FaultRecord] = field(default_factory=list)
    retries: int = 0
    replans: int = 0
    checkpoint_restores: int = 0
    #: Persisted checkpoint files discarded at load (failed checksum,
    #: torn archive) — each one also emits a CheckpointDiscardWarning.
    checkpoints_discarded: int = 0
    watchdog_trips: int = 0
    backoff_cycles: float = 0.0
    wasted_cycles: float = 0.0
    useful_cycles: float = 0.0
    degraded_pipelines: List[str] = field(default_factory=list)
    initial_label: str = ""
    final_label: str = ""
    #: Breakers that transitioned closed -> open during this run.
    breaker_trips: int = 0
    #: Per-channel circuit-breaker snapshot (every channel of the run's
    #: initial topology appears, healthy ones as ``closed``/0 failures).
    channel_breakers: Dict[str, dict] = field(default_factory=dict)

    @property
    def fault_count(self) -> int:
        """Total fault occurrences observed."""
        return len(self.faults)

    @property
    def open_breaker_count(self) -> int:
        """Channels whose breaker ended the run open (placement signal)."""
        return sum(
            1 for state in self.channel_breakers.values()
            if state.get("state") == "open"
        )

    @property
    def overhead_cycles(self) -> float:
        """Cycles spent on anything but successful iterations."""
        return self.wasted_cycles + self.backoff_cycles

    @property
    def overhead_fraction(self) -> float:
        """Overhead relative to the useful work (0.0 on a clean run)."""
        if self.useful_cycles <= 0:
            return 0.0
        return self.overhead_cycles / self.useful_cycles

    def record(self, iteration: int, category: str, detail: str, cycle: float):
        """Append one fault occurrence."""
        self.faults.append(FaultRecord(iteration, category, detail, cycle))

    def to_dict(self) -> dict:
        """JSON-serialisable summary (used by the CLI and benchmarks)."""
        return {
            "faults": [
                {
                    "iteration": f.iteration,
                    "category": f.category,
                    "detail": f.detail,
                    "cycle": f.cycle,
                }
                for f in self.faults
            ],
            "retries": self.retries,
            "replans": self.replans,
            "checkpoint_restores": self.checkpoint_restores,
            "checkpoints_discarded": self.checkpoints_discarded,
            "watchdog_trips": self.watchdog_trips,
            "backoff_cycles": self.backoff_cycles,
            "wasted_cycles": self.wasted_cycles,
            "useful_cycles": self.useful_cycles,
            "overhead_cycles": self.overhead_cycles,
            "degraded_pipelines": list(self.degraded_pipelines),
            "initial_label": self.initial_label,
            "final_label": self.final_label,
            "breaker_trips": self.breaker_trips,
            "channel_breakers": {
                ch: dict(state) for ch, state in self.channel_breakers.items()
            },
        }


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ResilientExecutor:
    """Runs one app under a fault plan with the resilience policy."""

    def __init__(
        self,
        pre,
        platform,
        channel,
        fault_plan: Optional[FaultPlan] = None,
        policy: Optional[ResiliencePolicy] = None,
        breakers: Optional[CircuitBreakerBank] = None,
    ):
        self.pre = pre
        self.platform = platform
        self.channel = channel
        self.fault_plan = fault_plan or FaultPlan()
        self.policy = policy or ResiliencePolicy()
        #: Shared across runs when provided (host runtime / campaigns);
        #: a fresh per-run bank otherwise.
        self.breakers = (
            breakers
            if breakers is not None
            else CircuitBreakerBank(self.policy.breaker_threshold)
        )

    # ------------------------------------------------------------------
    def run(self, app, max_iterations=None, functional: bool = True):
        """Execute ``app`` to convergence or the iteration cap.

        Mirrors :meth:`SystemSimulator.run` exactly on the fault-free
        path; returns a :class:`RunReport` with ``health`` populated.
        """
        from repro.core.system import RunReport, SystemSimulator

        policy = self.policy
        injector = FaultInjector(self.fault_plan)
        health = RunHealthReport()
        plan = self.pre.plan
        injector.bind_topology(
            plan.accelerator.num_little, plan.accelerator.num_big
        )
        sim = SystemSimulator(plan, self.platform, self.channel, injector=injector)
        health.initial_label = plan.accelerator.label

        limit = (
            max_iterations if max_iterations is not None else app.max_iterations
        )
        graph = app.graph
        run = RunReport(
            app_name=app.name,
            graph_name=graph.name,
            accel_label=plan.accelerator.label,
            frequency_mhz=sim.frequency_mhz,
            edges_per_iteration=plan.total_edges(),
        )
        props = app.init_props() if functional else None
        store = CheckpointStore()
        budget = policy.watchdog_budget(plan.estimated_makespan)

        bank = self.breakers
        bank.reset_retired()
        bank.ensure(range(2 * plan.accelerator.total_pipelines))
        # Breakers opened by earlier runs on a shared bank: their
        # channels are never retried — retire the owning pipelines
        # before the first iteration.
        for channel in bank.open_unretired_channels():
            victim = self._victim_of_channel(channel, plan)
            if victim is None:
                continue
            victim = self._clamp_victim(victim, plan)
            health.record(
                0, "breaker-open",
                f"channel {channel} breaker open at run start; retiring "
                f"pipeline {victim[0]}{victim[1]}",
                run.total_cycles,
            )
            bank.mark_retired(self._victim_channels(victim, plan))
            plan, sim, budget = self._degrade(plan, victim, injector, health)

        iteration = 0
        while iteration < limit:
            if functional and iteration % policy.checkpoint_interval == 0:
                store.save(iteration, props, run.total_cycles)
            attempt = 0
            while True:
                injector.now = run.total_cycles
                try:
                    report = sim.iteration_timing(graph.num_vertices)
                    if report.total_cycles > budget:
                        health.watchdog_trips += 1
                        raise WatchdogTimeoutError(
                            report.total_cycles,
                            budget,
                            victim=injector.spike_victim(),
                        )
                    new_props = (
                        sim.functional_iteration(app, props)
                        if functional
                        else None
                    )
                    break
                except ChannelFaultError as fault:
                    # Permanent: no retry can help — degrade immediately.
                    health.record(
                        iteration, fault.category, str(fault), run.total_cycles
                    )
                    run.total_cycles += budget
                    health.wasted_cycles += budget
                    if bank.force_open(
                        fault.channel, fault.category, run.total_cycles
                    ):
                        health.breaker_trips += 1
                    bank.mark_retired(
                        self._victim_channels(fault.victim, plan)
                    )
                    plan, sim, budget = self._degrade(
                        plan, fault.victim, injector, health
                    )
                    props = self._restore(store, health, props, functional)
                    attempt = 0
                except FaultInjectedError as fault:
                    health.record(
                        iteration, fault.category, str(fault), run.total_cycles
                    )
                    wasted = self._wasted_cycles(fault, budget)
                    run.total_cycles += wasted
                    health.wasted_cycles += wasted
                    attempt += 1
                    breaker_open = False
                    for ch in self._fault_channels(fault, plan):
                        if bank.record_failure(
                            ch, fault.category, run.total_cycles
                        ):
                            health.breaker_trips += 1
                        if bank.is_open(ch):
                            breaker_open = True
                    degradable = fault.victim is not None
                    if attempt > policy.max_retries or (
                        breaker_open and degradable
                    ):
                        if not degradable:
                            raise ResilienceExhaustedError(
                                f"iteration {iteration} failed "
                                f"{attempt} times: {fault}"
                            ) from fault
                        bank.mark_retired(
                            self._victim_channels(fault.victim, plan)
                        )
                        plan, sim, budget = self._degrade(
                            plan, fault.victim, injector, health
                        )
                        attempt = 0
                    else:
                        backoff = policy.backoff_cycles(attempt)
                        run.total_cycles += backoff
                        health.backoff_cycles += backoff
                        health.retries += 1
                    props = self._restore(store, health, props, functional)

            run.iteration_reports.append(report)
            run.total_cycles += report.total_cycles
            run.iterations += 1
            health.useful_cycles += report.total_cycles
            iteration += 1
            if functional:
                if app.has_converged(props, new_props, run.iterations):
                    props = new_props
                    run.converged = True
                    break
                props = new_props

        if functional:
            run.props = props
            run.result = app.finalize(props)
        health.final_label = plan.accelerator.label
        health.channel_breakers = bank.snapshot()
        run.health = health
        run.final_plan = plan
        return run

    # ------------------------------------------------------------------
    @staticmethod
    def _wasted_cycles(fault: FaultInjectedError, budget: float) -> float:
        """Cycles lost to one failed attempt.

        Stalls and watchdog trips burn the whole budget (the watchdog is
        what reclaims the pipeline); a detected bit-flip is caught at the
        end of the attempt's execution, also modelled as one budget.
        """
        if isinstance(fault, WatchdogTimeoutError):
            return min(fault.measured_cycles, budget)
        return budget

    # -- channel <-> pipeline mapping (host-runtime layout) ------------
    @staticmethod
    def _victim_of_channel(channel: int, plan) -> Optional[Tuple[str, int]]:
        """Map a pseudo-channel onto its owning pipeline in ``plan``."""
        g = channel // 2
        acc = plan.accelerator
        if g < acc.num_little:
            return ("little", g)
        g -= acc.num_little
        if g < acc.num_big:
            return ("big", g)
        return None

    @staticmethod
    def _victim_channels(
        victim: Optional[Tuple[str, int]], plan
    ) -> List[int]:
        """The two pseudo-channels a pipeline owns in ``plan``."""
        if victim is None:
            return []
        kind, index = victim
        g = index if kind == "little" else plan.accelerator.num_little + index
        return [2 * g, 2 * g + 1]

    def _fault_channels(self, fault: FaultInjectedError, plan) -> List[int]:
        """Channels a fault is attributable to (empty when unpinned)."""
        if isinstance(fault, ChannelFaultError):
            return [fault.channel]
        return self._victim_channels(fault.victim, plan)

    @staticmethod
    def _clamp_victim(victim: Tuple[str, int], plan) -> Tuple[str, int]:
        """Coerce a victim named against an earlier topology into a
        pipeline that exists in ``plan`` (re-plans rebuild the combo from
        scratch, so only capacity — not identity — matters)."""
        kind, index = victim
        acc = plan.accelerator
        if kind == "little" and acc.num_little == 0:
            kind = "little" if acc.num_big == 0 else "big"
        if kind == "big" and acc.num_big == 0:
            kind = "little"
        count = acc.num_little if kind == "little" else acc.num_big
        return (kind, min(index, max(count - 1, 0)))

    def _restore(self, store, health, props, functional):
        """Roll vertex state back to the last checkpoint."""
        if not functional:
            return props
        cp = store.restore()
        health.checkpoint_restores += 1
        return cp.props

    def _degrade(self, plan, victim, injector, health):
        """Retire ``victim``, re-plan onto the survivors, revalidate."""
        from repro.core.system import SystemSimulator

        survivors = plan.accelerator.total_pipelines - 1
        if survivors < 1:
            raise ResilienceExhaustedError(
                "no surviving pipelines to re-plan onto"
            )
        kind, index = victim
        injector.retire_pipeline(kind, index)
        new_plan = build_schedule(self.pre.pset, self.pre.model, survivors)
        new_plan.validate(expected_edges=plan.total_edges())
        summary = plan_to_dict(new_plan)
        if not verify_plan_against(summary, self.pre.pset, new_plan.accelerator):
            raise ResilienceExhaustedError(
                "re-planned schedule failed verification"
            )
        injector.bind_topology(
            new_plan.accelerator.num_little, new_plan.accelerator.num_big
        )
        health.replans += 1
        health.degraded_pipelines.append(f"{kind}{index}")
        sim = SystemSimulator(
            new_plan, self.platform, self.channel, injector=injector
        )
        budget = self.policy.watchdog_budget(new_plan.estimated_makespan)
        return new_plan, sim, budget
