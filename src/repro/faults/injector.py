"""Seeded fault injector wired into the simulator's hardware boundaries.

One :class:`FaultInjector` instance accompanies a resilient run.  It is
installed at two boundaries:

* the **HBM channel boundary** — :class:`~repro.hbm.channel.HbmChannelModel`
  consults it (``scale_latency``) so latency-spike faults inflate every
  latency the channel charges while a spike window is active;
* the **pipeline boundary** — both pipeline simulators call ``on_task``
  before executing a task (dead channels and stalls raise here, during
  the timing pass) and ``filter_buffer`` on every drained gather buffer
  (bit-flips raise or corrupt here, during the functional pass).

The injector owns a ``numpy`` generator seeded from the plan, a simulated
clock ``now`` (advanced by the executor as cycles accumulate, including
wasted retry/backoff cycles), and the current execution context (which
pipeline is running, which pass).  Because the simulator's task order is
deterministic, the draw sequence — and therefore the whole fault history —
is a pure function of ``(seed, FaultPlan)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import (
    ChannelFaultError,
    DataCorruptionError,
    PipelineStallError,
)
from repro.faults.plan import FaultPlan


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the running simulation."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        #: Simulated kernel-clock time, set by the executor each attempt.
        self.now = 0.0
        #: "timing" or "functional" — which simulator pass is running.
        self.pass_kind = "timing"
        self._context: Optional[Tuple[str, int]] = None
        self._num_little = 0
        self._num_big = 0
        self._retired_channels = set()
        self._retired_pipelines = set()  # global pipeline indices

    # ------------------------------------------------------------------
    # Topology mapping (host-runtime channel layout)
    # ------------------------------------------------------------------
    def bind_topology(self, num_little: int, num_big: int) -> None:
        """Record the current accelerator shape (re-bound after re-plans)."""
        self._num_little = num_little
        self._num_big = num_big

    def _pipeline_of_channel(self, channel: int) -> Optional[Tuple[str, int]]:
        """Map a pseudo-channel id onto ``(kind, index)``, or ``None``."""
        g = channel // 2
        if g < self._num_little:
            return ("little", g)
        g -= self._num_little
        if g < self._num_big:
            return ("big", g)
        return None

    def _global_index(self, kind: str, index: int) -> int:
        return index if kind == "little" else self._num_little + index

    # ------------------------------------------------------------------
    # Execution context (set by the system simulator)
    # ------------------------------------------------------------------
    def enter_pipeline(self, kind: str, index: int) -> None:
        """Mark which pipeline's tasks are about to execute."""
        self._context = (kind, index)

    def exit_pipeline(self) -> None:
        """Leave pipeline context (Apply/Writer stages are unscoped)."""
        self._context = None

    # ------------------------------------------------------------------
    # Fault activity queries (drive cache invalidation and degradation)
    # ------------------------------------------------------------------
    def timing_faults_active(self) -> bool:
        """True while any fault can alter or abort the timing pass.

        The system simulator caches iteration timing when this is False,
        which is what makes a zero-fault plan reproduce the fault-free
        cycle counts exactly.
        """
        for f in self.plan.dead_channels:
            if (
                f.channel not in self._retired_channels
                and self.now >= f.onset_cycle
                and self._pipeline_of_channel(f.channel) is not None
            ):
                return True
        for f in self.plan.stalls:
            if f.probability <= 0 or self.now < f.onset_cycle:
                continue
            if f.pipeline is not None and f.pipeline in self._retired_pipelines:
                continue
            return True
        return self.spike_victim() is not None

    def functional_faults_active(self) -> bool:
        """True while any fault can perturb the functional pass.

        Only bit-flips touch functional results, and ``filter_buffer``
        draws injector randomness exactly for flips whose window is
        open (``probability > 0`` and onset reached).  While this is
        False the interpreted functional walk draws nothing and mutates
        nothing, so the compiled functional engine is free to replace
        it — the same rule ``timing_faults_active()`` provides for the
        compiled timing pass.
        """
        return any(
            f.probability > 0 and self.now >= f.onset_cycle
            for f in self.plan.bit_flips
        )

    def spike_victim(self) -> Optional[Tuple[str, int]]:
        """The pipeline hit by a currently-active latency spike, if any."""
        for f in self.plan.latency_spikes:
            if f.channel in self._retired_channels:
                continue
            if f.onset_cycle <= self.now < f.onset_cycle + f.duration_cycles:
                victim = self._pipeline_of_channel(f.channel)
                if victim is not None:
                    return victim
        return None

    # ------------------------------------------------------------------
    # Degradation bookkeeping
    # ------------------------------------------------------------------
    def retire_pipeline(self, kind: str, index: int) -> None:
        """Retire a degraded pipeline: its channels stop hosting faults.

        Called *before* the topology is re-bound to the shrunk
        accelerator, while ``(kind, index)`` still names the victim in
        the old shape.
        """
        g = self._global_index(kind, index)
        self._retired_pipelines.add(g)
        self._retired_channels.update((2 * g, 2 * g + 1))

    # ------------------------------------------------------------------
    # HBM channel boundary hook
    # ------------------------------------------------------------------
    def scale_latency(self, latency):
        """Inflate a latency figure while a spike targets the current
        pipeline; identity otherwise."""
        scale = 1.0
        for f in self.plan.latency_spikes:
            if f.channel in self._retired_channels:
                continue
            if not (f.onset_cycle <= self.now < f.onset_cycle + f.duration_cycles):
                continue
            victim = self._pipeline_of_channel(f.channel)
            if victim is not None and victim == self._context:
                scale = max(scale, f.multiplier)
        if scale == 1.0:
            return latency
        return latency * scale

    # ------------------------------------------------------------------
    # Pipeline boundary hooks
    # ------------------------------------------------------------------
    def on_task(self, kind: str) -> None:
        """Called before each task execution; raises modelled faults.

        Only the timing pass raises here: it runs first every iteration,
        so a fault aborts the iteration before any functional work.
        """
        if self.pass_kind != "timing":
            return
        ctx = self._context if self._context is not None else (kind, 0)
        for f in self.plan.dead_channels:
            if f.channel in self._retired_channels or self.now < f.onset_cycle:
                continue
            if self._pipeline_of_channel(f.channel) == ctx:
                raise ChannelFaultError(f.channel, victim=ctx)
        for f in self.plan.stalls:
            if f.probability <= 0 or self.now < f.onset_cycle:
                continue
            g = self._global_index(*ctx)
            if f.pipeline is not None:
                if f.pipeline in self._retired_pipelines or f.pipeline != g:
                    continue
            if self.rng.random() < f.probability:
                raise PipelineStallError(
                    f"pipeline {ctx[0]}{ctx[1]} stalled mid-partition",
                    victim=ctx if f.pipeline is not None else None,
                )

    def filter_buffer(self, buffer: np.ndarray) -> np.ndarray:
        """Apply bit-flip faults to one drained gather buffer.

        Detectable flips raise :class:`DataCorruptionError` (the parity
        check caught them); silent flips XOR one bit of the raw block and
        hand the corrupted buffer back.
        """
        if buffer.size == 0:
            return buffer
        for f in self.plan.bit_flips:
            if f.probability <= 0 or self.now < f.onset_cycle:
                continue
            if self.rng.random() >= f.probability:
                continue
            ctx = self._context
            if f.detectable:
                raise DataCorruptionError(
                    "parity check detected a flipped bit in a gathered "
                    f"block (pipeline {ctx[0]}{ctx[1] if ctx else '?'})"
                    if ctx
                    else "parity check detected a flipped bit",
                )
            corrupted = buffer.copy()
            raw = corrupted.view(np.uint8)
            byte = int(self.rng.integers(0, raw.size))
            bit = int(self.rng.integers(0, 8))
            raw[byte] ^= np.uint8(1 << bit)
            return corrupted
        return buffer
