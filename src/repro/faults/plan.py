"""Deterministic, seedable fault models (the ``FaultPlan``).

A :class:`FaultPlan` describes *what can go wrong* during one simulated
run: dead HBM pseudo-channels, latency-spike bursts on a channel,
transient bit-flips in gathered vertex blocks, and mid-partition pipeline
stalls.  Every fault model is a frozen dataclass, and the plan carries its
own RNG seed, so ``(seed, FaultPlan)`` fully determines the fault
sequence a run observes — two runs with identical configuration produce
identical :class:`~repro.faults.resilience.RunHealthReport`\\ s.

Channel ids use the host-runtime layout (:mod:`repro.runtime.host`):
pipeline ``g`` of the current topology owns pseudo-channels ``2g``
(edges) and ``2g + 1`` (properties), with Little pipelines numbered
before Big ones.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple


@dataclass(frozen=True)
class DeadChannelFault:
    """A pseudo-channel stops answering from ``onset_cycle`` onwards.

    Permanent: retrying cannot help, the owning pipeline must be retired
    and the remaining partitions re-planned onto the survivors.
    """

    channel: int
    onset_cycle: float = 0.0


@dataclass(frozen=True)
class LatencySpikeFault:
    """A bounded burst of inflated access latency on one channel.

    While ``onset_cycle <= now < onset_cycle + duration_cycles`` every
    latency the channel charges is multiplied by ``multiplier`` —
    modelling refresh storms / thermal throttling.  Backoff between
    retries advances simulated time, so a bounded spike is eventually
    waited out.
    """

    channel: int
    onset_cycle: float = 0.0
    duration_cycles: float = 100_000.0
    multiplier: float = 8.0


@dataclass(frozen=True)
class BitFlipFault:
    """Transient bit-flips in gathered edge/vertex blocks.

    ``probability`` is drawn once per gather-buffer drain (one Little
    task, or one partition of a Big group).  ``detectable=True`` models a
    parity/ECC check at block ingest: the flip surfaces as a
    :class:`~repro.errors.DataCorruptionError` and the iteration is
    retried from its checkpoint.  ``detectable=False`` silently flips one
    bit of the drained buffer — the pathological case iterative apps must
    damp out on their own.
    """

    probability: float
    detectable: bool = True
    onset_cycle: float = 0.0


@dataclass(frozen=True)
class PipelineStallFault:
    """A pipeline hangs mid-partition with some per-task probability.

    ``pipeline`` pins the fault to one global pipeline index (Little
    pipelines first, then Big); ``None`` lets any task of any pipeline
    draw the stall.  Only pinned stalls are degradable — a global stall
    rate follows the workload wherever it is re-planned.
    """

    probability: float
    pipeline: int = None
    onset_cycle: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """The full fault configuration of one run (deterministic via seed)."""

    seed: int = 0
    dead_channels: Tuple[DeadChannelFault, ...] = ()
    latency_spikes: Tuple[LatencySpikeFault, ...] = ()
    bit_flips: Tuple[BitFlipFault, ...] = ()
    stalls: Tuple[PipelineStallFault, ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (resilience stays idle)."""
        return not (
            self.dead_channels
            or self.latency_spikes
            or self.bit_flips
            or self.stalls
        )

    def to_dict(self) -> dict:
        """JSON-serialisable description of the plan."""
        return {
            "seed": self.seed,
            "dead_channels": [asdict(f) for f in self.dead_channels],
            "latency_spikes": [asdict(f) for f in self.latency_spikes],
            "bit_flips": [asdict(f) for f in self.bit_flips],
            "stalls": [asdict(f) for f in self.stalls],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            dead_channels=tuple(
                DeadChannelFault(**f) for f in data.get("dead_channels", [])
            ),
            latency_spikes=tuple(
                LatencySpikeFault(**f) for f in data.get("latency_spikes", [])
            ),
            bit_flips=tuple(
                BitFlipFault(**f) for f in data.get("bit_flips", [])
            ),
            stalls=tuple(
                PipelineStallFault(**f) for f in data.get("stalls", [])
            ),
        )
