"""Deterministic, seedable fault models (the ``FaultPlan``).

A :class:`FaultPlan` describes *what can go wrong* during one simulated
run: dead HBM pseudo-channels, latency-spike bursts on a channel,
transient bit-flips in gathered vertex blocks, and mid-partition pipeline
stalls.  Every fault model is a frozen dataclass, and the plan carries its
own RNG seed, so ``(seed, FaultPlan)`` fully determines the fault
sequence a run observes — two runs with identical configuration produce
identical :class:`~repro.faults.resilience.RunHealthReport`\\ s.

Channel ids use the host-runtime layout (:mod:`repro.runtime.host`):
pipeline ``g`` of the current topology owns pseudo-channels ``2g``
(edges) and ``2g + 1`` (properties), with Little pipelines numbered
before Big ones.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple


@dataclass(frozen=True)
class DeadChannelFault:
    """A pseudo-channel stops answering from ``onset_cycle`` onwards.

    Permanent: retrying cannot help, the owning pipeline must be retired
    and the remaining partitions re-planned onto the survivors.
    """

    channel: int
    onset_cycle: float = 0.0


@dataclass(frozen=True)
class LatencySpikeFault:
    """A bounded burst of inflated access latency on one channel.

    While ``onset_cycle <= now < onset_cycle + duration_cycles`` every
    latency the channel charges is multiplied by ``multiplier`` —
    modelling refresh storms / thermal throttling.  Backoff between
    retries advances simulated time, so a bounded spike is eventually
    waited out.
    """

    channel: int
    onset_cycle: float = 0.0
    duration_cycles: float = 100_000.0
    multiplier: float = 8.0


@dataclass(frozen=True)
class BitFlipFault:
    """Transient bit-flips in gathered edge/vertex blocks.

    ``probability`` is drawn once per gather-buffer drain (one Little
    task, or one partition of a Big group).  ``detectable=True`` models a
    parity/ECC check at block ingest: the flip surfaces as a
    :class:`~repro.errors.DataCorruptionError` and the iteration is
    retried from its checkpoint.  ``detectable=False`` silently flips one
    bit of the drained buffer — the pathological case iterative apps must
    damp out on their own.
    """

    probability: float
    detectable: bool = True
    onset_cycle: float = 0.0


@dataclass(frozen=True)
class PipelineStallFault:
    """A pipeline hangs mid-partition with some per-task probability.

    ``pipeline`` pins the fault to one global pipeline index (Little
    pipelines first, then Big); ``None`` lets any task of any pipeline
    draw the stall.  Only pinned stalls are degradable — a global stall
    rate follows the workload wherever it is re-planned.
    """

    probability: float
    pipeline: int = None
    onset_cycle: float = 0.0


#: Ways a journal/store file can be damaged by real storage.
STORAGE_FAULT_KINDS = ("torn-write", "partial-fsync", "bit-flip")

#: Files a storage fault may hit: the fleet's JSONL pair, the serving
#: facade's traffic bundle and SQLite write-ahead log, and the shared
#: on-disk timing cache's per-key entry files.
STORAGE_FAULT_TARGETS = (
    "journal", "store", "traffic", "store-wal", "shared-cache",
)


@dataclass(frozen=True)
class StorageFault:
    """Durable-state damage: what a crash or bit rot does to a WAL file.

    Unlike the accelerator faults above, a storage fault is applied to a
    fleet journal or result store *file* (by
    :func:`repro.fleet.journal.apply_storage_fault`) between a hard kill
    and the subsequent recovery — it never touches the simulator.

    ``record`` selects the victim line for ``bit-flip`` (negative counts
    from the end of the file); torn writes and partial fsyncs always hit
    the tail, where real ones do.  ``target`` picks the victim file
    (:data:`STORAGE_FAULT_TARGETS`): the fleet's write-ahead journal or
    result store, the serving facade's traffic bundle, the SQLite
    job store's WAL (``store-wal``, where ``kind`` is moot — the tail
    is truncated and SQLite's frame checksums absorb it), or an entry
    file of the shared timing cache (``shared-cache``, where the store's
    per-entry checksums quarantine the damage instead of serving it).
    """

    kind: str
    record: int = -1
    target: str = "journal"

    def __post_init__(self):
        if self.kind not in STORAGE_FAULT_KINDS:
            raise ValueError(
                f"storage fault kind must be one of {STORAGE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.target not in STORAGE_FAULT_TARGETS:
            raise ValueError(
                f"storage fault target must be one of "
                f"{STORAGE_FAULT_TARGETS}, got {self.target!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The full fault configuration of one run (deterministic via seed)."""

    seed: int = 0
    dead_channels: Tuple[DeadChannelFault, ...] = ()
    latency_spikes: Tuple[LatencySpikeFault, ...] = ()
    bit_flips: Tuple[BitFlipFault, ...] = ()
    stalls: Tuple[PipelineStallFault, ...] = ()
    storage: Tuple[StorageFault, ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing *into the simulator*
        (resilience stays idle).  Storage faults are deliberately not
        counted: they damage files between runs, never the run itself,
        so a storage-only plan still qualifies for cache bypass."""
        return not (
            self.dead_channels
            or self.latency_spikes
            or self.bit_flips
            or self.stalls
        )

    def to_dict(self) -> dict:
        """JSON-serialisable description of the plan."""
        data = {
            "seed": self.seed,
            "dead_channels": [asdict(f) for f in self.dead_channels],
            "latency_spikes": [asdict(f) for f in self.latency_spikes],
            "bit_flips": [asdict(f) for f in self.bit_flips],
            "stalls": [asdict(f) for f in self.stalls],
        }
        if self.storage:
            # Emitted only when present, so pre-durability plan dicts
            # stay byte-identical (chaos bundle digests include them).
            data["storage"] = [asdict(f) for f in self.storage]
        return data

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            dead_channels=tuple(
                DeadChannelFault(**f) for f in data.get("dead_channels", [])
            ),
            latency_spikes=tuple(
                LatencySpikeFault(**f) for f in data.get("latency_spikes", [])
            ),
            bit_flips=tuple(
                BitFlipFault(**f) for f in data.get("bit_flips", [])
            ),
            stalls=tuple(
                PipelineStallFault(**f) for f in data.get("stalls", [])
            ),
            storage=tuple(
                StorageFault(**f) for f in data.get("storage", [])
            ),
        )
