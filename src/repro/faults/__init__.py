"""Fault injection and resilient execution.

Public surface:

* :class:`~repro.faults.plan.FaultPlan` and the individual fault models
  (dead channel, latency spike, bit flip, pipeline stall);
* :class:`~repro.faults.injector.FaultInjector` — seeded evaluator wired
  into the HBM-channel and pipeline boundaries;
* :class:`~repro.faults.resilience.ResilientExecutor`,
  :class:`~repro.faults.resilience.ResiliencePolicy`,
  :class:`~repro.faults.resilience.CheckpointStore` and
  :class:`~repro.faults.resilience.RunHealthReport` — the resilient
  execution layer used by :meth:`repro.core.framework.ReGraph.run`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    STORAGE_FAULT_KINDS,
    BitFlipFault,
    DeadChannelFault,
    FaultPlan,
    LatencySpikeFault,
    PipelineStallFault,
    StorageFault,
)
from repro.faults.resilience import (
    ChannelBreakerState,
    Checkpoint,
    CheckpointDiscardWarning,
    CheckpointStore,
    CircuitBreakerBank,
    FaultRecord,
    ResiliencePolicy,
    ResilientExecutor,
    RunHealthReport,
)

__all__ = [
    "BitFlipFault",
    "ChannelBreakerState",
    "Checkpoint",
    "CheckpointDiscardWarning",
    "CheckpointStore",
    "CircuitBreakerBank",
    "DeadChannelFault",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "LatencySpikeFault",
    "PipelineStallFault",
    "ResiliencePolicy",
    "ResilientExecutor",
    "RunHealthReport",
    "STORAGE_FAULT_KINDS",
    "StorageFault",
]
