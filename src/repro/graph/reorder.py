"""Degree-based grouping (DBG) vertex reordering.

Sec. II-A: ReGraph applies the lightweight DBG technique of Faldu et al.
[12] before partitioning.  Vertices are bucketed by in-degree into
power-of-two groups anchored at the average degree; groups are laid out in
descending-degree order and the original vertex order is preserved inside
each group (that stability is what keeps DBG "lightweight" — it is a
counting pass, not a full sort).

After DBG, hot (high in-degree) vertices own the lowest IDs, so the first
few destination-interval partitions concentrate most edges (the *dense*
partitions of Fig. 2) while the tail partitions hold only cold vertices
(the *sparse* partitions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.coo import Graph

#: Number of degree groups used by DBG (Faldu et al. use 8).
DBG_NUM_GROUPS = 8


@dataclass(frozen=True)
class DbgResult:
    """Outcome of DBG: the relabelled graph and the permutation used.

    ``mapping[v]`` is the new ID of original vertex ``v``;
    ``inverse[n]`` recovers the original ID of new vertex ``n``.
    """

    graph: Graph
    mapping: np.ndarray
    inverse: np.ndarray
    group_sizes: np.ndarray

    def restore(self, properties: np.ndarray) -> np.ndarray:
        """Permute per-vertex ``properties`` back to original vertex order."""
        return properties[self.mapping]


def _group_of(degrees: np.ndarray, num_groups: int) -> np.ndarray:
    """Assign each vertex a group index; higher group = higher degree.

    Group ``g`` (for ``g >= 1``) holds vertices with degree in
    ``[avg * 2**(g-1), avg * 2**g)``; group 0 holds degrees below the
    average.  The top group is open-ended.
    """
    avg = max(degrees.mean(), 1.0)
    thresholds = avg * (2.0 ** np.arange(num_groups - 1))
    return np.digitize(degrees, thresholds)


def degree_based_grouping(
    graph: Graph,
    num_groups: int = DBG_NUM_GROUPS,
) -> DbgResult:
    """Apply DBG to ``graph`` and return the relabelled result.

    Complexity is O(V) plus the O(E) relabel, matching the preprocessing
    costs reported in Table IV.
    """
    if num_groups < 2:
        raise ValueError(f"num_groups must be >= 2, got {num_groups}")
    degrees = graph.in_degrees()
    groups = _group_of(degrees, num_groups)
    # Stable counting order: descending group, original ID preserved within.
    order = np.argsort(-groups, kind="stable")
    mapping = np.empty(graph.num_vertices, dtype=np.int64)
    mapping[order] = np.arange(graph.num_vertices, dtype=np.int64)
    relabelled = graph.relabel(mapping, name=graph.name)
    group_sizes = np.bincount(groups, minlength=num_groups).astype(np.int64)
    return DbgResult(
        graph=relabelled,
        mapping=mapping,
        inverse=order.astype(np.int64),
        group_sizes=group_sizes,
    )


def identity_ordering(graph: Graph) -> DbgResult:
    """A no-op "reordering" used to ablate DBG (Fig. 2's grey markers)."""
    ident = np.arange(graph.num_vertices, dtype=np.int64)
    return DbgResult(
        graph=graph,
        mapping=ident,
        inverse=ident.copy(),
        group_sizes=np.array([graph.num_vertices], dtype=np.int64),
    )
