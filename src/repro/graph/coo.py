"""COO (coordinate list) graph representation.

ReGraph's input format (Fig. 1b): a directed graph stored as parallel arrays
of source and destination vertex IDs, with the source IDs in ascending order.
The ascending-source invariant is what lets the Big pipeline's Vertex Loader
cache only the last requested block (Sec. III-B), so :class:`Graph` enforces
and tracks it explicitly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_array_1d, check_positive

#: Bytes per vertex ID / property word; "all raw graph data are 32-bit".
VERTEX_WORD_BYTES = 4

#: Bytes per (src, dst) edge record without weights.
EDGE_BYTES = 8


class Graph:
    """A directed graph in COO format with ascending source vertex IDs.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``V``; vertex IDs are ``0 .. V - 1``.
    src, dst:
        Parallel edge arrays.  They are copied into ``int64`` and sorted by
        (src, dst) unless ``assume_sorted`` is set.
    weights:
        Optional per-edge 32-bit payload (e.g. SSSP edge lengths).
    name:
        Human-readable label used in reports.
    """

    def __init__(
        self,
        num_vertices: int,
        src,
        dst,
        weights=None,
        name: str = "graph",
        assume_sorted: bool = False,
    ):
        check_positive("num_vertices", num_vertices)
        src = check_array_1d("src", src).astype(np.int64, copy=True)
        dst = check_array_1d("dst", dst).astype(np.int64, copy=True)
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst must have equal length, "
                f"got {src.size} vs {dst.size}"
            )
        if weights is not None:
            weights = check_array_1d("weights", weights).copy()
            if weights.shape != src.shape:
                raise ValueError("weights must have one entry per edge")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("src IDs out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("dst IDs out of range")

        if not assume_sorted:
            order = np.lexsort((dst, src))
            src = src[order]
            dst = dst[order]
            if weights is not None:
                weights = weights[order]

        self.num_vertices = int(num_vertices)
        self.src = src
        self.dst = dst
        self.weights = weights
        self.name = name
        self._in_degrees: Optional[np.ndarray] = None
        self._out_degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges ``E``."""
        return int(self.src.size)

    @property
    def average_degree(self) -> float:
        """``E / V`` — the ``D`` column of Table III."""
        return self.num_edges / self.num_vertices

    @property
    def edge_bytes(self) -> int:
        """Size of one stored edge record in bytes."""
        return EDGE_BYTES + (VERTEX_WORD_BYTES if self.weights is not None else 0)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of edges plus two vertex-property arrays.

        Used by the out-of-memory check of Fig. 12: each HBM channel only
        offers 256 MB, so small channel counts cannot hold large graphs.
        """
        return (
            self.num_edges * self.edge_bytes
            + 2 * self.num_vertices * VERTEX_WORD_BYTES
        )

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.dst, minlength=self.num_vertices
            ).astype(np.int64)
        return self._in_degrees

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        if self._out_degrees is None:
            self._out_degrees = np.bincount(
                self.src, minlength=self.num_vertices
            ).astype(np.int64)
        return self._out_degrees

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def relabel(self, mapping: np.ndarray, name: Optional[str] = None) -> "Graph":
        """Return a new graph with vertex ``v`` renamed to ``mapping[v]``.

        ``mapping`` must be a permutation of ``0 .. V - 1``; this is how DBG
        reordering is applied.
        """
        mapping = check_array_1d("mapping", mapping).astype(np.int64)
        if mapping.size != self.num_vertices:
            raise ValueError(
                f"mapping must have {self.num_vertices} entries, "
                f"got {mapping.size}"
            )
        return Graph(
            self.num_vertices,
            mapping[self.src],
            mapping[self.dst],
            weights=self.weights,
            name=name or self.name,
        )

    def reversed(self) -> "Graph":
        """Return the transpose graph (every edge flipped)."""
        return Graph(
            self.num_vertices,
            self.dst,
            self.src,
            weights=self.weights,
            name=f"{self.name}-rev",
        )

    def with_weights(self, weights) -> "Graph":
        """Return a copy of this graph carrying the given edge weights."""
        return Graph(
            self.num_vertices,
            self.src,
            self.dst,
            weights=weights,
            name=self.name,
            assume_sorted=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, V={self.num_vertices}, "
            f"E={self.num_edges})"
        )
