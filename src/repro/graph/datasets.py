"""Dataset registry reproducing Table III of the paper.

The paper evaluates on four synthetic Kronecker graphs and twelve real-world
graphs from SNAP / network-repository.  The real datasets cannot be fetched
offline, so each entry here records the published (V, E, D, type, category)
signature together with generator parameters that produce a synthetic
stand-in with the same size and degree-skew character (see DESIGN.md,
substitution table).

Because the cycle-level simulator is pure Python/NumPy, loading a dataset at
``scale=1.0`` (full published size, up to 268 M edges) is supported but slow;
benchmarks default to a reduced ``scale`` that divides V and E while keeping
the degree distribution shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.coo import Graph
from repro.graph.generators import power_law_graph, rmat_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Published signature + generator recipe for one Table III dataset."""

    key: str
    full_name: str
    num_vertices: int
    num_edges: int
    avg_degree: int
    directed: bool
    category: str
    generator: str  # "rmat" or "powerlaw"
    rmat_scale: int = 0
    rmat_edge_factor: int = 0
    skew_exponent: float = 0.0

    def instantiate(self, scale: float = 1.0, seed: int = 0) -> Graph:
        """Build the synthetic stand-in, optionally scaled down.

        ``scale`` divides both V and E (RMAT graphs reduce their scale
        parameter by ``log2(1/scale)`` levels), preserving average degree.
        """
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if self.generator == "rmat":
            levels_off = 0
            remaining = scale
            while remaining < 1.0 - 1e-9:
                levels_off += 1
                remaining *= 2.0
            eff_scale = max(self.rmat_scale - levels_off, 6)
            return rmat_graph(
                eff_scale,
                edge_factor=self.rmat_edge_factor,
                seed=seed,
                name=self.key,
            )
        num_v = max(int(self.num_vertices * scale), 64)
        num_e = max(int(self.num_edges * scale), 256)
        return power_law_graph(
            num_v,
            num_e,
            exponent=self.skew_exponent,
            seed=seed,
            name=self.key,
            undirected=not self.directed,
        )


def _rmat(key, full_name, scale, edge_factor, category="Synthetic"):
    num_v = 1 << scale
    return DatasetSpec(
        key=key,
        full_name=full_name,
        num_vertices=num_v,
        num_edges=num_v * edge_factor,
        avg_degree=edge_factor,
        directed=True,
        category=category,
        generator="rmat",
        rmat_scale=scale,
        rmat_edge_factor=edge_factor,
    )


def _pl(key, full_name, num_v, num_e, avg_deg, directed, category, exponent):
    return DatasetSpec(
        key=key,
        full_name=full_name,
        num_vertices=num_v,
        num_edges=num_e,
        avg_degree=avg_deg,
        directed=directed,
        category=category,
        generator="powerlaw",
        skew_exponent=exponent,
    )


#: All sixteen datasets of Table III, keyed by their paper abbreviation.
DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in [
        _rmat("R19", "rmat-19-32", 19, 32),
        _rmat("R21", "rmat-21-32", 21, 32),
        _rmat("R24", "rmat-24-16", 24, 16),
        # graph500-scale23 is Kronecker as well (same family, D=56).
        _rmat("G23", "graph500-scale23", 23, 56),
        _pl("GG", "web-google", 916_428, 5_105_039, 6, True, "Web", 1.7),
        _pl("AM", "amazon-2008", 735_323, 5_158_388, 7, True, "Social", 1.3),
        _pl("HD", "web-hudong", 1_984_484, 14_869_484, 7, True, "Web", 2.2),
        _pl("BB", "web-baidu-baike", 2_141_300, 17_794_839, 8, True, "Web", 2.1),
        _pl("TC", "wiki-topcats", 1_791_489, 28_511_807, 16, True, "Web", 1.8),
        _pl("PK", "pokec-relationships", 1_632_803, 30_622_564, 19, True, "Social", 1.4),
        _pl("FU", "soc-flickr-und", 1_715_255, 15_555_041, 9, False, "Social", 1.9),
        _pl("WP", "wikipedia-20070206", 3_566_907, 45_030_389, 13, True, "Web", 1.9),
        _pl("LJ", "liveJournal", 4_847_571, 68_993_773, 14, False, "Social", 1.7),
        _pl("HW", "ca-hollywood-2009", 1_139_905, 56_375_711, 53, False, "Collabo.", 1.6),
        _pl("DB", "dbpedia-link", 18_268_992, 172_183_984, 9, True, "Social", 2.0),
        _pl("OR", "orkut", 3_072_441, 117_184_899, 38, False, "Social", 1.4),
    ]
}


def load_dataset(key: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Instantiate the synthetic stand-in for a Table III dataset by key."""
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {key!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[key].instantiate(scale=scale, seed=seed)


def table3_rows(keys: Optional[List[str]] = None) -> List[Tuple]:
    """Rows of Table III: (key, full name, V, E, D, type, category)."""
    selected = keys if keys is not None else list(DATASETS)
    rows = []
    for key in selected:
        spec = DATASETS[key]
        rows.append(
            (
                spec.key,
                spec.full_name,
                spec.num_vertices,
                spec.num_edges,
                spec.avg_degree,
                "Directed" if spec.directed else "Undirected",
                spec.category,
            )
        )
    return rows
