"""CSR (compressed sparse row) view of a graph.

The FPGA pipelines consume COO edge lists, but the CPU baselines (Ligra-style
push/pull traversal, Sec. VI-H) and the reference algorithm implementations
used to validate functional results want CSR adjacency.  This module converts
between the two.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.coo import Graph


class CsrGraph:
    """Adjacency in CSR form: ``indptr``/``indices`` (+ optional weights)."""

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "graph",
    ):
        if indptr.size != num_vertices + 1:
            raise ValueError(
                f"indptr must have V+1={num_vertices + 1} entries, "
                f"got {indptr.size}"
            )
        if indptr[-1] != indices.size:
            raise ValueError("indptr[-1] must equal the number of edges")
        self.num_vertices = int(num_vertices)
        self.indptr = indptr.astype(np.int64)
        self.indices = indices.astype(np.int64)
        self.weights = weights
        self.name = name

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.indices.size)

    @classmethod
    def from_coo(cls, graph: Graph, transpose: bool = False) -> "CsrGraph":
        """Build CSR adjacency from a COO graph.

        With ``transpose=True`` the rows are destination vertices (in-CSR),
        which is what pull-style traversal needs.
        """
        rows = graph.dst if transpose else graph.src
        cols = graph.src if transpose else graph.dst
        order = np.argsort(rows, kind="stable")
        rows_sorted = rows[order]
        cols_sorted = cols[order]
        weights = None
        if graph.weights is not None:
            weights = graph.weights[order]
        counts = np.bincount(rows_sorted, minlength=graph.num_vertices)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls(
            graph.num_vertices,
            indptr,
            cols_sorted,
            weights=weights,
            name=graph.name,
        )

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbor IDs of ``vertex``."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.indices[lo:hi]

    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex`` in this CSR orientation."""
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def to_coo(self) -> Graph:
        """Convert back to a COO :class:`~repro.graph.coo.Graph`."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self.indptr),
        )
        return Graph(
            self.num_vertices,
            src,
            self.indices,
            weights=self.weights,
            name=self.name,
        )
