"""Binary graph persistence (NumPy ``.npz``).

Text edge lists (``repro.graph.io``) are interoperable but slow for
multi-million-edge graphs; the ``.npz`` container stores the COO arrays
directly and loads an order of magnitude faster — the format the
examples and benchmarks use to cache generated stand-ins.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.coo import Graph

#: Format marker stored in every file for forward compatibility.
FORMAT_VERSION = 1


def save_npz(graph: Graph, path: Union[str, Path]) -> Path:
    """Write a graph to a compressed ``.npz`` container."""
    path = Path(path)
    arrays = {
        "version": np.array([FORMAT_VERSION]),
        "num_vertices": np.array([graph.num_vertices]),
        "src": graph.src,
        "dst": graph.dst,
        "name": np.array([graph.name]),
    }
    if graph.weights is not None:
        arrays["weights"] = np.asarray(graph.weights)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_npz(path: Union[str, Path]) -> Graph:
    """Load a graph written by :func:`save_npz`.

    The stored arrays are already in sorted COO order, so loading skips
    the sort.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version > FORMAT_VERSION:
            raise ValueError(
                f"graph file version {version} is newer than supported "
                f"({FORMAT_VERSION})"
            )
        weights = data["weights"] if "weights" in data.files else None
        return Graph(
            int(data["num_vertices"][0]),
            data["src"],
            data["dst"],
            weights=weights,
            name=str(data["name"][0]),
            assume_sorted=True,
        )
