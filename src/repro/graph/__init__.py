"""Graph substrate: structures, generators, reordering and partitioning.

This package implements everything ReGraph's preprocessing pipeline needs
(Fig. 8, steps 3-4 of the paper): the COO graph representation with source
vertices in ascending order, a CSR view for CPU baselines, synthetic dataset
generators standing in for Table III, degree-based grouping (DBG), the
destination-interval partitioner of Fig. 1 and the per-partition workload
statistics profiled in Fig. 2.
"""

from repro.graph.coo import Graph
from repro.graph.csr import CsrGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    table3_rows,
)
from repro.graph.reorder import (
    DbgResult,
    degree_based_grouping,
    identity_ordering,
)
from repro.graph.partition import (
    Partition,
    PartitionSet,
    partition_graph,
)
from repro.graph.stats import (
    PartitionProfile,
    diversity_summary,
    estimate_skew_exponent,
    profile_partitions,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.formats import load_npz, save_npz
from repro.graph.subgraph import (
    induced_subgraph,
    sample_edges,
    top_degree_core,
)

__all__ = [
    "Graph",
    "CsrGraph",
    "erdos_renyi_graph",
    "power_law_graph",
    "rmat_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "table3_rows",
    "DbgResult",
    "degree_based_grouping",
    "identity_ordering",
    "Partition",
    "PartitionSet",
    "partition_graph",
    "PartitionProfile",
    "diversity_summary",
    "estimate_skew_exponent",
    "profile_partitions",
    "read_edge_list",
    "write_edge_list",
    "load_npz",
    "save_npz",
    "induced_subgraph",
    "sample_edges",
    "top_degree_core",
]
