"""Destination-interval graph partitioning (Fig. 1c).

Following ThunderGP's scheme, which the paper adopts verbatim: a graph with
``V`` vertices is cut into ``ceil(V / U)`` partitions, the i-th owning the
destination-vertex interval ``[i*U, (i+1)*U)``.  Each partition's edge list
contains every edge whose destination falls in its interval, kept in
ascending source order (inherited from the globally sorted COO input) —
the invariant the Vertex Loader's last-block cache relies on.

``U`` equals the number of destination vertices one pipeline's Gather PEs
can buffer on chip (65,536 on U280, 32,768 on U50; Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graph.coo import Graph
from repro.utils.validation import check_positive


@dataclass
class Partition:
    """One destination-interval partition and its edge list."""

    index: int
    vertex_lo: int
    vertex_hi: int
    src: np.ndarray
    dst: np.ndarray
    weights: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        """Edges whose destination lies in this partition's interval."""
        return int(self.src.size)

    @property
    def num_dst_vertices(self) -> int:
        """Size of the destination interval (== U except the last)."""
        return self.vertex_hi - self.vertex_lo

    def src_blocks(self, vertices_per_block: int) -> np.ndarray:
        """Global-memory block index of each edge's source property."""
        return self.src // vertices_per_block

    def unique_src_count(self) -> int:
        """Distinct source vertices this partition dereferences."""
        if self.num_edges == 0:
            return 0
        return int(np.unique(self.src).size)

    def src_span_blocks(self, vertices_per_block: int) -> int:
        """Blocks between the first and last source access, inclusive.

        This is the amount of data the Little pipeline's burst read streams
        through when it covers the partition's source range.
        """
        if self.num_edges == 0:
            return 0
        blocks = self.src_blocks(vertices_per_block)
        return int(blocks[-1] - blocks[0] + 1)

    def slice(self, lo: int, hi: int) -> "Partition":
        """A sub-partition over the edge index range ``[lo, hi)``.

        Used by the intra-cluster scheduler to hand contiguous edge chunks
        of one partition to different pipelines of the same cluster.
        """
        return Partition(
            index=self.index,
            vertex_lo=self.vertex_lo,
            vertex_hi=self.vertex_hi,
            src=self.src[lo:hi],
            dst=self.dst[lo:hi],
            weights=None if self.weights is None else self.weights[lo:hi],
        )


@dataclass
class PartitionSet:
    """All partitions of one graph for a given interval size ``U``."""

    graph: Graph
    interval: int
    partitions: List[Partition] = field(default_factory=list)

    @property
    def num_partitions(self) -> int:
        """Total partition count, ``ceil(V / U)``."""
        return len(self.partitions)

    def nonempty(self) -> List[Partition]:
        """Partitions that own at least one edge (Fig. 2 drops empties)."""
        return [p for p in self.partitions if p.num_edges > 0]

    def total_edges(self) -> int:
        """Sum of edges over all partitions (== E of the graph)."""
        return sum(p.num_edges for p in self.partitions)


def partition_graph(graph: Graph, interval: int) -> PartitionSet:
    """Partition ``graph`` into destination intervals of size ``interval``.

    One vectorised stable sort groups edges by partition while preserving
    the ascending-source order within each partition; cost is O(E log E) in
    NumPy terms but plays the role of the paper's O(E) partitioning scan.
    """
    check_positive("interval", interval)
    num_parts = -(-graph.num_vertices // interval)
    pid = graph.dst // interval
    order = np.argsort(pid, kind="stable")
    src = graph.src[order]
    dst = graph.dst[order]
    weights = None if graph.weights is None else graph.weights[order]
    counts = np.bincount(pid, minlength=num_parts)
    bounds = np.concatenate(([0], np.cumsum(counts)))

    partitions = []
    for i in range(num_parts):
        lo, hi = bounds[i], bounds[i + 1]
        partitions.append(
            Partition(
                index=i,
                vertex_lo=i * interval,
                vertex_hi=min((i + 1) * interval, graph.num_vertices),
                src=src[lo:hi],
                dst=dst[lo:hi],
                weights=None if weights is None else weights[lo:hi],
            )
        )
    return PartitionSet(graph=graph, interval=interval, partitions=partitions)
