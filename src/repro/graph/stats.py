"""Per-partition workload statistics (the Fig. 2 profile).

For every partition the paper profiles two quantities on a log scale:
the percentage of the graph's edges it owns and the percentage of source
vertices it dereferences.  Dense partitions score high on both; sparse
partitions are low on both.  These statistics also feed the analytic
performance model and the dataset characterisation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.partition import Partition, PartitionSet


@dataclass(frozen=True)
class PartitionProfile:
    """Workload profile of a single partition."""

    index: int
    num_edges: int
    edge_fraction: float
    unique_src: int
    src_fraction: float
    src_span_blocks: int

    @property
    def edge_percent(self) -> float:
        """Percentage of the graph's edges in this partition (Fig. 2 y1)."""
        return 100.0 * self.edge_fraction

    @property
    def src_percent(self) -> float:
        """Percentage of source vertices accessed (Fig. 2 y2)."""
        return 100.0 * self.src_fraction


def profile_partition(
    partition: Partition,
    total_edges: int,
    num_vertices: int,
    vertices_per_block: int = 16,
) -> PartitionProfile:
    """Profile one partition against whole-graph totals."""
    unique_src = partition.unique_src_count()
    return PartitionProfile(
        index=partition.index,
        num_edges=partition.num_edges,
        edge_fraction=partition.num_edges / max(total_edges, 1),
        unique_src=unique_src,
        src_fraction=unique_src / max(num_vertices, 1),
        src_span_blocks=partition.src_span_blocks(vertices_per_block),
    )


def profile_partitions(
    pset: PartitionSet,
    include_empty: bool = False,
    vertices_per_block: int = 16,
) -> List[PartitionProfile]:
    """Profile all partitions; empties are dropped by default as in Fig. 2."""
    total_edges = pset.graph.num_edges
    num_vertices = pset.graph.num_vertices
    parts = pset.partitions if include_empty else pset.nonempty()
    return [
        profile_partition(p, total_edges, num_vertices, vertices_per_block)
        for p in parts
    ]


def estimate_skew_exponent(degrees: np.ndarray, tail_fraction: float = 0.2):
    """MLE power-law exponent of a degree distribution (Hill estimator).

    Fit over the top ``tail_fraction`` of nonzero degrees:
    ``alpha = 1 + n / sum(ln(d / d_min))``.  Used to check that dataset
    stand-ins carry the same skew class as their published originals;
    returns ``nan`` when the tail is too small to fit.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    nonzero = np.sort(degrees[degrees > 0])[::-1]
    count = max(int(nonzero.size * tail_fraction), 2)
    if nonzero.size < 2:
        return float("nan")
    tail = nonzero[:count]
    d_min = tail[-1]
    logs = np.log(tail / d_min)
    total = logs.sum()
    if total <= 0:
        return float("inf")
    return float(1.0 + tail.size / total)


def diversity_summary(profiles: List[PartitionProfile]) -> dict:
    """Aggregate diversity indicators used by tests and the Fig. 2 bench.

    Returns the edge share of the heaviest partition, the median edge
    share, and the ratio between them — a direct measure of the workload
    imbalance that motivates heterogeneous pipelines.
    """
    if not profiles:
        return {"max_edge_pct": 0.0, "median_edge_pct": 0.0, "imbalance": 0.0}
    shares = np.array([p.edge_percent for p in profiles])
    max_share = float(shares.max())
    median_share = float(np.median(shares))
    return {
        "max_edge_pct": max_share,
        "median_edge_pct": median_share,
        "imbalance": max_share / max(median_share, 1e-12),
    }
