"""Edge-list I/O.

ReGraph consumes plain whitespace-separated edge lists (the format SNAP and
network-repository publish).  These helpers read/write that format so the
examples can persist generated graphs and users can bring their own data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.coo import Graph


def write_edge_list(graph: Graph, path: Union[str, Path]) -> None:
    """Write ``src dst [weight]`` lines; a ``#`` header records V."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# vertices: {graph.num_vertices}\n")
        if graph.weights is None:
            np.savetxt(
                handle,
                np.column_stack((graph.src, graph.dst)),
                fmt="%d",
            )
        else:
            np.savetxt(
                handle,
                np.column_stack((graph.src, graph.dst, graph.weights)),
                fmt="%d",
            )


def read_edge_list(
    path: Union[str, Path],
    num_vertices: int = 0,
    name: str = "",
) -> Graph:
    """Read an edge list written by :func:`write_edge_list` or SNAP-style.

    If ``num_vertices`` is 0 it is recovered from the ``# vertices:`` header
    when present, otherwise inferred as ``max ID + 1``.
    """
    path = Path(path)
    header_vertices = 0
    with path.open() as handle:
        first = handle.readline()
        if first.startswith("#") and "vertices:" in first:
            header_vertices = int(first.split("vertices:")[1])
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        data = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if data.size == 0:
        raise ValueError(f"{path} contains no edges")
    src, dst = data[:, 0], data[:, 1]
    weights = data[:, 2] if data.shape[1] > 2 else None
    if num_vertices == 0:
        num_vertices = header_vertices or int(max(src.max(), dst.max()) + 1)
    return Graph(
        num_vertices,
        src,
        dst,
        weights=weights,
        name=name or path.stem,
    )
