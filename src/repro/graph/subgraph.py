"""Subgraph extraction and edge sampling.

Scaling studies need smaller *structure-preserving* views of a graph:
uniform edge sampling (keeps the degree-distribution shape), induced
subgraphs over a vertex set (keeps local structure), and top-degree
cores (keeps the hub subnetwork DBG concentrates on).  All return
standard :class:`~repro.graph.coo.Graph` objects, so everything
downstream — partitioning, scheduling, simulation — works unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.graph.coo import Graph
from repro.utils.validation import check_probability


def sample_edges(graph: Graph, fraction: float, seed: int = 0) -> Graph:
    """Keep each edge independently with probability ``fraction``.

    Vertex IDs are preserved (the vertex set does not shrink), so degree
    shapes scale down uniformly — the right primitive for throughput
    scaling studies.
    """
    check_probability("fraction", fraction)
    rng = np.random.default_rng(seed)
    keep = rng.random(graph.num_edges) < fraction
    if not keep.any():
        raise ValueError("sampling removed every edge; raise fraction")
    return Graph(
        graph.num_vertices,
        graph.src[keep],
        graph.dst[keep],
        weights=None if graph.weights is None else graph.weights[keep],
        name=f"{graph.name}-s{fraction:g}",
        assume_sorted=True,
    )


def induced_subgraph(graph: Graph, vertices: np.ndarray) -> Graph:
    """Subgraph induced by ``vertices``, compacted to dense new IDs.

    Edges survive iff both endpoints are selected; selected vertices are
    renumbered ``0 .. k-1`` in ascending original-ID order.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise ValueError("vertex set is empty")
    if vertices.min() < 0 or vertices.max() >= graph.num_vertices:
        raise ValueError("vertex IDs out of range")
    member = np.zeros(graph.num_vertices, dtype=bool)
    member[vertices] = True
    keep = member[graph.src] & member[graph.dst]
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size)
    return Graph(
        int(vertices.size),
        remap[graph.src[keep]],
        remap[graph.dst[keep]],
        weights=None if graph.weights is None else graph.weights[keep],
        name=f"{graph.name}-induced{vertices.size}",
    )


def top_degree_core(graph: Graph, num_vertices: int) -> Graph:
    """Induced subgraph over the ``num_vertices`` highest in-degree
    vertices — the hub core that forms the dense partitions."""
    if not 0 < num_vertices <= graph.num_vertices:
        raise ValueError(
            f"num_vertices must be in (0, {graph.num_vertices}]"
        )
    order = np.argsort(graph.in_degrees())[::-1][:num_vertices]
    return induced_subgraph(graph, order)
