"""Synthetic graph generators.

The paper evaluates on RMAT/Kronecker graphs [22], a Graph500 graph [33] and
a dozen real-world web/social graphs (Table III).  Real datasets are not
available offline, so :mod:`repro.graph.datasets` instantiates stand-ins from
the generators here:

* :func:`rmat_graph` — recursive-matrix Kronecker generator, the exact family
  behind ``rmat-19-32`` / ``rmat-21-32`` / ``rmat-24-16`` and Graph500.
* :func:`power_law_graph` — configurable-skew preferential generator used to
  mimic each real graph's V/E/degree-skew signature.
* :func:`erdos_renyi_graph` — uniform random graph, the "no skew" control
  used by tests and ablations.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.coo import Graph
from repro.utils.validation import check_positive, check_probability


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "rmat",
) -> Graph:
    """Generate an RMAT graph with ``2**scale`` vertices.

    Edge endpoints are drawn by descending ``scale`` levels of the 2x2
    recursive matrix with quadrant probabilities (a, b, c, d = 1-a-b-c),
    the standard Graph500 parameterisation.  Duplicate edges and self loops
    are kept, as Graph500 generators do.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    for nm, p in (("a", a), ("b", b), ("c", c)):
        check_probability(nm, p)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")

    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = num_vertices * edge_factor

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Descend the recursion one bit level at a time, fully vectorised.
    for _ in range(scale):
        r = rng.random(num_edges)
        src_bit = r >= a + b
        dst_bit = (r >= a) & (r < a + b) | (r >= a + b + c)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    # Scramble IDs so the heavy quadrant is not trivially the low ID range;
    # real Graph500 applies a similar permutation.
    perm = rng.permutation(num_vertices)
    return Graph(num_vertices, perm[src], perm[dst], name=name)


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.0,
    seed: int = 0,
    name: str = "powerlaw",
    undirected: bool = False,
) -> Graph:
    """Generate a graph whose in/out degrees follow a Zipf-like power law.

    Endpoints are sampled independently from a discrete distribution
    ``p(rank) ~ rank**-exponent`` over a random vertex permutation, which
    yields the "few hot vertices" structure (Sec. II-A) that drives the
    dense/sparse partition split.  With ``undirected=True`` each sampled
    edge is mirrored, emulating the undirected datasets of Table III.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("num_edges", num_edges)
    if exponent <= 0:
        raise ValueError(f"exponent must be > 0, got {exponent}")

    rng = np.random.default_rng(seed)
    n_draw = num_edges // 2 if undirected else num_edges
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    pmf = ranks ** (-exponent)
    pmf /= pmf.sum()
    cdf = np.cumsum(pmf)

    def sample(count: int) -> np.ndarray:
        return np.searchsorted(cdf, rng.random(count), side="left")

    perm = rng.permutation(num_vertices)
    src = perm[sample(n_draw)]
    dst = perm[sample(n_draw)]
    if undirected:
        src, dst = np.concatenate((src, dst)), np.concatenate((dst, src))
    return Graph(num_vertices, src, dst, name=name)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> Graph:
    """Generate a uniform random directed multigraph (G(n, m) style)."""
    check_positive("num_vertices", num_vertices)
    check_positive("num_edges", num_edges)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    return Graph(num_vertices, src, dst, name=name)
