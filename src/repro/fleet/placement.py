"""Health- and capability-aware placement of jobs onto replicas.

The score of placing job *j* on replica *r* is the predicted virtual
completion time, penalised by the replica's live health:

    finish(r, j) = available_at(r) + predicted_seconds(r, j)
                   * (1 + breaker_penalty * open_breakers(r))
                   * (1 + degraded_penalty * degraded_pipelines(r))

``predicted_seconds`` comes from the Eq. 1-4 analytic model: the job's
graph is preprocessed once per device configuration (cached — replicas
of the same device type share the plan) and the plan's estimated
per-iteration makespan is scaled by the job's iteration cap.  Replicas
whose HBM could not hold the job's buffers are filtered out entirely.
Ties break on replica id, keeping placement fully deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.framework import PreprocessResult
from repro.fleet.job import Job
from repro.fleet.replica import Replica
from repro.graph.coo import Graph
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES


def preprocess_cache_key(
    device: str,
    buffer_vertices: int,
    num_pipelines: int,
    graph_spec,
    symmetrize: bool,
) -> tuple:
    """Identity of one preprocessed artefact.

    Shared with the fleet prewarm workers
    (:mod:`repro.perf.prewarm`), which compute entries out-of-process
    and must label them with byte-for-byte the same key the engine
    will look up.
    """
    return (
        device,
        buffer_vertices,
        num_pipelines,
        tuple(sorted(graph_spec.to_dict().items())),
        symmetrize,
    )


class PlacementEngine:
    """Scores replicas for a job and picks the best one."""

    def __init__(
        self,
        breaker_penalty: float = 0.25,
        degraded_penalty: float = 0.5,
    ):
        self.breaker_penalty = breaker_penalty
        self.degraded_penalty = degraded_penalty
        #: (device, buffer_vertices, num_pipelines, graph name) -> pre
        self._pre_cache: Dict[tuple, PreprocessResult] = {}

    # ------------------------------------------------------------------
    def _cache_key(self, replica: Replica, job: Job) -> tuple:
        fw = replica.handle.framework
        # wcc executes the symmetrized graph, so the app is part of
        # the identity of the preprocessed artefact.
        return preprocess_cache_key(
            replica.device,
            fw.pipeline.gather_buffer_vertices,
            fw.num_pipelines,
            job.graph,
            job.app == "wcc",
        )

    def seed(self, key: tuple, pre: PreprocessResult) -> None:
        """Adopt a preprocessed artefact computed elsewhere (prewarm).

        First writer wins: preprocessing is deterministic in the key,
        so a seeded artefact and a locally computed one are
        interchangeable.
        """
        self._pre_cache.setdefault(key, pre)

    def preprocess_for(
        self, replica: Replica, job: Job, graph: Graph
    ) -> PreprocessResult:
        """Preprocess ``graph`` for ``replica``'s configuration (cached).

        The cache is shared across replicas of the same device type, so
        a failover re-attempt on a sibling card skips the offline phase.
        """
        key = self._cache_key(replica, job)
        pre = self._pre_cache.get(key)
        if pre is None:
            pre = replica.handle.framework.preprocess(graph)
            self._pre_cache[key] = pre
        return pre

    def predicted_seconds(
        self, replica: Replica, job: Job, graph: Graph
    ) -> float:
        """Eq. 1-4 modelled execution time of the job on this replica."""
        pre = self.preprocess_for(replica, job, graph)
        hz = pre.resources.frequency_mhz * 1e6
        iterations = max(job.max_iterations or 1, 1)
        return pre.plan.estimated_makespan * iterations / hz

    # ------------------------------------------------------------------
    @staticmethod
    def fits(replica: Replica, graph: Graph) -> bool:
        """Whether the job's buffers respect per-channel HBM capacity."""
        num_pipes = replica.handle.framework.num_pipelines
        edges_per_channel = -(-graph.num_edges * graph.edge_bytes // max(
            num_pipes, 1
        ))
        props_per_channel = graph.num_vertices * 4
        return max(edges_per_channel, props_per_channel) <= (
            CHANNEL_CAPACITY_BYTES
        )

    def score(
        self, replica: Replica, job: Job, graph: Graph, now: float
    ) -> float:
        """Predicted completion time, health-penalised (lower = better)."""
        predicted = self.predicted_seconds(replica, job, graph)
        penalty = (
            (1.0 + self.breaker_penalty * replica.open_breakers())
            * (1.0 + self.degraded_penalty * replica.degraded_pipelines())
        )
        return replica.available_at(now) + predicted * penalty

    def choose(
        self,
        replicas: List[Replica],
        job: Job,
        graph: Graph,
        now: float,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[Replica]:
        """Best SERVING replica for the job, or ``None`` if there is none."""
        candidates = [
            r for r in replicas
            if r.is_serving
            and r.replica_id not in exclude
            and self.fits(r, graph)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (self.score(r, job, graph, now), r.replica_id),
        )
