"""Health- and capability-aware placement of jobs onto replicas.

The score of placing job *j* on replica *r* is the predicted virtual
completion time, penalised by the replica's live health:

    finish(r, j) = available_at(r) + predicted_seconds(r, j)
                   * (1 + breaker_penalty * open_breakers(r))
                   * (1 + degraded_penalty * degraded_pipelines(r))

``predicted_seconds`` is a **what-if probe**: the job's graph is
preprocessed once per device configuration (cached — replicas of the
same device type share the plan) and the per-iteration makespan is
answered by a kept :class:`~repro.compiled.IncrementalEvaluator` — one
per preprocessed artefact — whose channel parameters are dirtied to the
probed replica's instead of re-running a full model evaluation per
probe (``probe_mode="incremental"``, the default).  The oracle modes
``"full"`` (cold compiled evaluation every probe) and ``"analytic"``
(the legacy Eq. 1-4 estimate) exist for equivalence testing and
fallback; incremental and full probes produce bit-identical timings, so
placement decisions cannot depend on the mode.  Probes always use the
compiled evaluator regardless of the process-global
:func:`repro.compiled.compiled_enabled` switch, keeping fleet digests
independent of how the datapath itself is simulated.  Replicas whose
HBM could not hold the job's buffers are filtered out entirely.  Ties
break on replica id, keeping placement fully deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.framework import PreprocessResult
from repro.fleet.job import Job
from repro.fleet.replica import Replica
from repro.graph.coo import Graph
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES

PROBE_MODES = ("incremental", "full", "analytic")


def preprocess_cache_key(
    device: str,
    buffer_vertices: int,
    num_pipelines: int,
    graph_spec,
    symmetrize: bool,
) -> tuple:
    """Identity of one preprocessed artefact.

    Shared with the fleet prewarm workers
    (:mod:`repro.perf.prewarm`), which compute entries out-of-process
    and must label them with byte-for-byte the same key the engine
    will look up.
    """
    return (
        device,
        buffer_vertices,
        num_pipelines,
        tuple(sorted(graph_spec.to_dict().items())),
        symmetrize,
    )


class PlacementEngine:
    """Scores replicas for a job and picks the best one."""

    def __init__(
        self,
        breaker_penalty: float = 0.25,
        degraded_penalty: float = 0.5,
        probe_mode: str = "incremental",
    ):
        if probe_mode not in PROBE_MODES:
            from repro.errors import UserInputError

            raise UserInputError(
                f"probe_mode must be one of {PROBE_MODES}, got "
                f"{probe_mode!r}"
            )
        self.breaker_penalty = breaker_penalty
        self.degraded_penalty = degraded_penalty
        self.probe_mode = probe_mode
        #: (device, buffer_vertices, num_pipelines, graph name) -> pre
        self._pre_cache: Dict[tuple, PreprocessResult] = {}
        #: pre-cache key -> kept IncrementalEvaluator for what-if probes
        self._evaluators: Dict[tuple, object] = {}
        #: Probe accounting — a perf side-channel (surfaced in fleet
        #: soak reports), never part of any digest.
        self.probe_stats: Dict[str, int] = {
            "probes": 0,
            "evaluator_builds": 0,
            "incremental_refreshes": 0,
            "full_evaluations": 0,
            "nodes_reevaluated": 0,
        }

    # ------------------------------------------------------------------
    def _cache_key(self, replica: Replica, job: Job) -> tuple:
        fw = replica.handle.framework
        # wcc executes the symmetrized graph, so the app is part of
        # the identity of the preprocessed artefact.
        return preprocess_cache_key(
            replica.device,
            fw.pipeline.gather_buffer_vertices,
            fw.num_pipelines,
            job.graph,
            job.app == "wcc",
        )

    def seed(self, key: tuple, pre: PreprocessResult) -> None:
        """Adopt a preprocessed artefact computed elsewhere (prewarm).

        First writer wins: preprocessing is deterministic in the key,
        so a seeded artefact and a locally computed one are
        interchangeable.
        """
        self._pre_cache.setdefault(key, pre)

    def preprocess_for(
        self, replica: Replica, job: Job, graph: Graph
    ) -> PreprocessResult:
        """Preprocess ``graph`` for ``replica``'s configuration (cached).

        The cache is shared across replicas of the same device type, so
        a failover re-attempt on a sibling card skips the offline phase.
        """
        key = self._cache_key(replica, job)
        pre = self._pre_cache.get(key)
        if pre is None:
            pre = replica.handle.framework.preprocess(graph)
            self._pre_cache[key] = pre
        return pre

    def predicted_seconds(
        self, replica: Replica, job: Job, graph: Graph
    ) -> float:
        """What-if probe: modelled execution time of the job on this
        replica.

        Incremental and full probes answer with the *simulated*
        per-iteration makespan (pipeline busy times overlapped with the
        Apply stream, plus the Writer tail — the same composition as
        :class:`~repro.core.system.IterationReport`); the analytic mode
        keeps the legacy Eq. 1-4 estimate.
        """
        pre = self.preprocess_for(replica, job, graph)
        hz = pre.resources.frequency_mhz * 1e6
        iterations = max(job.max_iterations or 1, 1)
        self.probe_stats["probes"] += 1
        if self.probe_mode == "analytic":
            return pre.plan.estimated_makespan * iterations / hz
        cycles = self._probe_iteration_cycles(replica, job, pre)
        return cycles * iterations / hz

    def _evaluator_for(self, key: tuple, pre: PreprocessResult, params):
        """The kept per-artefact evaluator (built on first probe)."""
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            from repro.compiled import IncrementalEvaluator

            evaluator = IncrementalEvaluator(pre.plan, params=params)
            self._evaluators[key] = evaluator
            self.probe_stats["evaluator_builds"] += 1
            self.probe_stats["nodes_reevaluated"] += len(
                evaluator.last_dirty
            )
        return evaluator

    def _probe_iteration_cycles(
        self, replica: Replica, job: Job, pre: PreprocessResult
    ) -> float:
        """Simulated cycles of one iteration on this replica.

        The kept evaluator answers the pipeline busy times; in
        ``"incremental"`` mode a probe against a replica with different
        channel parameters re-evaluates only the dirtied nodes, while
        ``"full"`` re-evaluates everything cold (the oracle the
        incremental mode must match bit-for-bit).  Apply and Writer are
        closed-form in the vertex count, so they are computed directly
        under the probed replica's channel.
        """
        from repro.arch.apply import ApplySim
        from repro.arch.writer import WriterSim
        from repro.hbm.channel import HbmChannelModel

        params = replica.handle.framework.channel.params
        key = self._cache_key(replica, job)
        evaluator = self._evaluator_for(key, pre, params)
        if self.probe_mode == "full":
            evaluator.params = params
            timings = evaluator.full_evaluation()
            self.probe_stats["full_evaluations"] += 1
            self.probe_stats["nodes_reevaluated"] += len(
                evaluator.cplan.nodes
            )
            rows = (
                evaluator.cplan.little_by_pipe + evaluator.cplan.big_by_pipe
            )
            busiest = max(
                (
                    sum(timings[n.index].total_cycles for n in row)
                    for row in rows
                ),
                default=0.0,
            )
        else:
            dirty = evaluator.set_channel_params(params)
            if dirty:
                self.probe_stats["incremental_refreshes"] += 1
                self.probe_stats["nodes_reevaluated"] += len(dirty)
            little, big = evaluator.busy_cycles()
            busiest = max(little + big, default=0.0)
        channel = HbmChannelModel(params)
        num_vertices = pre.graph.num_vertices
        apply_cycles = ApplySim(channel).cycles(num_vertices)
        writer_cycles = WriterSim(channel).cycles(num_vertices)
        return max(busiest, apply_cycles) + writer_cycles

    # ------------------------------------------------------------------
    @staticmethod
    def fits(replica: Replica, graph: Graph) -> bool:
        """Whether the job's buffers respect per-channel HBM capacity."""
        num_pipes = replica.handle.framework.num_pipelines
        edges_per_channel = -(-graph.num_edges * graph.edge_bytes // max(
            num_pipes, 1
        ))
        props_per_channel = graph.num_vertices * 4
        return max(edges_per_channel, props_per_channel) <= (
            CHANNEL_CAPACITY_BYTES
        )

    def score(
        self, replica: Replica, job: Job, graph: Graph, now: float
    ) -> float:
        """Predicted completion time, health-penalised (lower = better)."""
        predicted = self.predicted_seconds(replica, job, graph)
        penalty = (
            (1.0 + self.breaker_penalty * replica.open_breakers())
            * (1.0 + self.degraded_penalty * replica.degraded_pipelines())
        )
        return replica.available_at(now) + predicted * penalty

    def choose(
        self,
        replicas: List[Replica],
        job: Job,
        graph: Graph,
        now: float,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[Replica]:
        """Best SERVING replica for the job, or ``None`` if there is none."""
        candidates = [
            r for r in replicas
            if r.is_serving
            and r.replica_id not in exclude
            and self.fits(r, graph)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (self.score(r, job, graph, now), r.replica_id),
        )
