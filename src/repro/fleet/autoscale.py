"""Warm-start autoscaling of the fleet's replica pool.

The :class:`Autoscaler` watches the telemetry the
:class:`~repro.fleet.admission.AdmissionController` and the run loop
already produce — queue depth, shed rate, p99 *virtual* job latency —
and decides when the pool should grow or shrink.  The mechanism stays
in :class:`~repro.fleet.runtime.FleetRuntime` (it owns the pool, the
journal and the clock); this module owns only the *policy*:

* **Hysteresis** — one bad observation never scales.  The pool grows
  only after ``breach_streak`` consecutive breached observations and
  shrinks only after ``idle_streak`` consecutive idle ones, so a
  circuit-breaker flap (one replica drains, queue briefly spikes, the
  canary repairs it) doesn't thrash the pool.
* **Cooldown** — after any action the autoscaler holds still for
  ``cooldown_seconds`` of virtual time, long enough for the previous
  decision's effect to show up in the telemetry it watches.
* **Warm start** — replicas spawned into a fleet with an attached
  :class:`~repro.perf.sharedcache.SharedTimingStore` adopt its verified
  entries into the in-process L1
  (:meth:`~repro.perf.sharedcache.SharedTimingStore.warm`), so a
  scale-up serves from cache instead of re-simulating the working set.

Everything is driven by the fleet's deterministic virtual clock: the
same job stream against the same policy produces the same decision
trace, which is why decisions can be asserted in tests and surfaced in
reports.  Decisions and counters are a **side-channel** (like
``recovery_stats``), deliberately outside the digest-bearing
:class:`~repro.fleet.report.FleetReport` payload.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import UserInputError

#: Decision labels recorded in the trace.
SCALE_UP = "scale-up"
SCALE_DOWN = "scale-down"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Tunables of the autoscaler (validated on construction)."""

    #: Pool size bounds (serving + draining + quarantined, i.e. every
    #: replica that could still return to service).
    min_replicas: int = 1
    max_replicas: int = 8
    #: Scale-up trigger: queued jobs per serving replica above this is a
    #: breach.
    queue_depth_per_replica: float = 4.0
    #: Scale-up trigger: fraction of submissions shed since the last
    #: observation above this is a breach (breaker for admission
    #: pressure the queue depth alone can hide).
    shed_rate_trigger: float = 0.05
    #: Scale-up trigger: p99 virtual job latency (submit -> finish)
    #: above this is a breach.  ``None`` disables the latency trigger.
    p99_latency_target_seconds: Optional[float] = None
    #: Consecutive breached observations before the pool grows.
    breach_streak: int = 2
    #: Consecutive idle observations before the pool shrinks.
    idle_streak: int = 4
    #: Virtual seconds the autoscaler holds still after any action.
    cooldown_seconds: float = 0.5
    #: Completed-job latencies kept for the p99 estimate.
    latency_window: int = 64

    def __post_init__(self):
        if self.min_replicas < 1:
            raise UserInputError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise UserInputError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if (
            not math.isfinite(self.queue_depth_per_replica)
            or self.queue_depth_per_replica <= 0
        ):
            raise UserInputError(
                "queue_depth_per_replica must be positive, got "
                f"{self.queue_depth_per_replica}"
            )
        if not 0.0 <= self.shed_rate_trigger <= 1.0:
            raise UserInputError(
                f"shed_rate_trigger must be in [0, 1], got "
                f"{self.shed_rate_trigger}"
            )
        if self.p99_latency_target_seconds is not None and (
            not math.isfinite(self.p99_latency_target_seconds)
            or self.p99_latency_target_seconds <= 0
        ):
            raise UserInputError(
                "p99_latency_target_seconds must be positive, got "
                f"{self.p99_latency_target_seconds}"
            )
        if self.breach_streak < 1 or self.idle_streak < 1:
            raise UserInputError(
                "breach_streak and idle_streak must be >= 1, got "
                f"{self.breach_streak}/{self.idle_streak}"
            )
        if (
            not math.isfinite(self.cooldown_seconds)
            or self.cooldown_seconds < 0
        ):
            raise UserInputError(
                f"cooldown_seconds must be non-negative, got "
                f"{self.cooldown_seconds}"
            )
        if self.latency_window < 1:
            raise UserInputError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )

    def to_dict(self) -> dict:
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "queue_depth_per_replica": self.queue_depth_per_replica,
            "shed_rate_trigger": self.shed_rate_trigger,
            "p99_latency_target_seconds": self.p99_latency_target_seconds,
            "breach_streak": self.breach_streak,
            "idle_streak": self.idle_streak,
            "cooldown_seconds": self.cooldown_seconds,
            "latency_window": self.latency_window,
        }

    @staticmethod
    def from_dict(data: dict) -> "AutoscalePolicy":
        return AutoscalePolicy(**dict(data))


class Autoscaler:
    """Decision engine: telemetry in, ``scale-up``/``scale-down`` out.

    The runtime calls :meth:`observe` after every event, applies the
    returned action (spawning/draining replicas through the normal
    lifecycle), and reports back via :meth:`note_spawned` /
    :meth:`note_retired`.  ``store`` is the optional shared timing
    store new replicas warm-start from.
    """

    def __init__(
        self,
        policy: Optional[AutoscalePolicy] = None,
        store=None,
    ):
        self.policy = policy or AutoscalePolicy()
        #: Optional :class:`~repro.perf.sharedcache.SharedTimingStore`
        #: for warm-starting spawned replicas.
        self.store = store
        #: Chronological decision trace (plain dicts, virtual-time
        #: stamped) — a side-channel, never part of the report digest.
        self.decisions: List[dict] = []
        self.spawned = 0
        self.retired = 0
        self.warmed_entries = 0
        self._spawn_seq = 0
        self._breach_streak = 0
        self._idle_streak = 0
        self._last_action_at = -math.inf
        self._last_submitted = 0
        self._last_shed = 0
        self._latencies: deque = deque(maxlen=self.policy.latency_window)
        #: Replica ids this autoscaler is draining *down* (as opposed to
        #: draining toward quarantine): the runtime retires these once
        #: idle instead of probing them with canaries.
        self._draining_down: Dict[str, float] = {}

    # -- telemetry in ---------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        """Feed one completed job's virtual latency (submit -> finish)."""
        self._latencies.append(float(seconds))

    def p99_latency(self) -> Optional[float]:
        """Windowed p99 virtual latency, or ``None`` before any data."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        index = max(int(math.ceil(0.99 * len(ordered))) - 1, 0)
        return ordered[index]

    # -- the decision ---------------------------------------------------
    def observe(
        self,
        now: float,
        queue_depth: int,
        serving: int,
        pool_size: int,
        admission_stats,
    ) -> Optional[str]:
        """One observation of the fleet; returns the action due, if any.

        ``serving`` counts SERVING replicas, ``pool_size`` everything
        not RETIRED (the bound :attr:`AutoscalePolicy.max_replicas`
        applies to).  ``admission_stats`` is the live
        :class:`~repro.fleet.admission.AdmissionStats`.
        """
        submitted = admission_stats.submitted
        shed = (
            admission_stats.shed_queue_depth
            + admission_stats.shed_rate_limit
            + admission_stats.shed_tenant_quota
        )
        new_submitted = submitted - self._last_submitted
        new_shed = shed - self._last_shed
        self._last_submitted = submitted
        self._last_shed = shed
        shed_rate = new_shed / new_submitted if new_submitted > 0 else 0.0

        p99 = self.p99_latency()
        target = self.policy.p99_latency_target_seconds
        breached = (
            queue_depth > self.policy.queue_depth_per_replica * max(serving, 1)
            or shed_rate > self.policy.shed_rate_trigger
            or (target is not None and p99 is not None and p99 > target)
        )
        idle = (
            queue_depth == 0
            and new_shed == 0
            and not breached
        )
        if breached:
            self._breach_streak += 1
            self._idle_streak = 0
        elif idle:
            self._idle_streak += 1
            self._breach_streak = 0
        else:
            self._breach_streak = 0
            self._idle_streak = 0

        if now - self._last_action_at < self.policy.cooldown_seconds:
            return None
        if (
            self._breach_streak >= self.policy.breach_streak
            and pool_size < self.policy.max_replicas
        ):
            return SCALE_UP
        if (
            self._idle_streak >= self.policy.idle_streak
            and serving > self.policy.min_replicas
        ):
            return SCALE_DOWN
        return None

    # -- actions back from the runtime ----------------------------------
    def next_replica_id(self, taken) -> str:
        """A fresh ``as<n>`` id not colliding with the current pool."""
        taken = set(taken)
        while True:
            self._spawn_seq += 1
            candidate = f"as{self._spawn_seq}"
            if candidate not in taken:
                return candidate

    def warm_start(self, cache) -> int:
        """Adopt shared-store entries into ``cache`` (L1); 0 without a
        store attached.  Damaged entries quarantine as on any read."""
        if self.store is None:
            return 0
        adopted = self.store.warm(cache)
        self.warmed_entries += adopted
        return adopted

    def note_spawned(
        self, replica_id: str, now: float, warmed: int
    ) -> None:
        self.spawned += 1
        self._breach_streak = 0
        self._last_action_at = now
        self.decisions.append({
            "action": SCALE_UP,
            "replica_id": replica_id,
            "time": now,
            "warmed_entries": warmed,
        })

    def begin_scale_down(self, replica_id: str, now: float) -> None:
        """Mark a drain as a scale-down (runtime retires it once idle)."""
        self._idle_streak = 0
        self._last_action_at = now
        self._draining_down[replica_id] = now
        self.decisions.append({
            "action": SCALE_DOWN,
            "replica_id": replica_id,
            "time": now,
        })

    def owns_drain(self, replica_id: str) -> bool:
        """Whether this drain is a scale-down (retire when idle) rather
        than a health drain (quarantine + canary when idle)."""
        return replica_id in self._draining_down

    def note_retired(self, replica_id: str, now: float) -> None:
        self._draining_down.pop(replica_id, None)
        self.retired += 1

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        """Side-channel snapshot for CLI / health surfaces."""
        return {
            "policy": self.policy.to_dict(),
            "spawned": self.spawned,
            "retired": self.retired,
            "warmed_entries": self.warmed_entries,
            "p99_latency_seconds": self.p99_latency(),
            "breach_streak": self._breach_streak,
            "idle_streak": self._idle_streak,
            "draining_down": sorted(self._draining_down),
            "decisions": [dict(d) for d in self.decisions],
        }
