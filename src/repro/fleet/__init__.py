"""A serving runtime over a pool of accelerator replicas.

``repro.fleet`` turns the single-card host runtime into a small
*fleet*: a pool of :class:`~repro.fleet.replica.Replica` handles (mixed
U280/U50) serving a queue of graph-analytics :class:`Job`\\ s under
faults.  The pieces:

* :mod:`~repro.fleet.job` — the job / result model (deadlines,
  priorities, fault plans);
* :mod:`~repro.fleet.admission` — bounded queue + token-bucket rate
  limiting with *typed* load shedding;
* :mod:`~repro.fleet.placement` — health-aware scoring (open circuit
  breakers, degradation state, HBM fit, Eq. 1-4 predicted makespan);
* :mod:`~repro.fleet.replica` — the SERVING → DRAINING → QUARANTINED →
  REPAIRED/RETIRED lifecycle machine;
* :mod:`~repro.fleet.runtime` — the deterministic discrete-event loop
  (failover with backoff, hedged execution, canary re-probes);
* :mod:`~repro.fleet.report` — the bit-reproducible run report.

See ``docs/FLEET.md`` for the architecture walkthrough.
"""

from repro.fleet.admission import AdmissionController, TokenBucket
from repro.fleet.job import FLEET_APPS, Job, JobResult
from repro.fleet.placement import PlacementEngine
from repro.fleet.replica import (
    DRAINING,
    QUARANTINED,
    REPLICA_STATES,
    RETIRED,
    SERVING,
    Replica,
    make_replica,
)
from repro.fleet.report import AssignmentRecord, FleetReport
from repro.fleet.runtime import FleetPolicy, FleetRuntime, ReplicaKill

__all__ = [
    "AdmissionController",
    "AssignmentRecord",
    "DRAINING",
    "FLEET_APPS",
    "FleetPolicy",
    "FleetReport",
    "FleetRuntime",
    "Job",
    "JobResult",
    "PlacementEngine",
    "QUARANTINED",
    "REPLICA_STATES",
    "RETIRED",
    "Replica",
    "ReplicaKill",
    "SERVING",
    "TokenBucket",
    "make_replica",
]
