"""A serving runtime over a pool of accelerator replicas.

``repro.fleet`` turns the single-card host runtime into a small
*fleet*: a pool of :class:`~repro.fleet.replica.Replica` handles (mixed
U280/U50) serving a queue of graph-analytics :class:`Job`\\ s under
faults.  The pieces:

* :mod:`~repro.fleet.job` — the job / result model (deadlines,
  priorities, fault plans);
* :mod:`~repro.fleet.admission` — bounded queue + token-bucket rate
  limiting with *typed* load shedding;
* :mod:`~repro.fleet.placement` — health-aware scoring (open circuit
  breakers, degradation state, HBM fit, Eq. 1-4 predicted makespan);
* :mod:`~repro.fleet.replica` — the SERVING → DRAINING → QUARANTINED →
  REPAIRED/RETIRED lifecycle machine;
* :mod:`~repro.fleet.runtime` — the deterministic discrete-event loop
  (failover with backoff, hedged execution, canary re-probes);
* :mod:`~repro.fleet.autoscale` — the warm-start autoscaler (hysteresis
  + cooldown over admission telemetry, replicas spawned with the shared
  timing cache pre-loaded);
* :mod:`~repro.fleet.report` — the bit-reproducible run report;
* :mod:`~repro.fleet.journal` — the write-ahead job journal (append-
  only, checksummed, fsync'd) behind crash recovery;
* :mod:`~repro.fleet.store` — the durable result store with
  idempotency-keyed exactly-once writes.

See ``docs/FLEET.md`` for the architecture walkthrough and
``docs/DURABILITY.md`` for the journal format and recovery contract.
"""

from repro.fleet.admission import AdmissionController, TokenBucket
from repro.fleet.autoscale import AutoscalePolicy, Autoscaler
from repro.fleet.job import FLEET_APPS, Job, JobResult
from repro.fleet.journal import (
    JOURNAL_SCHEMA,
    QUARANTINE_SCHEMA,
    RECORD_TYPES,
    JobJournal,
    JournalProjection,
    JournalRecord,
    RepairReport,
    apply_storage_fault,
    project_journal,
    read_journal,
    repair_journal,
)
from repro.fleet.placement import PlacementEngine
from repro.fleet.replica import (
    DRAINING,
    QUARANTINED,
    REPLICA_STATES,
    RETIRED,
    SERVING,
    Replica,
    make_replica,
)
from repro.fleet.report import AssignmentRecord, FleetReport
from repro.fleet.runtime import (
    FleetPolicy,
    FleetRuntime,
    RecoveredFleet,
    ReplicaKill,
)
from repro.fleet.store import STORE_SCHEMA, ResultStore

__all__ = [
    "AdmissionController",
    "AssignmentRecord",
    "AutoscalePolicy",
    "Autoscaler",
    "DRAINING",
    "FLEET_APPS",
    "FleetPolicy",
    "FleetReport",
    "FleetRuntime",
    "JOURNAL_SCHEMA",
    "Job",
    "JobJournal",
    "JobResult",
    "JournalProjection",
    "JournalRecord",
    "PlacementEngine",
    "QUARANTINED",
    "QUARANTINE_SCHEMA",
    "RECORD_TYPES",
    "REPLICA_STATES",
    "RETIRED",
    "RecoveredFleet",
    "RepairReport",
    "Replica",
    "ReplicaKill",
    "ResultStore",
    "STORE_SCHEMA",
    "SERVING",
    "TokenBucket",
    "apply_storage_fault",
    "make_replica",
    "project_journal",
    "read_journal",
    "repair_journal",
]
