"""Write-ahead job journal: the fleet's durable intent log.

Every externally visible fleet transition — the run's full input batch,
each admission decision, each dispatch, each attempt outcome, each
replica lifecycle change, each terminal result — is appended here
*before* it takes effect in memory, so a hard-killed runtime can always
be reconstructed from disk.  The format is deliberately boring:

* **append-only JSONL** — one record per line, never rewritten;
* **per-record checksums** — each line carries a CRC32 over the
  canonical JSON of ``{seq, type, payload}``, so torn writes and
  bit-flips are *detected*, never silently replayed;
* **monotone sequence numbers** — gaps and regressions mark records
  that were damaged (quarantined) rather than never written;
* **fsync per append** (the WAL contract; ``fsync=False`` trades the
  crash guarantee for throughput, for benchmarks and tests).

Recovery is *replay-based*: because the fleet runtime is a pure
function of its inputs (deterministic virtual-clock event loop), the
``run-begin`` record — policy, pool recipe, the full job batch, the
kill schedule — is sufficient to re-derive every later state exactly.
The remaining records serve observability (the :class:`JournalProjection`
state view of the moment of death), cross-checking (journaled result
digests must match what replay recomputes), and corruption containment:
a record that fails its checksum mid-file is quarantined into a
``regraph-fleet-quarantine/v1`` bundle and replay continues; a damaged
*tail* (torn write, partial fsync) is truncated back to the last intact
record, exactly like a database WAL.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import UserInputError

#: Journal line-format identifier; bump on incompatible layout changes.
JOURNAL_SCHEMA = "regraph-fleet-journal/v1"

#: Quarantine-bundle schema (corrupt records extracted during repair).
QUARANTINE_SCHEMA = "regraph-fleet-quarantine/v1"

#: Record types the runtime appends (documented in docs/DURABILITY.md).
RECORD_TYPES = (
    "run-begin",      # the full input batch: policy, pool, jobs, kills
    "recover",        # a recovered runtime resumed serving this journal
    "submit",         # a job reached the admission controller
    "admit",          # admission accepted the job into the queue
    "reject",         # admission shed the job (terminal, typed)
    "dispatch",       # an attempt was placed onto a replica
    "attempt-end",    # an in-flight attempt finished (ok or failed)
    "kill",           # a replica-kill chaos event fired
    "replica-state",  # a replica lifecycle transition (+ breaker bank)
    "result",         # a job reached a terminal JobResult
    "run-end",        # the event loop went idle (report digest)
)


def _canonical(seq: int, rtype: str, payload: dict) -> str:
    return json.dumps(
        {"seq": seq, "type": rtype, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def _crc(seq: int, rtype: str, payload: dict) -> str:
    data = _canonical(seq, rtype, payload).encode()
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


@dataclass(frozen=True)
class JournalRecord:
    """One intact, checksum-verified journal entry."""

    seq: int
    type: str
    payload: dict

    def line(self) -> str:
        """The on-disk JSONL encoding (checksum included)."""
        return json.dumps(
            {
                "seq": self.seq,
                "type": self.type,
                "payload": self.payload,
                "crc": _crc(self.seq, self.type, self.payload),
            },
            sort_keys=True,
            separators=(",", ":"),
        ) + "\n"


@dataclass(frozen=True)
class CorruptRecord:
    """One line that failed parsing, checksum, or sequence checks."""

    line_number: int
    reason: str
    #: Raw line content, truncated so a quarantine bundle stays small.
    raw: str

    def to_dict(self) -> dict:
        return {
            "line_number": self.line_number,
            "reason": self.reason,
            "raw": self.raw,
        }


@dataclass
class JournalReadResult:
    """Outcome of scanning a journal file."""

    records: List[JournalRecord] = field(default_factory=list)
    corrupt: List[CorruptRecord] = field(default_factory=list)
    #: True when the damage is confined to the file's tail (torn write /
    #: partial fsync): everything after the last intact record.
    torn_tail: bool = False
    #: Byte offset just past the last intact record (truncation point).
    intact_bytes: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt


_RAW_LIMIT = 256


def _parse_line(number: int, line: str, expected_seq: int):
    """-> (JournalRecord, None) or (None, CorruptRecord)."""
    raw = line[:_RAW_LIMIT]
    try:
        data = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None, CorruptRecord(number, "unparseable JSON", raw)
    if not isinstance(data, dict):
        return None, CorruptRecord(number, "record is not an object", raw)
    try:
        seq = int(data["seq"])
        rtype = str(data["type"])
        payload = data["payload"]
        crc = str(data["crc"])
    except (KeyError, TypeError, ValueError):
        return None, CorruptRecord(number, "missing record fields", raw)
    if not isinstance(payload, dict):
        return None, CorruptRecord(number, "payload is not an object", raw)
    if crc != _crc(seq, rtype, payload):
        return None, CorruptRecord(
            number, f"checksum mismatch (stored {crc})", raw
        )
    if seq < expected_seq:
        return None, CorruptRecord(
            number, f"sequence regression ({seq} < {expected_seq})", raw
        )
    return JournalRecord(seq=seq, type=rtype, payload=payload), None


def read_journal(path: Union[str, Path]) -> JournalReadResult:
    """Scan ``path``, verifying every record; never modifies the file.

    Records that fail their checksum are reported in ``corrupt``; a run
    of damage that extends to end-of-file is additionally flagged as a
    ``torn_tail`` (repair may truncate it — mid-file corruption can only
    be quarantined, since later intact records must be preserved).
    """
    path = Path(path)
    if not path.exists():
        raise UserInputError(
            f"fleet journal not found: {path} (run `repro fleet run "
            f"--journal {path}` to create one)"
        )
    result = JournalReadResult()
    expected_seq = 0
    offset = 0
    damage_started_at: Optional[int] = None
    with open(path, "rb") as fh:
        for number, blob in enumerate(fh):
            line_len = len(blob)
            line = blob.decode("utf-8", errors="replace").rstrip("\n")
            complete = blob.endswith(b"\n")
            record = None
            corrupt = None
            if not complete:
                corrupt = CorruptRecord(
                    number, "unterminated final record", line[:_RAW_LIMIT]
                )
            else:
                record, corrupt = _parse_line(number, line, expected_seq)
            if record is not None:
                result.records.append(record)
                expected_seq = record.seq + 1
                offset += line_len
                result.intact_bytes = offset
                damage_started_at = None
            else:
                result.corrupt.append(corrupt)
                offset += line_len
                if damage_started_at is None:
                    damage_started_at = number
    # Damage reaching end-of-file is a torn tail; intact_bytes already
    # points at the last good record, so truncation recovers the file.
    if result.corrupt and damage_started_at is not None:
        last_bad = result.corrupt[-1].line_number
        tail_bad = [c for c in result.corrupt if c.line_number >= damage_started_at]
        if tail_bad and last_bad >= damage_started_at:
            result.torn_tail = True
    return result


@dataclass
class RepairReport:
    """What :func:`repair_journal` did to a damaged file."""

    truncated_bytes: int = 0
    quarantined: int = 0
    quarantine_path: str = ""

    def to_dict(self) -> dict:
        return {
            "truncated_bytes": self.truncated_bytes,
            "quarantined": self.quarantined,
            "quarantine_path": self.quarantine_path,
        }


def write_quarantine_bundle(
    journal_path: Union[str, Path],
    corrupt: List[CorruptRecord],
    quarantine_dir: Union[str, Path],
    torn_tail: bool,
) -> str:
    """Extract corrupt records into a replay-safe quarantine bundle.

    Crash-safe via the usual stage-then-:func:`os.replace` pattern; the
    bundle never blocks recovery — it is evidence, not state.
    """
    journal_path = Path(journal_path)
    quarantine_dir = Path(quarantine_dir)
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    bundle = {
        "schema": QUARANTINE_SCHEMA,
        "journal": str(journal_path),
        "torn_tail": torn_tail,
        "corrupt_records": [c.to_dict() for c in corrupt],
    }
    final = quarantine_dir / f"{journal_path.name}.quarantine.json"
    tmp = final.with_name(final.name + f".tmp-{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(bundle, fh, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    return str(final)


def repair_journal(
    path: Union[str, Path],
    quarantine_dir: Optional[Union[str, Path]] = None,
) -> Tuple[List[JournalRecord], RepairReport]:
    """Make ``path`` replayable again: truncate a torn tail, quarantine
    everything else that is damaged, and return the intact records.

    Corruption never raises here — the whole point of recovery is that a
    half-written or bit-flipped journal still yields every record that
    *was* durably written.  Only a missing file (nothing to recover) is
    a :class:`~repro.errors.UserInputError`.
    """
    path = Path(path)
    scan = read_journal(path)
    report = RepairReport()
    if scan.corrupt:
        if quarantine_dir is not None:
            report.quarantine_path = write_quarantine_bundle(
                path, scan.corrupt, quarantine_dir, scan.torn_tail
            )
        report.quarantined = len(scan.corrupt)
        if scan.torn_tail:
            size = path.stat().st_size
            if scan.intact_bytes < size:
                # Truncating trailing garbage is safe by construction:
                # every byte past intact_bytes failed verification.
                with open(path, "rb+") as fh:
                    fh.truncate(scan.intact_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
                report.truncated_bytes = size - scan.intact_bytes
    return scan.records, report


class JobJournal:
    """Append-side handle: write-ahead logging for one fleet runtime.

    Appends are synchronous and (by default) fsync'd — a record is
    *durable before the transition it describes takes effect*.  Opening
    an existing journal continues its sequence, which is how a recovered
    runtime keeps journaling into the same file across restarts.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._next_seq = 0
        self.appended = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            scan = read_journal(self.path)
            if scan.records:
                self._next_seq = scan.records[-1].seq + 1
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, rtype: str, payload: dict) -> int:
        """Durably append one record; returns its sequence number."""
        if rtype not in RECORD_TYPES:
            raise UserInputError(
                f"unknown journal record type {rtype!r}; "
                f"expected one of {RECORD_TYPES}"
            )
        record = JournalRecord(self._next_seq, rtype, payload)
        self._fh.write(record.line())
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._next_seq += 1
        self.appended += 1
        return record.seq

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# State projection: what the journal says the world looked like
# ----------------------------------------------------------------------
@dataclass
class JournalProjection:
    """A fold of the journal into the runtime state at its last record.

    This is the observability half of recovery: the *authoritative*
    rebuild is deterministic replay from ``run-begin`` (see
    ``FleetRuntime.recover``), but the projection answers "what was the
    fleet doing when it died" without re-executing anything — the
    admission queue, the in-flight job set, replica lifecycle states and
    their circuit-breaker banks, and which jobs already had terminal
    results.
    """

    #: Jobs admitted but not terminal: job_id -> full Job payload.
    queued: Dict[str, dict] = field(default_factory=dict)
    #: Jobs with an attempt in flight at the last record: job_id ->
    #: {replica_id, attempt, kind, time}.
    inflight: Dict[str, dict] = field(default_factory=dict)
    #: Replica lifecycle: replica_id -> {state, reason, breakers}.
    replicas: Dict[str, dict] = field(default_factory=dict)
    #: Terminal results seen in the journal: job_id -> JobResult payload.
    results: Dict[str, dict] = field(default_factory=dict)
    #: job_ids shed by admission control.
    rejected: Dict[str, dict] = field(default_factory=dict)
    #: Number of ``recover`` markers (restarts this journal survived).
    recoveries: int = 0
    #: Payload of the ``run-begin`` record (None when it was damaged).
    run_begin: Optional[dict] = None
    #: Payload of the final ``run-end`` (None for an interrupted run).
    run_end: Optional[dict] = None

    @property
    def outstanding(self) -> List[str]:
        """Admitted jobs with no terminal result yet, in admit order."""
        return [j for j in self.queued if j not in self.results]

    def to_dict(self) -> dict:
        return {
            "queued": sorted(self.outstanding),
            "inflight": dict(self.inflight),
            "replicas": dict(self.replicas),
            "results": len(self.results),
            "rejected": len(self.rejected),
            "recoveries": self.recoveries,
            "completed_run": self.run_end is not None,
        }


def project_journal(records: List[JournalRecord]) -> JournalProjection:
    """Fold intact records into the last-known runtime state.

    Tolerant by design: quarantined (missing) records merely leave the
    projection slightly stale, which is acceptable because replay — not
    the projection — is what rebuilds authoritative state.
    """
    view = JournalProjection()
    for record in records:
        payload = record.payload
        rtype = record.type
        if rtype == "run-begin":
            if view.run_begin is None:
                view.run_begin = payload
        elif rtype == "recover":
            view.recoveries += 1
            # A resumed run replays from t=0: transient state resets,
            # durable results (store-backed) survive.
            view.queued.clear()
            view.inflight.clear()
            view.replicas.clear()
        elif rtype == "admit":
            view.queued[payload["job_id"]] = payload.get("job", {})
        elif rtype == "reject":
            result = payload.get("result", {})
            view.rejected[result.get("job_id", "")] = result
        elif rtype == "dispatch":
            view.inflight[payload["job_id"]] = {
                "replica_id": payload.get("replica_id", ""),
                "attempt": payload.get("attempt", 0),
                "kind": payload.get("kind", ""),
                "time": payload.get("time", 0.0),
            }
        elif rtype == "attempt-end":
            view.inflight.pop(payload.get("job_id", ""), None)
        elif rtype == "kill":
            entry = view.replicas.setdefault(payload.get("replica_id", ""), {})
            entry["state"] = "RETIRED"
            entry["reason"] = payload.get("reason", "killed")
        elif rtype == "replica-state":
            entry = view.replicas.setdefault(payload.get("replica_id", ""), {})
            entry["state"] = payload.get("state", "")
            entry["reason"] = payload.get("reason", "")
            if "breakers" in payload:
                entry["breakers"] = payload["breakers"]
        elif rtype == "result":
            result = payload.get("result", {})
            job_id = result.get("job_id", "")
            view.results[job_id] = result
            view.inflight.pop(job_id, None)
        elif rtype == "run-end":
            view.run_end = payload
    return view


# ----------------------------------------------------------------------
# Storage-level fault injection (chaos kill-restart cells)
# ----------------------------------------------------------------------
def apply_storage_fault(path: Union[str, Path], fault) -> str:
    """Damage a journal/store file the way real storage does.

    ``fault`` is a :class:`~repro.faults.plan.StorageFault`.  Returns a
    human-readable description of what was done (chaos cell logs).

    * ``torn-write`` — the final record was half-written when the
      process died: keep ~60% of its bytes, no trailing newline.
    * ``partial-fsync`` — the tail page never hit the platter: the last
      record vanishes entirely *and* the one before it is cut mid-line.
    * ``bit-flip`` — one bit of record ``fault.record`` (negative counts
      from the end) flips at rest; the record's checksum must catch it.
    """
    path = Path(path)
    raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    if not lines:
        return "no-op: file is empty"
    kind = fault.kind
    if kind == "torn-write":
        last = lines[-1]
        keep = max(len(last) * 3 // 5, 1)
        damaged = b"".join(lines[:-1]) + last[:keep]
        path.write_bytes(damaged)
        return (
            f"torn write: final record cut to {keep}/{len(last)} bytes"
        )
    if kind == "partial-fsync":
        if len(lines) == 1:
            path.write_bytes(lines[0][: max(len(lines[0]) // 2, 1)])
            return "partial fsync: sole record cut in half"
        prev = lines[-2]
        keep = max(len(prev) // 2, 1)
        damaged = b"".join(lines[:-2]) + prev[:keep]
        path.write_bytes(damaged)
        return (
            "partial fsync: final record lost, previous cut to "
            f"{keep}/{len(prev)} bytes"
        )
    if kind == "bit-flip":
        index = fault.record if fault.record >= 0 else len(lines) + fault.record
        index = min(max(index, 0), len(lines) - 1)
        target = bytearray(lines[index])
        # Flip a bit inside the payload region (past the '{'), never the
        # newline, so the line still parses as *a* line.
        pos = min(len(target) // 2, len(target) - 2)
        target[pos] ^= 0x10
        lines[index] = bytes(target)
        path.write_bytes(b"".join(lines))
        return f"bit-flip: record {index} byte {pos} flipped at rest"
    raise UserInputError(
        f"unknown storage fault kind {kind!r}"
    )
