"""Aggregate outcome of one fleet run: jobs, replicas, assignment log.

The report is pure data with an exact dict round-trip; ``digest()`` is a
SHA-256 over the canonical JSON, which is how tests assert that a fleet
run is bit-reproducible from its seed (every timestamp in it is virtual,
so the digest is stable across machines and wall-clock conditions).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.fleet.job import JobResult


@dataclass(frozen=True)
class AssignmentRecord:
    """One dispatch decision (the failover-determinism property's log).

    ``kind`` is ``"primary"`` (first attempt), ``"requeue"`` (failover
    re-attempt), ``"hedge"`` (deadline duplicate) or ``"canary"``
    (quarantine probe).
    """

    seq: int
    time: float
    job_id: str
    replica_id: str
    attempt: int
    kind: str

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "job_id": self.job_id,
            "replica_id": self.replica_id,
            "attempt": self.attempt,
            "kind": self.kind,
        }

    @staticmethod
    def from_dict(data: dict) -> "AssignmentRecord":
        return AssignmentRecord(
            seq=int(data["seq"]),
            time=float(data["time"]),
            job_id=str(data["job_id"]),
            replica_id=str(data["replica_id"]),
            attempt=int(data["attempt"]),
            kind=str(data["kind"]),
        )


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(int(round(fraction * (len(sorted_values) - 1))), 0)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass
class FleetReport:
    """Everything one fleet run produced."""

    config: dict = field(default_factory=dict)
    jobs: List[JobResult] = field(default_factory=list)
    replicas: List[dict] = field(default_factory=list)
    assignments: List[AssignmentRecord] = field(default_factory=list)
    admission: dict = field(default_factory=dict)
    #: Fleet-level counters: failovers, hedges, hedge wins, canaries...
    counters: Dict[str, int] = field(default_factory=dict)
    #: Virtual time the run went idle.
    makespan_seconds: float = 0.0

    # -- aggregates -----------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(j.status == "completed" for j in self.jobs)

    @property
    def rejected(self) -> int:
        return sum(j.status == "rejected" for j in self.jobs)

    @property
    def failed(self) -> int:
        return sum(j.status == "failed" for j in self.jobs)

    @property
    def admitted(self) -> int:
        return len(self.jobs) - self.rejected

    @property
    def lost(self) -> int:
        """Admitted jobs without a terminal outcome — must always be 0."""
        return self.admitted - self.completed - self.failed

    @property
    def unclean(self) -> int:
        """Completed jobs with conformance violations (must be 0)."""
        return sum(
            bool(j.violations) for j in self.jobs if j.status == "completed"
        )

    @property
    def passed(self) -> bool:
        """Zero jobs lost, every completion conformance-clean."""
        return self.lost == 0 and self.unclean == 0

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs over the run's virtual makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed / self.makespan_seconds

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p99 virtual latency over completed jobs."""
        latencies = sorted(
            j.latency_seconds for j in self.jobs if j.status == "completed"
        )
        return {
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
        }

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        percentiles = self.latency_percentiles()
        return {
            "config": dict(self.config),
            "jobs": [j.to_dict() for j in self.jobs],
            "replicas": [dict(r) for r in self.replicas],
            "assignments": [a.to_dict() for a in self.assignments],
            "admission": dict(self.admission),
            "counters": dict(self.counters),
            "makespan_seconds": self.makespan_seconds,
            "summary": {
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "lost": self.lost,
                "unclean": self.unclean,
                "jobs_per_second": self.jobs_per_second,
                "latency_p50_seconds": percentiles["p50"],
                "latency_p99_seconds": percentiles["p99"],
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "FleetReport":
        return FleetReport(
            config=dict(data.get("config", {})),
            jobs=[JobResult.from_dict(j) for j in data.get("jobs", [])],
            replicas=[dict(r) for r in data.get("replicas", [])],
            assignments=[
                AssignmentRecord.from_dict(a)
                for a in data.get("assignments", [])
            ],
            admission=dict(data.get("admission", {})),
            counters=dict(data.get("counters", {})),
            makespan_seconds=float(data.get("makespan_seconds", 0.0)),
        )

    def digest(self) -> str:
        """SHA-256 over canonical JSON (bit-reproducibility contract)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def assignment_log(self) -> List[tuple]:
        """Compact (job, replica, attempt, kind) tuples, in dispatch
        order — what the determinism property compares."""
        return [
            (a.job_id, a.replica_id, a.attempt, a.kind)
            for a in self.assignments
        ]
