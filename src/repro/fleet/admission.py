"""Admission control: bounded queue depth + token-bucket rate limiting.

Load shedding is *typed*: every rejection raises (and is recorded as)
:class:`~repro.errors.FleetOverloadError` with a machine-readable reason,
so an overloaded fleet degrades into explicit rejections, never into
silently dropped jobs.  The token bucket refills against the fleet's
deterministic virtual clock, which keeps admission decisions — like
everything else in the runtime — bit-reproducible from the seed.

On top of the fleet-wide bucket the controller can carry **per-tenant**
buckets (:meth:`AdmissionController.register_tenant`): the serving
facade maps API keys to tenants and each tenant burns its own tokens
before touching the shared ones.  A tenant over quota is shed with
:class:`~repro.errors.TenantQuotaExceededError` (a 429-style subclass of
the overload error) and never consumes fleet-wide capacity — checks are
peek-then-take across both buckets, so a rejection charges nothing.
The controller is clock-agnostic: the fleet feeds it virtual time, the
wall-clock gateway feeds it ``time.monotonic()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import (
    FleetOverloadError,
    TenantQuotaExceededError,
    UserInputError,
)


class TokenBucket:
    """Deterministic token bucket refilled by virtual time."""

    def __init__(self, rate_per_second: float, burst: int):
        if not math.isfinite(rate_per_second) or rate_per_second <= 0:
            raise UserInputError(
                f"token rate must be positive and finite, got "
                f"{rate_per_second}"
            )
        if burst < 1:
            raise UserInputError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate_per_second)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last_refill) * self.rate,
            )
            self._last_refill = now

    def try_take(self, now: float) -> bool:
        """Consume one token at virtual time ``now`` if one is available."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def tokens_at(self, now: float) -> float:
        """Tokens that would be available at ``now`` (inspection only)."""
        self._refill(now)
        return self._tokens

    def take(self, now: float) -> None:
        """Unconditionally consume one token (caller peeked first)."""
        self._refill(now)
        self._tokens -= 1.0


@dataclass
class AdmissionStats:
    """Counters the admission controller accumulates for the report."""

    submitted: int = 0
    admitted: int = 0
    shed_queue_depth: int = 0
    shed_rate_limit: int = 0
    shed_tenant_quota: int = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed_queue_depth": self.shed_queue_depth,
            "shed_rate_limit": self.shed_rate_limit,
            "shed_tenant_quota": self.shed_tenant_quota,
        }


class AdmissionController:
    """Gate between the outside world and the fleet's job queue."""

    def __init__(
        self,
        max_queue_depth: int,
        rate_limit_jobs_per_second: Optional[float] = None,
        rate_limit_burst: int = 8,
    ):
        if max_queue_depth < 1:
            raise UserInputError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.max_queue_depth = int(max_queue_depth)
        self.bucket = (
            TokenBucket(rate_limit_jobs_per_second, rate_limit_burst)
            if rate_limit_jobs_per_second is not None
            else None
        )
        self.tenant_buckets: Dict[str, TokenBucket] = {}
        self.stats = AdmissionStats()

    def register_tenant(
        self,
        tenant: str,
        rate_per_second: Optional[float],
        burst: int = 8,
    ) -> None:
        """Attach a per-tenant bucket (``None`` rate = unmetered tenant)."""
        if not tenant:
            raise UserInputError("tenant name must be non-empty")
        if rate_per_second is None:
            self.tenant_buckets.pop(tenant, None)
            return
        self.tenant_buckets[tenant] = TokenBucket(rate_per_second, burst)

    def admit(
        self,
        job,
        queue_depth: int,
        now: float,
        tenant: Optional[str] = None,
    ) -> None:
        """Accept ``job`` or raise a typed :class:`FleetOverloadError`.

        ``queue_depth`` is the number of jobs already waiting; ``now``
        is the admission clock (virtual time in the fleet, wall clock in
        the serving gateway).  When ``tenant`` names a registered
        bucket, the tenant's tokens and the fleet-wide tokens are
        checked peek-first and only charged together on acceptance — a
        rejection at either level consumes nothing anywhere.
        """
        self.stats.submitted += 1
        if queue_depth >= self.max_queue_depth:
            self.stats.shed_queue_depth += 1
            raise FleetOverloadError(
                f"job {job.job_id} shed: queue depth {queue_depth} at "
                f"limit {self.max_queue_depth}",
                reason="queue-depth",
            )
        tenant_bucket = (
            self.tenant_buckets.get(tenant) if tenant is not None else None
        )
        if tenant_bucket is not None and tenant_bucket.tokens_at(now) < 1.0:
            self.stats.shed_tenant_quota += 1
            raise TenantQuotaExceededError(
                f"job {job.job_id} shed: tenant {tenant!r} over quota "
                f"({tenant_bucket.rate:g} jobs/s, "
                f"burst {tenant_bucket.burst})",
                tenant=tenant or "",
                reason="tenant-rate",
            )
        if self.bucket is not None and self.bucket.tokens_at(now) < 1.0:
            self.stats.shed_rate_limit += 1
            raise FleetOverloadError(
                f"job {job.job_id} shed: admission rate limit exceeded "
                f"({self.bucket.rate:g} jobs/s, burst {self.bucket.burst})",
                reason="rate-limit",
            )
        if tenant_bucket is not None:
            tenant_bucket.take(now)
        if self.bucket is not None:
            self.bucket.take(now)
        self.stats.admitted += 1
