"""Admission control: bounded queue depth + token-bucket rate limiting.

Load shedding is *typed*: every rejection raises (and is recorded as)
:class:`~repro.errors.FleetOverloadError` with a machine-readable reason,
so an overloaded fleet degrades into explicit rejections, never into
silently dropped jobs.  The token bucket refills against the fleet's
deterministic virtual clock, which keeps admission decisions — like
everything else in the runtime — bit-reproducible from the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import FleetOverloadError, UserInputError


class TokenBucket:
    """Deterministic token bucket refilled by virtual time."""

    def __init__(self, rate_per_second: float, burst: int):
        if not math.isfinite(rate_per_second) or rate_per_second <= 0:
            raise UserInputError(
                f"token rate must be positive and finite, got "
                f"{rate_per_second}"
            )
        if burst < 1:
            raise UserInputError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate_per_second)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last_refill) * self.rate,
            )
            self._last_refill = now

    def try_take(self, now: float) -> bool:
        """Consume one token at virtual time ``now`` if one is available."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def tokens_at(self, now: float) -> float:
        """Tokens that would be available at ``now`` (inspection only)."""
        self._refill(now)
        return self._tokens


@dataclass
class AdmissionStats:
    """Counters the admission controller accumulates for the report."""

    submitted: int = 0
    admitted: int = 0
    shed_queue_depth: int = 0
    shed_rate_limit: int = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed_queue_depth": self.shed_queue_depth,
            "shed_rate_limit": self.shed_rate_limit,
        }


class AdmissionController:
    """Gate between the outside world and the fleet's job queue."""

    def __init__(
        self,
        max_queue_depth: int,
        rate_limit_jobs_per_second: Optional[float] = None,
        rate_limit_burst: int = 8,
    ):
        if max_queue_depth < 1:
            raise UserInputError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.max_queue_depth = int(max_queue_depth)
        self.bucket = (
            TokenBucket(rate_limit_jobs_per_second, rate_limit_burst)
            if rate_limit_jobs_per_second is not None
            else None
        )
        self.stats = AdmissionStats()

    def admit(self, job, queue_depth: int, now: float) -> None:
        """Accept ``job`` or raise a typed :class:`FleetOverloadError`.

        ``queue_depth`` is the number of jobs already waiting; ``now``
        is the fleet's virtual time (token refill reference).
        """
        self.stats.submitted += 1
        if queue_depth >= self.max_queue_depth:
            self.stats.shed_queue_depth += 1
            raise FleetOverloadError(
                f"job {job.job_id} shed: queue depth {queue_depth} at "
                f"limit {self.max_queue_depth}",
                reason="queue-depth",
            )
        if self.bucket is not None and not self.bucket.try_take(now):
            self.stats.shed_rate_limit += 1
            raise FleetOverloadError(
                f"job {job.job_id} shed: admission rate limit exceeded "
                f"({self.bucket.rate:g} jobs/s, burst {self.bucket.burst})",
                reason="rate-limit",
            )
        self.stats.admitted += 1
