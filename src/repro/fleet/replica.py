"""One accelerator replica and its serving-lifecycle state machine.

::

    SERVING --consecutive failures--> DRAINING --in-flight done--> QUARANTINED
       ^                                                               |
       |  canary passed (repair)                                       |
       +------------------------------<--------------------------------+
                                                   canary failed / killed
                                                        |
                                                        v
                                                     RETIRED

A replica wraps one :class:`~repro.runtime.host.AcceleratorHandle`
(mixed U280/U50 pools are just replicas with different platforms).  The
handle outlives individual jobs, so its per-channel circuit-breaker bank
and last health report are *live* placement signals: a replica whose
card keeps blacklisting channels looks slower and eventually drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.config import PipelineConfig
from repro.errors import UserInputError
from repro.runtime.host import (
    AcceleratorHandle,
    HostTimingConfig,
    init_accelerator,
)

#: Lifecycle states (REPAIRED is the SERVING re-entry after a canary
#: pass; it is recorded in ``repairs`` rather than as a distinct state).
SERVING = "SERVING"
DRAINING = "DRAINING"
QUARANTINED = "QUARANTINED"
RETIRED = "RETIRED"

REPLICA_STATES = (SERVING, DRAINING, QUARANTINED, RETIRED)


@dataclass
class Replica:
    """A pool member: handle + lifecycle + health counters."""

    replica_id: str
    device: str
    handle: AcceleratorHandle
    state: str = SERVING
    #: Virtual time this replica finishes its current work.
    busy_until: float = 0.0
    consecutive_failures: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    #: Virtual time the replica entered quarantine (canary due after
    #: the policy cooldown).
    quarantined_at: Optional[float] = None
    canaries_run: int = 0
    repairs: int = 0
    killed: bool = False
    #: In-flight attempt count (the runtime maintains this; a draining
    #: replica quarantines once it reaches zero).
    inflight: int = 0
    retired_reason: str = ""

    # -- queries --------------------------------------------------------
    @property
    def is_serving(self) -> bool:
        return self.state == SERVING

    def available_at(self, now: float) -> float:
        """Earliest virtual time this replica can start new work."""
        return max(self.busy_until, now)

    def open_breakers(self) -> int:
        """Live health signal: channels the handle has blacklisted."""
        return self.handle.open_breaker_count()

    def degraded_pipelines(self) -> int:
        """Pipelines the most recent run ended without."""
        health = self.handle.last_health
        if health is None:
            return 0
        return len(health.degraded_pipelines)

    # -- lifecycle transitions -----------------------------------------
    def record_success(self) -> None:
        self.jobs_completed += 1
        self.consecutive_failures = 0

    def record_failure(self, threshold: int) -> bool:
        """Charge one failure; True when the replica must start draining."""
        self.jobs_failed += 1
        self.consecutive_failures += 1
        return self.is_serving and self.consecutive_failures >= threshold

    def begin_drain(self, now: float) -> None:
        if self.state != SERVING:
            return
        self.state = DRAINING
        self.handle.drain()
        if self.inflight == 0:
            self.enter_quarantine(now)

    def enter_quarantine(self, now: float) -> None:
        if self.state == RETIRED:
            return
        self.state = QUARANTINED
        self.quarantined_at = now

    def repair(self) -> None:
        """Canary passed: rejoin the pool (REPAIRED -> SERVING)."""
        if self.state == RETIRED:
            raise UserInputError(
                f"replica {self.replica_id} is retired and cannot rejoin"
            )
        self.state = SERVING
        self.quarantined_at = None
        self.consecutive_failures = 0
        self.repairs += 1
        self.handle.resume()

    def retire(self, reason: str) -> None:
        """Permanently remove the replica (canary failed, or killed)."""
        self.state = RETIRED
        self.retired_reason = reason
        self.quarantined_at = None
        if self.handle.programmed:
            self.handle.release()

    def kill(self, reason: str = "killed") -> None:
        """Crash the card: immediate, permanent retirement."""
        self.killed = True
        self.retire(reason)

    # -- report ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "device": self.device,
            "state": self.state,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "consecutive_failures": self.consecutive_failures,
            "canaries_run": self.canaries_run,
            "repairs": self.repairs,
            "killed": self.killed,
            "retired_reason": self.retired_reason,
            "open_breakers": (
                0 if not self.handle.programmed else self.open_breakers()
            ),
        }


def make_replica(
    replica_id: str,
    device: str,
    buffer_vertices: int = 256,
    num_pipelines: int = 4,
    timing: Optional[HostTimingConfig] = None,
) -> Replica:
    """Initialise one pool member (devices validated by the host API)."""
    handle = init_accelerator(
        device,
        pipeline=PipelineConfig(gather_buffer_vertices=buffer_vertices),
        num_pipelines=num_pipelines,
        timing=timing or HostTimingConfig.instant(),
    )
    return Replica(replica_id=replica_id, device=device, handle=handle)
