"""The fleet's unit of work: :class:`Job` in, :class:`JobResult` out.

A job pins everything one graph-analytics request needs — the app, a
deterministic :class:`~repro.chaos.spec.GraphSpec` recipe, a per-job
fault plan, a priority and an optional deadline — so a queue of jobs is
fully describable by JSON, the same property chaos cells have.  Results
are equally self-contained: status, final replica, attempt count,
virtual-time latency and the typed error (if any), which is what the
fleet report serialises and the determinism property compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.chaos.generate import CAMPAIGN_APPS
from repro.chaos.spec import GraphSpec
from repro.errors import UserInputError
from repro.faults.plan import FaultPlan

#: Apps a fleet job may request (each has a chaos conformance oracle).
FLEET_APPS = CAMPAIGN_APPS

#: Terminal statuses a job can end in.  ``rejected`` = shed by admission
#: control before entering the queue; ``failed`` = admitted but every
#: attempt up to the cap failed (both carry a typed error — a job is
#: never silently lost).
JOB_STATUSES = ("completed", "rejected", "failed")


@dataclass(frozen=True)
class Job:
    """One graph-analytics request submitted to the fleet."""

    job_id: str
    app: str
    graph: GraphSpec
    root: int = 0
    max_iterations: Optional[int] = 20
    #: Higher runs earlier when the queue is contended.
    priority: int = 0
    #: Virtual seconds after ``submit_time`` the caller needs the answer
    #: by; ``None`` = best effort.  Deadline jobs are hedge-eligible.
    deadline_seconds: Optional[float] = None
    #: Virtual time the job arrives at the admission controller.
    submit_time: float = 0.0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self):
        if self.app not in FLEET_APPS:
            raise UserInputError(
                f"no fleet dispatch for app {self.app!r}; "
                f"available: {FLEET_APPS}"
            )
        if self.deadline_seconds is not None and (
            not math.isfinite(self.deadline_seconds)
            or self.deadline_seconds <= 0
        ):
            raise UserInputError(
                f"deadline_seconds must be positive and finite, got "
                f"{self.deadline_seconds}"
            )
        if not math.isfinite(self.submit_time) or self.submit_time < 0:
            raise UserInputError(
                f"submit_time must be non-negative, got {self.submit_time}"
            )
        if self.app == "sssp" and not self.graph.weighted:
            raise UserInputError(
                f"job {self.job_id}: sssp needs a weighted graph spec"
            )

    @property
    def deadline_critical(self) -> bool:
        """Deadline jobs are eligible for hedged execution."""
        return self.deadline_seconds is not None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "app": self.app,
            "graph": self.graph.to_dict(),
            "root": self.root,
            "max_iterations": self.max_iterations,
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "submit_time": self.submit_time,
            "fault_plan": self.fault_plan.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "Job":
        max_iterations = data.get("max_iterations", 20)
        deadline = data.get("deadline_seconds")
        return Job(
            job_id=str(data["job_id"]),
            app=str(data["app"]),
            graph=GraphSpec.from_dict(data["graph"]),
            root=int(data.get("root", 0)),
            max_iterations=(
                None if max_iterations is None else int(max_iterations)
            ),
            priority=int(data.get("priority", 0)),
            deadline_seconds=None if deadline is None else float(deadline),
            submit_time=float(data.get("submit_time", 0.0)),
            fault_plan=FaultPlan.from_dict(data.get("fault_plan", {})),
        )


@dataclass
class JobResult:
    """Terminal outcome of one job (exactly one per submitted job)."""

    job_id: str
    status: str
    #: Replica that produced the winning result (completed jobs only).
    replica_id: str = ""
    attempts: int = 0
    submit_time: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0
    #: Typed error class name + message for rejected / failed jobs.
    error_type: str = ""
    detail: str = ""
    #: Conformance violations of the final run (empty = clean).
    violations: List[str] = field(default_factory=list)
    #: SHA-256 of the result property array (chaos digest convention).
    result_digest: str = ""
    iterations: int = 0
    hedged: bool = False
    deadline_seconds: Optional[float] = None

    def __post_init__(self):
        if self.status not in JOB_STATUSES:
            raise UserInputError(
                f"unknown job status {self.status!r}; "
                f"expected one of {JOB_STATUSES}"
            )

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def latency_seconds(self) -> float:
        """Submit-to-finish virtual latency (completed jobs)."""
        return max(self.finish_time - self.submit_time, 0.0)

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the deadline held; ``None`` for best-effort jobs."""
        if self.deadline_seconds is None:
            return None
        return self.completed and (
            self.latency_seconds <= self.deadline_seconds
        )

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "replica_id": self.replica_id,
            "attempts": self.attempts,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "error_type": self.error_type,
            "detail": self.detail,
            "violations": list(self.violations),
            "result_digest": self.result_digest,
            "iterations": self.iterations,
            "hedged": self.hedged,
            "deadline_seconds": self.deadline_seconds,
        }

    @staticmethod
    def from_dict(data: dict) -> "JobResult":
        deadline = data.get("deadline_seconds")
        return JobResult(
            job_id=str(data["job_id"]),
            status=str(data["status"]),
            replica_id=str(data.get("replica_id", "")),
            attempts=int(data.get("attempts", 0)),
            submit_time=float(data.get("submit_time", 0.0)),
            start_time=float(data.get("start_time", 0.0)),
            finish_time=float(data.get("finish_time", 0.0)),
            error_type=str(data.get("error_type", "")),
            detail=str(data.get("detail", "")),
            violations=list(data.get("violations", [])),
            result_digest=str(data.get("result_digest", "")),
            iterations=int(data.get("iterations", 0)),
            hedged=bool(data.get("hedged", False)),
            deadline_seconds=None if deadline is None else float(deadline),
        )
