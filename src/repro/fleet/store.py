"""Durable result store: exactly-once terminal outcomes across crashes.

The store is the *result* half of the durability pair (the journal logs
intent, the store holds outcomes).  It is a crash-safe JSONL file — one
checksummed record per terminal :class:`~repro.fleet.job.JobResult`,
appended with flush+fsync — keyed by an **idempotency key** (the job
id): the first write for a key wins, every later ``put`` for the same
key is suppressed and merely reported.  That is what gives resubmission
exactly-once semantics: a recovered runtime replays the whole job
stream, recomputes every result, and the store silently deduplicates
the ones that were already durable before the crash — a client reading
the store sees each job's result exactly once, whether the fleet
crashed zero times or twice.

Corrupt records (torn tail, bit rot) are skipped and counted at load,
never raised: losing the *last* result to a torn write is recoverable
(replay recomputes it), whereas refusing to start is not.  ``compact()``
rewrites the file through the tmp + :func:`os.replace` pattern used by
checkpoint persistence, dropping any damaged lines for good.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.fleet.job import JobResult

#: Store line-format identifier; bump on incompatible layout changes.
STORE_SCHEMA = "regraph-fleet-store/v1"


def _crc(key: str, payload: dict) -> str:
    canonical = json.dumps(
        {"key": key, "result": payload}, sort_keys=True, separators=(",", ":")
    )
    return format(zlib.crc32(canonical.encode()) & 0xFFFFFFFF, "08x")


def _encode(key: str, payload: dict) -> str:
    return json.dumps(
        {"key": key, "result": payload, "crc": _crc(key, payload)},
        sort_keys=True,
        separators=(",", ":"),
    ) + "\n"


class ResultStore:
    """Append-only, checksummed, idempotent JobResult persistence."""

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._results: Dict[str, JobResult] = {}
        #: Records skipped at load because they failed verification.
        self.discarded_at_load = 0
        #: ``put`` calls suppressed by the idempotency key.
        self.duplicates_suppressed = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            for blob in fh:
                if not blob.endswith(b"\n"):
                    self.discarded_at_load += 1
                    continue
                line = blob.decode("utf-8", errors="replace")
                try:
                    data = json.loads(line)
                    key = str(data["key"])
                    payload = data["result"]
                    crc = str(data["crc"])
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self.discarded_at_load += 1
                    continue
                if not isinstance(payload, dict) or crc != _crc(key, payload):
                    self.discarded_at_load += 1
                    continue
                if key in self._results:
                    # An append-only store should never hold two records
                    # for one key (put suppresses them); tolerate it by
                    # first-write-wins, the idempotency contract.
                    self.duplicates_suppressed += 1
                    continue
                self._results[key] = JobResult.from_dict(payload)

    # -- the exactly-once write path -----------------------------------
    def put(self, result: JobResult) -> bool:
        """Persist ``result`` under its idempotency key (the job id).

        Returns True when this call made the result durable; False when
        the key already had a durable result (the write is suppressed —
        exactly-once on resubmission).
        """
        key = result.job_id
        if key in self._results:
            self.duplicates_suppressed += 1
            return False
        line = _encode(key, result.to_dict())
        self._fh.write(line)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._results[key] = result
        return True

    # -- reads ----------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobResult]:
        return self._results.get(job_id)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._results

    def __len__(self) -> int:
        return len(self._results)

    def job_ids(self) -> List[str]:
        return sorted(self._results)

    def results(self) -> Dict[str, JobResult]:
        """A snapshot copy of every durable result, by job id."""
        return dict(self._results)

    def stats(self) -> dict:
        return {
            "results": len(self._results),
            "discarded_at_load": self.discarded_at_load,
            "duplicates_suppressed": self.duplicates_suppressed,
        }

    # -- maintenance -----------------------------------------------------
    def compact(self) -> None:
        """Rewrite the file from the in-memory view (drops bad lines).

        Crash-safe: staged to a tmp sibling, then :func:`os.replace`.
        """
        tmp = self.path.with_name(self.path.name + f".tmp-{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            for key in sorted(self._results):
                fh.write(_encode(key, self._results[key].to_dict()))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
