"""The fleet serving runtime: a deterministic discrete-event scheduler.

:class:`FleetRuntime` owns a pool of :class:`~repro.fleet.replica.Replica`
handles (mixed U280/U50) and pushes a queue of jobs through them under
faults.  Everything runs against the host layer's
:class:`~repro.runtime.host.VirtualClock` — job durations are the
*modelled* seconds of the underlying simulator plus the handle's
:class:`~repro.runtime.host.HostTimingConfig` overheads — so a whole
fleet run is bit-reproducible from its inputs.

Event order is total and deterministic: at equal timestamps completions
are processed before kills (a job that finishes the instant its card
dies has finished), kills before canaries, canaries before submissions.
After every event the dispatcher places as many queued jobs as replicas
are idle, highest priority first, onto the placement engine's best
replica.

Failure handling per attempt:

* a replica crash (kill event) or an escaped :class:`ReproError`
  re-queues the job with exponential backoff onto a *different* replica
  (the failed one is excluded from the next attempt), up to
  ``max_attempts``;
* a completed run whose conformance oracles object is treated exactly
  like a failure — a wrong answer is never "completed";
* a job whose modelled duration blows the fleet watchdog budget
  (``watchdog_factor`` x the Eq. 1-4 prediction) is reclaimed at the
  budget and failed over;
* exhausting the attempt cap yields a *typed*
  :class:`~repro.errors.JobFailoverExhaustedError` result — admitted
  jobs always reach a terminal status, never silence.

**Durability** (``docs/DURABILITY.md``): attach a
:class:`~repro.fleet.journal.JobJournal` and every transition above is
write-ahead logged — the input batch before serving starts, each
admission, dispatch, attempt outcome, lifecycle change and terminal
result before it takes effect — and attach a
:class:`~repro.fleet.store.ResultStore` and terminal results become
durable with idempotency-keyed exactly-once semantics.  A runtime that
dies mid-run (:class:`~repro.errors.FleetKilledError`, or a real
SIGKILL) is rebuilt by :meth:`FleetRuntime.recover`, whose
:meth:`RecoveredFleet.resume` deterministically replays the journaled
inputs: the recovered report is bit-identical to an uninterrupted run,
and results finalized before the crash are never emitted twice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.spec import CellSpec, GraphSpec
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands
from repro.errors import (
    FleetKilledError,
    FleetOverloadError,
    JobFailoverExhaustedError,
    NoServingReplicaError,
    ReplicaCrashError,
    ReproError,
    UserInputError,
)
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.fleet.admission import AdmissionController
from repro.fleet.job import Job, JobResult
from repro.fleet.journal import (
    JobJournal,
    JournalProjection,
    RepairReport,
    project_journal,
    repair_journal,
)
from repro.fleet.placement import PROBE_MODES, PlacementEngine
from repro.fleet.replica import QUARANTINED, RETIRED, Replica, make_replica
from repro.fleet.report import AssignmentRecord, FleetReport
from repro.fleet.store import ResultStore
from repro.graph.coo import Graph
from repro.runtime.host import HostTimingConfig, VirtualClock


@dataclass(frozen=True)
class FleetPolicy:
    """Tunables of the fleet serving runtime (validated on construction)."""

    #: Jobs allowed to wait; deeper backlogs are shed with a typed error.
    max_queue_depth: int = 64
    #: Token-bucket admission rate (``None`` = unlimited).
    rate_limit_jobs_per_second: Optional[float] = None
    rate_limit_burst: int = 8
    #: Dispatches per job (primary + failovers) before giving up.
    max_attempts: int = 3
    #: Virtual-seconds backoff before failover attempt ``n`` (1-based
    #: growth by ``retry_backoff_factor``).
    retry_backoff_seconds: float = 0.02
    retry_backoff_factor: float = 2.0
    #: Consecutive failures before a replica starts draining.
    failure_threshold: int = 3
    #: Quarantine dwell before the canary probe.
    quarantine_cooldown_seconds: float = 0.5
    #: Canary probe: a tiny clean pagerank (deterministic).
    canary_vertices: int = 64
    canary_edges: int = 256
    canary_iterations: int = 3
    #: Duplicate deadline-critical stragglers onto the fastest idle
    #: replica (first result wins, loser cancelled).
    hedge_enabled: bool = True
    #: Fleet watchdog budget = factor x predicted job seconds.
    watchdog_factor: float = 64.0
    #: Placement health penalties (see PlacementEngine).
    breaker_penalty: float = 0.25
    degraded_penalty: float = 0.5
    #: How ``predicted_seconds`` probes replicas: "incremental" keeps a
    #: per-artefact compiled evaluator and dirties only what a probe
    #: changes; "full" cold-evaluates every probe (the oracle);
    #: "analytic" is the legacy Eq. 1-4 estimate.
    placement_probe_mode: str = "incremental"
    #: Run every completed job through the chaos conformance oracles.
    check_conformance: bool = True
    #: Per-run resilience layer handed to every execute.
    resilience: ResiliencePolicy = field(
        default_factory=lambda: ResiliencePolicy(
            max_retries=6, breaker_threshold=3
        )
    )

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise UserInputError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_attempts < 1:
            raise UserInputError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if (
            not math.isfinite(self.retry_backoff_seconds)
            or self.retry_backoff_seconds < 0
        ):
            raise UserInputError(
                "retry_backoff_seconds must be non-negative and finite, "
                f"got {self.retry_backoff_seconds}"
            )
        if (
            not math.isfinite(self.retry_backoff_factor)
            or self.retry_backoff_factor < 1.0
        ):
            raise UserInputError(
                f"retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        if self.failure_threshold < 1:
            raise UserInputError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if (
            not math.isfinite(self.quarantine_cooldown_seconds)
            or self.quarantine_cooldown_seconds < 0
        ):
            raise UserInputError(
                "quarantine_cooldown_seconds must be non-negative, got "
                f"{self.quarantine_cooldown_seconds}"
            )
        if not math.isfinite(self.watchdog_factor) or self.watchdog_factor <= 0:
            raise UserInputError(
                f"watchdog_factor must be positive and finite, got "
                f"{self.watchdog_factor}"
            )
        if self.canary_vertices < 2 or self.canary_edges < 1:
            raise UserInputError(
                "canary graph must have >= 2 vertices and >= 1 edge"
            )
        if self.placement_probe_mode not in PROBE_MODES:
            raise UserInputError(
                f"placement_probe_mode must be one of {PROBE_MODES}, "
                f"got {self.placement_probe_mode!r}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff charged before failover attempt ``attempt`` (1-based)."""
        return self.retry_backoff_seconds * (
            self.retry_backoff_factor ** max(attempt - 1, 0)
        )

    def canary_graph(self) -> GraphSpec:
        """The deterministic quarantine-probe graph."""
        return GraphSpec(
            kind="uniform",
            vertices=self.canary_vertices,
            edges=self.canary_edges,
            seed=7,
        )

    def to_dict(self) -> dict:
        return {
            "max_queue_depth": self.max_queue_depth,
            "rate_limit_jobs_per_second": self.rate_limit_jobs_per_second,
            "rate_limit_burst": self.rate_limit_burst,
            "max_attempts": self.max_attempts,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "retry_backoff_factor": self.retry_backoff_factor,
            "failure_threshold": self.failure_threshold,
            "quarantine_cooldown_seconds": self.quarantine_cooldown_seconds,
            "canary_vertices": self.canary_vertices,
            "canary_edges": self.canary_edges,
            "canary_iterations": self.canary_iterations,
            "hedge_enabled": self.hedge_enabled,
            "watchdog_factor": self.watchdog_factor,
            "breaker_penalty": self.breaker_penalty,
            "degraded_penalty": self.degraded_penalty,
            "check_conformance": self.check_conformance,
            "resilience": self.resilience.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "FleetPolicy":
        data = dict(data)
        resilience = data.pop("resilience", None)
        return FleetPolicy(
            **data,
            **(
                {"resilience": ResiliencePolicy.from_dict(resilience)}
                if resilience is not None
                else {}
            ),
        )


@dataclass(frozen=True)
class ReplicaKill:
    """A fleet-level chaos event: ``replica_id`` dies at ``at_seconds``."""

    replica_id: str
    at_seconds: float

    def __post_init__(self):
        if not math.isfinite(self.at_seconds) or self.at_seconds < 0:
            raise UserInputError(
                f"kill time must be non-negative, got {self.at_seconds}"
            )

    def to_dict(self) -> dict:
        return {"replica_id": self.replica_id, "at_seconds": self.at_seconds}

    @staticmethod
    def from_dict(data: dict) -> "ReplicaKill":
        return ReplicaKill(
            replica_id=str(data["replica_id"]),
            at_seconds=float(data["at_seconds"]),
        )


# ----------------------------------------------------------------------
# Internal bookkeeping
# ----------------------------------------------------------------------
class _QueuedJob:
    """Mutable per-job state while the job is alive in the runtime."""

    __slots__ = (
        "job", "index", "next_attempt", "earliest_start", "exclude",
        "active", "done", "last_error", "hedged",
    )

    def __init__(self, job: Job, index: int):
        self.job = job
        self.index = index
        self.next_attempt = 1
        self.earliest_start = job.submit_time
        self.exclude: Tuple[str, ...] = ()
        #: In-flight attempts (2 while a hedge races the primary).
        self.active = 0
        self.done = False
        self.last_error: Tuple[str, str] = ("", "")
        self.hedged = False

    def sort_key(self) -> tuple:
        """Dispatch order: priority desc, tighter deadline, FIFO."""
        deadline = (
            self.job.deadline_seconds
            if self.job.deadline_seconds is not None
            else math.inf
        )
        return (-self.job.priority, deadline, self.job.submit_time, self.index)


class _Attempt:
    """One dispatched execution of a job on one replica."""

    __slots__ = (
        "entry", "replica", "number", "kind", "start", "finish", "ok",
        "error_type", "detail", "violations", "digest", "iterations",
        "cancelled", "partner",
    )

    def __init__(self, entry, replica, number, kind, start, finish):
        self.entry = entry
        self.replica = replica
        self.number = number
        self.kind = kind
        self.start = start
        self.finish = finish
        self.ok = False
        self.error_type = ""
        self.detail = ""
        self.violations: List[str] = []
        self.digest = ""
        self.iterations = 0
        self.cancelled = False
        self.partner: Optional["_Attempt"] = None


# Event type priorities: completions strictly before kills at equal
# times (a job that finishes when its card dies *has* finished), kills
# before canaries, canaries before new submissions.
_EV_COMPLETE, _EV_KILL, _EV_CANARY, _EV_SUBMIT, _EV_IDLE = range(5)


class FleetRuntime:
    """Serves a queue of jobs over a replica pool, under faults."""

    def __init__(
        self,
        replicas: Sequence[Replica],
        policy: Optional[FleetPolicy] = None,
        clock: Optional[VirtualClock] = None,
        bands: ToleranceBands = DEFAULT_BANDS,
        journal: Optional[JobJournal] = None,
        store: Optional[ResultStore] = None,
        autoscaler=None,
    ):
        if not replicas:
            raise UserInputError("a fleet needs at least one replica")
        ids = [r.replica_id for r in replicas]
        if len(set(ids)) != len(ids):
            raise UserInputError(f"duplicate replica ids: {sorted(ids)}")
        self.replicas = list(replicas)
        self.policy = policy or FleetPolicy()
        self.clock = clock or VirtualClock()
        self.bands = bands
        #: Write-ahead journal: every transition is logged before it
        #: takes effect.  ``None`` = in-memory runtime (the default).
        self.journal = journal
        #: Durable result store with idempotency-keyed exactly-once
        #: writes; ``None`` = results live only in the report.
        self.store = store
        #: Optional :class:`~repro.fleet.autoscale.Autoscaler`: after
        #: every event the runtime feeds it telemetry and applies its
        #: scale-up/scale-down decisions through the normal replica
        #: lifecycle.  Its counters are a side-channel like
        #: ``recovery_stats`` — never part of the report digest.
        self.autoscaler = autoscaler
        #: Side-channel recovery accounting, deliberately *outside*
        #: FleetReport: the report digest certifies the served outcome,
        #: which must match an uninterrupted run bit-for-bit.
        self.recovery_stats: Dict[str, int] = {
            "results_restored": len(store) if store is not None else 0,
            "duplicates_suppressed": 0,
            "replay_divergences": 0,
        }
        #: Events the run loop has processed (crash-point reference).
        self.events_processed = 0
        self.admission = AdmissionController(
            self.policy.max_queue_depth,
            self.policy.rate_limit_jobs_per_second,
            self.policy.rate_limit_burst,
        )
        self.placement = PlacementEngine(
            breaker_penalty=self.policy.breaker_penalty,
            degraded_penalty=self.policy.degraded_penalty,
            probe_mode=self.policy.placement_probe_mode,
        )
        self._graphs: Dict[str, Graph] = {}
        self._programmed: set = set()
        self._queue: List[_QueuedJob] = []
        self._inflight: List[_Attempt] = []
        self._results: Dict[str, JobResult] = {}
        self._assignments: List[AssignmentRecord] = []
        self._counters: Dict[str, int] = {
            "failovers": 0, "hedges": 0, "hedge_wins": 0, "canaries": 0,
            "repairs": 0, "kills": 0, "watchdog_trips": 0, "crashes": 0,
        }
        self._canary_seq = 0
        self._admit_seq = 0

    # -- durability helpers ---------------------------------------------
    def _wal(self, rtype: str, payload: dict) -> None:
        """Write-ahead append (no-op without a journal)."""
        if self.journal is not None:
            self.journal.append(rtype, payload)

    def _wal_replica(self, replica: Replica, reason: str = "") -> None:
        """Journal a replica lifecycle transition + its breaker bank."""
        if self.journal is None:
            return
        self.journal.append("replica-state", {
            "replica_id": replica.replica_id,
            "state": replica.state,
            "reason": reason or replica.retired_reason,
            "time": self.clock.now,
            "breakers": replica.handle.breaker_snapshot(),
        })

    def _pool_spec(self) -> List[dict]:
        """A rebuildable recipe of the pool (journal ``run-begin``)."""
        return [
            {
                "replica_id": r.replica_id,
                "device": r.device,
                "buffer_vertices": (
                    r.handle.framework.pipeline.gather_buffer_vertices
                ),
                "num_pipelines": r.handle.framework.num_pipelines,
                "timing": r.handle.timing.to_dict(),
            }
            for r in self.replicas
        ]

    def _persist_result(self, result: JobResult) -> None:
        """Make a terminal result durable, exactly once per job id.

        The journal gets the ``result`` record first (write-ahead), then
        the store either accepts the write or — on resubmission after a
        crash — suppresses it and the recomputed outcome is cross-checked
        against the durable one (``replay_divergences`` must stay 0).
        """
        self._wal("result", {
            "result": result.to_dict(), "time": self.clock.now,
        })
        if self.store is None:
            return
        if self.store.put(result):
            return
        self.recovery_stats["duplicates_suppressed"] += 1
        durable = self.store.get(result.job_id)
        if durable is not None and durable.to_dict() != result.to_dict():
            self.recovery_stats["replay_divergences"] += 1

    # -- helpers --------------------------------------------------------
    def _replica(self, replica_id: str) -> Replica:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise UserInputError(
            f"unknown replica {replica_id!r}; pool: "
            f"{[r.replica_id for r in self.replicas]}"
        )

    def _graph(self, job: Job) -> Graph:
        graph = self._graphs.get(job.job_id)
        if graph is None:
            graph = job.graph.build()
            if job.app == "wcc":
                from repro.apps.wcc import symmetrized

                graph = symmetrized(graph)
            self._graphs[job.job_id] = graph
        return graph

    def _log(self, time, job_id, replica_id, attempt, kind) -> None:
        self._assignments.append(AssignmentRecord(
            seq=len(self._assignments),
            time=time,
            job_id=job_id,
            replica_id=replica_id,
            attempt=attempt,
            kind=kind,
        ))

    def _cell_for(self, job: Job, replica: Replica) -> CellSpec:
        fw = replica.handle.framework
        return CellSpec(
            cell_id=job.job_id,
            device=replica.device,
            app=job.app,
            graph=job.graph,
            fault_plan=job.fault_plan,
            root=job.root,
            max_iterations=job.max_iterations,
            buffer_vertices=fw.pipeline.gather_buffer_vertices,
            num_pipelines=fw.num_pipelines,
        )

    # -- execution of one attempt --------------------------------------
    def _execute_attempt(
        self, entry: _QueuedJob, replica: Replica, kind: str
    ) -> _Attempt:
        """Model one dispatch: run the simulator now, schedule the
        completion event at the modelled finish time."""
        job = entry.job
        now = self.clock.now
        graph = self._graph(job)
        handle = replica.handle
        pre = self.placement.preprocess_for(replica, job, graph)
        predicted = self.placement.predicted_seconds(replica, job, graph)
        programming = 0.0
        if replica.replica_id not in self._programmed:
            programming = handle.timing.programming_seconds
            self._programmed.add(replica.replica_id)
        migration_before = handle.migration_seconds

        self._wal("dispatch", {
            "job_id": job.job_id,
            "replica_id": replica.replica_id,
            "attempt": entry.next_attempt,
            "kind": kind,
            "time": now,
        })
        attempt = _Attempt(entry, replica, entry.next_attempt, kind, now, now)
        try:
            handle.load_graph(graph, pre=pre)
            run = handle.execute(
                job.app,
                root=job.root,
                max_iterations=job.max_iterations,
                fault_plan=job.fault_plan,
                resilience=self.policy.resilience,
            )
        except ReproError as exc:
            # The resilient layer gave up: charge the model's estimate as
            # the time burned discovering that, then fail the attempt.
            attempt.error_type = exc.__class__.__name__
            attempt.detail = str(exc)
            duration = predicted
        else:
            migration = handle.migration_seconds - migration_before
            duration = migration + run.total_seconds
            budget = self.policy.watchdog_factor * max(predicted, 1e-12)
            if duration > budget:
                # Fleet watchdog: reclaim the replica at the budget.
                self._counters["watchdog_trips"] += 1
                attempt.error_type = "WatchdogTimeoutError"
                attempt.detail = (
                    f"job ran {duration:.6f}s of modelled time, fleet "
                    f"budget is {budget:.6f}s"
                )
                duration = budget
            else:
                attempt.ok = True
                attempt.iterations = run.iterations
                from repro.chaos.campaign import result_digest

                attempt.digest = result_digest(run)
                if self.policy.check_conformance:
                    from repro.chaos.oracles import validate_cell

                    violations = validate_cell(
                        self._cell_for(job, replica), graph,
                        handle.framework, run, self.bands,
                    )
                    if violations:
                        attempt.ok = False
                        attempt.violations = violations
                        attempt.error_type = "ConformanceError"
                        attempt.detail = "; ".join(violations)

        duration += programming
        attempt.finish = now + duration
        replica.busy_until = attempt.finish
        replica.inflight += 1
        entry.active += 1
        self._inflight.append(attempt)
        self._log(now, job.job_id, replica.replica_id, attempt.number, kind)
        return attempt

    # -- terminal outcomes ----------------------------------------------
    def _finalize_rejected(self, job: Job, exc: FleetOverloadError) -> None:
        result = JobResult(
            job_id=job.job_id,
            status="rejected",
            attempts=0,
            submit_time=job.submit_time,
            finish_time=job.submit_time,
            error_type=exc.__class__.__name__,
            detail=str(exc),
            deadline_seconds=job.deadline_seconds,
        )
        self._wal("reject", {"result": result.to_dict()})
        if self.store is not None:
            self._persist_rejection(result)
        self._results[job.job_id] = result

    def _persist_rejection(self, result: JobResult) -> None:
        """Rejections are terminal too — same exactly-once path, minus
        the journal record (``reject`` already covers it)."""
        if self.store.put(result):
            return
        self.recovery_stats["duplicates_suppressed"] += 1
        durable = self.store.get(result.job_id)
        if durable is not None and durable.to_dict() != result.to_dict():
            self.recovery_stats["replay_divergences"] += 1

    def _finalize_completed(self, attempt: _Attempt) -> None:
        entry = attempt.entry
        entry.done = True
        job = entry.job
        result = JobResult(
            job_id=job.job_id,
            status="completed",
            replica_id=attempt.replica.replica_id,
            attempts=attempt.number,
            submit_time=job.submit_time,
            start_time=attempt.start,
            finish_time=attempt.finish,
            violations=list(attempt.violations),
            result_digest=attempt.digest,
            iterations=attempt.iterations,
            hedged=entry.hedged,
            deadline_seconds=job.deadline_seconds,
        )
        self._persist_result(result)
        self._results[job.job_id] = result
        if self.autoscaler is not None:
            self.autoscaler.record_latency(
                attempt.finish - job.submit_time
            )
        attempt.replica.record_success()
        if attempt.kind == "hedge":
            self._counters["hedge_wins"] += 1
        partner = attempt.partner
        if partner is not None and not partner.cancelled:
            # Cancel the losing duplicate: free its replica immediately.
            partner.cancelled = True
            if partner in self._inflight:
                self._inflight.remove(partner)
                partner.replica.inflight -= 1
                partner.replica.busy_until = min(
                    partner.replica.busy_until, self.clock.now
                )
                partner.entry.active -= 1
                self._maybe_quarantine(partner.replica)

    def _finalize_failed(
        self, entry: _QueuedJob, error_type: str, detail: str, attempts: int
    ) -> None:
        entry.done = True
        job = entry.job
        result = JobResult(
            job_id=job.job_id,
            status="failed",
            attempts=attempts,
            submit_time=job.submit_time,
            finish_time=self.clock.now,
            error_type=error_type,
            detail=detail,
            hedged=entry.hedged,
            deadline_seconds=job.deadline_seconds,
        )
        self._persist_result(result)
        self._results[job.job_id] = result

    def _fail_or_requeue(self, entry: _QueuedJob, replica_id: str) -> None:
        """All in-flight attempts of ``entry`` are gone and the last one
        failed: fail over onto a different replica, or exhaust."""
        error_type, detail = entry.last_error
        if entry.next_attempt >= self.policy.max_attempts:
            self._finalize_failed(
                entry,
                JobFailoverExhaustedError.__name__,
                f"gave up after {entry.next_attempt} attempt(s); last "
                f"error on {replica_id}: [{error_type}] {detail}",
                entry.next_attempt,
            )
            return
        backoff = self.policy.backoff_seconds(entry.next_attempt)
        entry.next_attempt += 1
        entry.earliest_start = self.clock.now + backoff
        entry.exclude = (replica_id,)
        self._counters["failovers"] += 1
        self._queue.append(entry)

    def _maybe_quarantine(self, replica: Replica) -> None:
        """A draining replica with nothing in flight enters quarantine —
        unless the autoscaler owns the drain (scale-down), in which case
        the replica retires directly: it is healthy, just surplus, so a
        canary probe would only re-admit capacity the policy shed."""
        if replica.state == "DRAINING" and replica.inflight == 0:
            if self.autoscaler is not None and self.autoscaler.owns_drain(
                replica.replica_id
            ):
                replica.retire("autoscaler scale-down")
                self.autoscaler.note_retired(
                    replica.replica_id, self.clock.now
                )
                self._wal_replica(replica, "autoscaler scale-down")
                return
            replica.enter_quarantine(self.clock.now)
            self._wal_replica(replica, "drained; entering quarantine")

    # -- event handlers --------------------------------------------------
    def _on_complete(self, attempt: _Attempt) -> None:
        self._inflight.remove(attempt)
        attempt.replica.inflight -= 1
        attempt.entry.active -= 1
        entry = attempt.entry
        self._wal("attempt-end", {
            "job_id": entry.job.job_id,
            "replica_id": attempt.replica.replica_id,
            "attempt": attempt.number,
            "ok": attempt.ok,
            "error_type": attempt.error_type,
            "time": self.clock.now,
        })
        if entry.done:
            self._maybe_quarantine(attempt.replica)
            return
        if attempt.ok:
            self._finalize_completed(attempt)
            self._maybe_quarantine(attempt.replica)
            return
        # Failed attempt: charge the replica's failure budget.
        entry.last_error = (attempt.error_type, attempt.detail)
        if attempt.replica.record_failure(self.policy.failure_threshold):
            attempt.replica.begin_drain(self.clock.now)
            self._wal_replica(
                attempt.replica, "consecutive failures; draining"
            )
        else:
            self._maybe_quarantine(attempt.replica)
        if entry.active > 0:
            return  # a hedge duplicate is still racing
        self._fail_or_requeue(entry, attempt.replica.replica_id)

    def _on_kill(self, kill: ReplicaKill) -> None:
        replica = self._replica(kill.replica_id)
        if replica.state == RETIRED:
            return
        self._counters["kills"] += 1
        self._wal("kill", {
            "replica_id": replica.replica_id,
            "time": self.clock.now,
            "reason": f"killed at t={kill.at_seconds:g}s",
        })
        replica.kill(f"killed at t={kill.at_seconds:g}s")
        self._wal_replica(replica)
        victims = [a for a in self._inflight if a.replica is replica]
        for attempt in victims:
            self._inflight.remove(attempt)
            replica.inflight -= 1
            attempt.cancelled = True
            entry = attempt.entry
            entry.active -= 1
            self._counters["crashes"] += 1
            self._wal("attempt-end", {
                "job_id": entry.job.job_id,
                "replica_id": replica.replica_id,
                "attempt": attempt.number,
                "ok": False,
                "error_type": ReplicaCrashError.__name__,
                "time": self.clock.now,
            })
            if entry.done:
                continue
            entry.last_error = (
                ReplicaCrashError.__name__,
                f"replica {replica.replica_id} crashed mid-job at "
                f"t={self.clock.now:g}s",
            )
            if entry.active > 0:
                continue  # the hedge duplicate keeps running elsewhere
            self._fail_or_requeue(entry, replica.replica_id)

    def _on_canary(self, replica: Replica) -> None:
        """Quarantine re-probe: a clean tiny pagerank must pass before
        the replica rejoins; a second strike retires it."""
        if replica.state != QUARANTINED:
            return
        self._canary_seq += 1
        self._counters["canaries"] += 1
        replica.canaries_run += 1
        canary_id = f"__canary__{self._canary_seq}"
        replica.handle.resume()
        job = Job(
            job_id=canary_id,
            app="pagerank",
            graph=self.policy.canary_graph(),
            max_iterations=self.policy.canary_iterations,
        )
        graph = self._graph(job)
        self._log(
            self.clock.now, canary_id, replica.replica_id, 1, "canary"
        )
        try:
            pre = self.placement.preprocess_for(replica, job, graph)
            replica.handle.load_graph(graph, pre=pre)
            run = replica.handle.execute(
                job.app,
                max_iterations=job.max_iterations,
                fault_plan=FaultPlan(),
                resilience=self.policy.resilience,
            )
        except ReproError as exc:
            replica.retire(f"canary failed: {exc.__class__.__name__}")
            self._wal_replica(replica)
            return
        if self.policy.check_conformance:
            from repro.chaos.oracles import validate_cell

            violations = validate_cell(
                self._cell_for(job, replica), graph,
                replica.handle.framework, run, self.bands,
            )
            if violations:
                replica.retire(f"canary unclean: {violations[0]}")
                self._wal_replica(replica)
                return
        replica.busy_until = self.clock.now + run.total_seconds
        replica.repair()
        self._counters["repairs"] += 1
        self._wal_replica(replica, "canary passed; serving again")

    # -- dispatch --------------------------------------------------------
    def _dispatchable(self) -> List[_QueuedJob]:
        now = self.clock.now
        return sorted(
            (e for e in self._queue if e.earliest_start <= now),
            key=_QueuedJob.sort_key,
        )

    def _idle_serving(self) -> List[Replica]:
        now = self.clock.now
        return [
            r for r in self.replicas
            if r.is_serving and r.busy_until <= now and r.inflight == 0
        ]

    def _dispatch(self) -> None:
        """Place queued jobs onto idle replicas until one side runs dry."""
        while True:
            idle = self._idle_serving()
            if not idle:
                return
            progressed = False
            for entry in self._dispatchable():
                job = entry.job
                graph = self._graph(job)
                replica = self.placement.choose(
                    idle, job, graph, self.clock.now, exclude=entry.exclude
                )
                if replica is None and entry.exclude:
                    # Failover prefers a different replica but falls back
                    # to the failed one when it is the only card left.
                    replica = self.placement.choose(
                        idle, job, graph, self.clock.now
                    )
                if replica is None:
                    if not self._placeable_anywhere(entry):
                        self._queue.remove(entry)
                        self._finalize_failed(
                            entry,
                            NoServingReplicaError.__name__,
                            self._unplaceable_detail(entry),
                            entry.next_attempt - 1,
                        )
                        progressed = True
                        break
                    continue
                self._queue.remove(entry)
                kind = "primary" if entry.next_attempt == 1 else "requeue"
                attempt = self._execute_attempt(entry, replica, kind)
                self._maybe_hedge(entry, attempt)
                progressed = True
                break
            if not progressed:
                return

    def _placeable_anywhere(self, entry: _QueuedJob) -> bool:
        """Could any current or future (non-retired) replica take it?"""
        graph = self._graph(entry.job)
        return any(
            r.state != RETIRED and self.placement.fits(r, graph)
            for r in self.replicas
        )

    def _unplaceable_detail(self, entry: _QueuedJob) -> str:
        error_type, detail = entry.last_error
        suffix = (
            f"; last error: [{error_type}] {detail}" if error_type else ""
        )
        return (
            f"no serving replica can take job {entry.job.job_id} "
            f"(pool states: "
            + ", ".join(f"{r.replica_id}={r.state}" for r in self.replicas)
            + ")" + suffix
        )

    def _maybe_hedge(self, entry: _QueuedJob, primary: _Attempt) -> None:
        """Duplicate a deadline-critical straggler onto the fastest idle
        replica; first result wins, the loser is cancelled."""
        job = entry.job
        if not (self.policy.hedge_enabled and job.deadline_critical):
            return
        if primary.finish <= job.submit_time + job.deadline_seconds:
            return
        graph = self._graph(job)
        backup = self.placement.choose(
            self._idle_serving(), job, graph, self.clock.now,
            exclude=entry.exclude + (primary.replica.replica_id,),
        )
        if backup is None:
            return
        entry.hedged = True
        self._counters["hedges"] += 1
        hedge = self._execute_attempt(entry, backup, "hedge")
        hedge.number = primary.number
        primary.partner = hedge
        hedge.partner = primary

    # -- autoscaling -----------------------------------------------------
    def _autoscale(self) -> bool:
        """Feed the autoscaler one observation; apply its decision.

        Returns True when the pool changed (the caller re-dispatches so
        a spawned replica can take queued work in the same event)."""
        scaler = self.autoscaler
        serving = [r for r in self.replicas if r.is_serving]
        pool = [r for r in self.replicas if r.state != RETIRED]
        action = scaler.observe(
            now=self.clock.now,
            queue_depth=len(self._queue),
            serving=len(serving),
            pool_size=len(pool),
            admission_stats=self.admission.stats,
        )
        if action == "scale-up":
            return self._scale_up()
        if action == "scale-down":
            return self._scale_down(serving)
        return False

    def _scale_up(self) -> bool:
        """Spawn one replica cloned from the pool's first recipe, warm-
        started from the shared timing store when one is attached."""
        from repro.perf.simcache import get_cache

        recipe = self.replicas[0]
        new_id = self.autoscaler.next_replica_id(
            r.replica_id for r in self.replicas
        )
        replica = make_replica(
            new_id,
            recipe.device,
            buffer_vertices=(
                recipe.handle.framework.pipeline.gather_buffer_vertices
            ),
            num_pipelines=recipe.handle.framework.num_pipelines,
            timing=recipe.handle.timing,
        )
        warmed = self.autoscaler.warm_start(get_cache())
        self.replicas.append(replica)
        self.autoscaler.note_spawned(new_id, self.clock.now, warmed)
        self._wal_replica(
            replica,
            f"autoscaler scale-up (warmed {warmed} cache entries)",
        )
        return True

    def _scale_down(self, serving: List[Replica]) -> bool:
        """Drain one surplus replica toward retirement.

        Prefers autoscaler-spawned replicas (latest first) so a
        scaled-up pool shrinks back toward its configured core; the
        victim finishes any in-flight work before retiring
        (SERVING -> DRAINING -> RETIRED, no canary)."""
        if not serving:
            return False
        spawned = [
            r for r in serving if r.replica_id.startswith("as")
        ]
        victim = (spawned or serving)[-1]
        victim.begin_drain(self.clock.now)
        self.autoscaler.begin_scale_down(victim.replica_id, self.clock.now)
        if victim.inflight == 0:
            # begin_drain already quarantined the idle victim; a canary
            # would only re-admit capacity the policy shed — retire now.
            victim.retire("autoscaler scale-down")
            self.autoscaler.note_retired(victim.replica_id, self.clock.now)
            self._wal_replica(victim, "autoscaler scale-down")
        else:
            self._wal_replica(victim, "autoscaler scale-down; draining")
        return True

    # -- prewarm ---------------------------------------------------------
    def prewarm(self, jobs: Sequence[Job], perf) -> int:
        """Warm the preprocess and timing caches for a job stream.

        The event loop itself is serial by construction (one virtual
        clock, one event order), so parallelism comes from hoisting the
        expensive *pure* work out of it: each distinct (device config,
        graph) spec is preprocessed — and its partitions timed once —
        on a worker process.  The artefacts seed the placement engine
        and the global simulation cache; both are pure functions of the
        spec, so the warmed run's :class:`FleetReport` digest is
        bit-identical to a cold serial run's.

        ``perf`` is a :class:`~repro.perf.config.PerfConfig`; returns
        the number of specs warmed.
        """
        from repro.perf.parallel import parallel_map
        from repro.perf.prewarm import distinct_specs, prewarm_spec
        from repro.perf.simcache import get_cache

        specs = distinct_specs(self.replicas, jobs, perf.cache_entries)
        results = parallel_map(
            prewarm_spec, list(specs.values()),
            workers=perf.workers, perf=perf,
        )
        cache = get_cache()
        warmed = 0
        for item in results:
            if item is None:
                continue
            key, pre, entries = item
            self.placement.seed(key, pre)
            cache.merge(entries)
            warmed += 1
        return warmed

    # -- the event loop --------------------------------------------------
    def run(
        self,
        jobs: Sequence[Job],
        kills: Sequence[ReplicaKill] = (),
        halt_after_events: Optional[int] = None,
    ) -> FleetReport:
        """Serve ``jobs`` (ordered by submit time) to completion.

        Returns a :class:`FleetReport` with exactly one terminal
        :class:`JobResult` per submitted job.

        ``halt_after_events`` models a hard kill of the serving process
        (chaos only): after that many loop events the runtime raises
        :class:`FleetKilledError` with no cleanup — exactly what a
        SIGKILL leaves behind.  Whatever the journal and store made
        durable before the halt is what ``recover`` gets to see.
        """
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise UserInputError("duplicate job ids in the submission batch")
        for kill in kills:
            self._replica(kill.replica_id)  # validate ids up front
        if halt_after_events is not None and halt_after_events < 1:
            raise UserInputError(
                f"halt_after_events must be >= 1, got {halt_after_events}"
            )

        # Write-ahead: the full input batch is durable before serving
        # starts, which is what makes replay-based recovery possible —
        # the event loop is a pure function of this record.
        self._wal("run-begin", {
            "policy": self.policy.to_dict(),
            "pool": self._pool_spec(),
            "jobs": [j.to_dict() for j in jobs],
            "kills": [k.to_dict() for k in kills],
        })

        submissions = sorted(
            enumerate(jobs), key=lambda p: (p[1].submit_time, p[0])
        )
        pending_kills = sorted(
            enumerate(kills), key=lambda p: (p[1].at_seconds, p[0])
        )
        sub_i = kill_i = 0

        while True:
            events: List[tuple] = []
            if self._inflight:
                best = min(
                    self._inflight, key=lambda a: (a.finish, a.entry.index)
                )
                events.append((best.finish, _EV_COMPLETE, best))
            if kill_i < len(pending_kills):
                kill = pending_kills[kill_i][1]
                events.append((kill.at_seconds, _EV_KILL, kill))
            canaries = [
                r for r in self.replicas
                if r.state == QUARANTINED and r.quarantined_at is not None
            ]
            if canaries:
                due = min(
                    canaries,
                    key=lambda r: (
                        r.quarantined_at
                        + self.policy.quarantine_cooldown_seconds,
                        r.replica_id,
                    ),
                )
                events.append((
                    due.quarantined_at
                    + self.policy.quarantine_cooldown_seconds,
                    _EV_CANARY,
                    due,
                ))
            if sub_i < len(submissions):
                job = submissions[sub_i][1]
                events.append((job.submit_time, _EV_SUBMIT, job))
            if self._queue:
                # Nothing else pending, but queued work waits on a busy
                # replica or a backoff window: advance to whichever
                # frees first.
                wake = [
                    r.busy_until for r in self.replicas
                    if r.is_serving and r.busy_until > self.clock.now
                ]
                wake += [
                    e.earliest_start for e in self._queue
                    if e.earliest_start > self.clock.now
                ]
                if wake:
                    events.append((min(wake), _EV_IDLE, None))

            if not events:
                if self._queue:
                    # No event can ever free capacity again: every job
                    # still queued gets a typed terminal error.
                    for entry in sorted(self._queue, key=_QueuedJob.sort_key):
                        self._finalize_failed(
                            entry,
                            NoServingReplicaError.__name__,
                            self._unplaceable_detail(entry),
                            entry.next_attempt - 1,
                        )
                    self._queue.clear()
                break

            when, priority, payload = min(events, key=lambda e: (e[0], e[1]))
            self.clock.advance_to(when)
            if priority == _EV_COMPLETE:
                self._on_complete(payload)
            elif priority == _EV_KILL:
                kill_i += 1
                self._on_kill(payload)
            elif priority == _EV_CANARY:
                self._on_canary(payload)
            elif priority == _EV_SUBMIT:
                sub_i += 1
                self._submit(payload)
            self._dispatch()
            if self.autoscaler is not None and self._autoscale():
                self._dispatch()
            self.events_processed += 1
            if (
                halt_after_events is not None
                and self.events_processed >= halt_after_events
            ):
                # Hard kill: no run-end record, no store flush beyond
                # what each append already fsynced.
                raise FleetKilledError(
                    f"fleet runtime hard-killed after "
                    f"{self.events_processed} event(s) at "
                    f"t={self.clock.now:g}s",
                    events_processed=self.events_processed,
                )

        self._wal("run-end", {
            "makespan_seconds": self.clock.now,
            "jobs": len(jobs),
            "events_processed": self.events_processed,
        })
        return self._build_report(jobs, kills)

    def _submit(self, job: Job) -> None:
        self._wal("submit", {
            "job_id": job.job_id, "time": self.clock.now,
        })
        try:
            self.admission.admit(job, len(self._queue), self.clock.now)
        except FleetOverloadError as exc:
            self._finalize_rejected(job, exc)
            return
        self._admit_seq += 1
        self._wal("admit", {
            "job_id": job.job_id,
            "seq": self._admit_seq,
            "time": self.clock.now,
        })
        self._queue.append(_QueuedJob(job, self._admit_seq))

    # -- crash recovery ---------------------------------------------------
    @classmethod
    def recover(
        cls,
        journal_path: Union[str, Path],
        store_path: Optional[Union[str, Path]] = None,
        quarantine_dir: Optional[Union[str, Path]] = None,
    ) -> "RecoveredFleet":
        """Rebuild a killed fleet from its journal (and result store).

        Repairs the journal first — a torn tail is truncated, any other
        damaged record is quarantined into ``quarantine_dir`` — then
        parses the ``run-begin`` input batch and folds the surviving
        records into a :class:`~repro.fleet.journal.JournalProjection`
        of the moment of death.  Corruption never aborts recovery; only
        a journal whose ``run-begin`` record itself is gone (nothing to
        replay) raises a typed :class:`~repro.errors.UserInputError`.

        Call :meth:`RecoveredFleet.resume` on the result to finish the
        interrupted run.
        """
        journal_path = Path(journal_path)
        records, repair = repair_journal(journal_path, quarantine_dir)
        projection = project_journal(records)
        begin = projection.run_begin
        if begin is None:
            raise UserInputError(
                f"journal {journal_path} has no intact run-begin record; "
                "the input batch is unrecoverable (was the journal "
                "attached before run() was called?)"
            )
        try:
            policy = FleetPolicy.from_dict(begin["policy"])
            pool_spec = [dict(spec) for spec in begin["pool"]]
            jobs = [Job.from_dict(j) for j in begin["jobs"]]
            kills = [ReplicaKill.from_dict(k) for k in begin["kills"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise UserInputError(
                f"journal {journal_path} run-begin record is malformed: "
                f"{exc!r}"
            ) from exc
        return RecoveredFleet(
            journal_path=journal_path,
            store_path=Path(store_path) if store_path is not None else None,
            policy=policy,
            pool_spec=pool_spec,
            jobs=jobs,
            kills=kills,
            projection=projection,
            repair=repair,
        )

    def report_for(
        self, jobs: Sequence[Job], kills: Sequence[ReplicaKill] = ()
    ) -> FleetReport:
        """A report over ``jobs`` served by earlier :meth:`run` calls.

        The serving facade pushes micro-batches through one persistent
        runtime (one virtual clock, state carried between calls) and
        asks for the aggregate report at drain time; every job must
        already have a terminal result.
        """
        missing = [j.job_id for j in jobs if j.job_id not in self._results]
        if missing:
            raise UserInputError(
                f"no terminal result for job(s) {missing[:5]}; "
                "report_for only covers jobs already served by run()"
            )
        return self._build_report(jobs, kills)

    def _build_report(
        self, jobs: Sequence[Job], kills: Sequence[ReplicaKill]
    ) -> FleetReport:
        ordered = [self._results[j.job_id] for j in jobs]
        return FleetReport(
            config={
                "policy": self.policy.to_dict(),
                "pool": [
                    {"replica_id": r.replica_id, "device": r.device}
                    for r in self.replicas
                ],
                "kills": [k.to_dict() for k in kills],
                "num_jobs": len(jobs),
            },
            jobs=ordered,
            replicas=[r.to_dict() for r in self.replicas],
            assignments=list(self._assignments),
            admission=self.admission.stats.to_dict(),
            counters=dict(self._counters),
            makespan_seconds=self.clock.now,
        )


@dataclass
class RecoveredFleet:
    """Everything :meth:`FleetRuntime.recover` pulled off disk.

    ``projection`` is the observability view (what was queued, in
    flight, and broken when the process died); ``resume`` is the
    authoritative rebuild: it re-creates the pool from the journaled
    recipe and deterministically replays the journaled input batch from
    t=0.  Results that were already durable in the store are suppressed
    by their idempotency keys — the client-visible stream stays
    exactly-once — and the resumed report is bit-identical to one from
    an uninterrupted run.
    """

    journal_path: Path
    store_path: Optional[Path]
    policy: FleetPolicy
    pool_spec: List[dict]
    jobs: List[Job]
    kills: List[ReplicaKill]
    projection: JournalProjection
    repair: RepairReport
    #: Set by :meth:`resume` before the replay starts, so a second
    #: crash (FleetKilledError) still leaves the runtime inspectable.
    runtime: Optional[FleetRuntime] = None

    def build_pool(self) -> List[Replica]:
        """Fresh replicas from the journaled ``run-begin`` recipe."""
        return [
            make_replica(
                spec["replica_id"],
                spec["device"],
                buffer_vertices=int(spec["buffer_vertices"]),
                num_pipelines=int(spec["num_pipelines"]),
                timing=HostTimingConfig.from_dict(spec["timing"]),
            )
            for spec in self.pool_spec
        ]

    def resume(
        self,
        halt_after_events: Optional[int] = None,
        fsync: bool = True,
    ) -> FleetReport:
        """Finish the interrupted run by deterministic replay.

        Appends a ``recover`` marker, then re-runs the journaled batch
        into the *same* journal (the sequence continues) with the store
        re-attached.  ``halt_after_events`` lets chaos kill the resumed
        run again; the next ``recover`` picks up from the same files.
        """
        journal = JobJournal(self.journal_path, fsync=fsync)
        store = (
            ResultStore(self.store_path, fsync=fsync)
            if self.store_path is not None
            else None
        )
        journal.append("recover", {
            "restored_results": len(store) if store is not None else 0,
            "outstanding": self.projection.outstanding,
            "quarantined": self.repair.quarantined,
            "truncated_bytes": self.repair.truncated_bytes,
        })
        self.runtime = FleetRuntime(
            self.build_pool(),
            policy=self.policy,
            journal=journal,
            store=store,
        )
        # No try/finally: a FleetKilledError must leave the handles as a
        # SIGKILL would — every append was already flushed+fsync'd, and
        # closing would be cleanup the crash never got to run.
        report = self.runtime.run(
            self.jobs, self.kills, halt_after_events=halt_after_events
        )
        journal.close()
        if store is not None:
            store.close()
        return report
