"""The ReGraph framework facade (Fig. 8).

One object drives the whole flow a user of the open-source framework
would run: hand it a platform and a graph, and it performs DBG grouping,
destination-interval partitioning, model calibration, model-guided
scheduling (choosing the best pipeline combination) and execution on the
simulated heterogeneous accelerator — push-button, as Sec. V promises.

Vertex IDs: preprocessing relabels the graph (DBG), so the framework maps
roots into, and results out of, the relabelled space transparently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.arch.config import PipelineConfig, default_pipeline_config
from repro.arch.platform import FpgaPlatform, get_platform
from repro.arch.resources import ResourceReport, report as resource_report
from repro.core.system import RunReport, SystemSimulator
from repro.graph.coo import Graph
from repro.graph.partition import PartitionSet, partition_graph
from repro.graph.reorder import DbgResult, degree_based_grouping, identity_ordering
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model
from repro.model.perf import PerformanceModel
from repro.sched.plan import SchedulingPlan
from repro.sched.scheduler import build_schedule


@dataclass
class PreprocessResult:
    """Everything the offline phase produces for one graph."""

    dbg: DbgResult
    pset: PartitionSet
    model: PerformanceModel
    plan: SchedulingPlan
    resources: ResourceReport
    #: wall-clock seconds of DBG and of partitioning+scheduling
    dbg_seconds: float
    schedule_seconds: float

    @property
    def graph(self) -> Graph:
        """The relabelled graph the accelerator executes."""
        return self.dbg.graph

    def to_original_order(self, props: np.ndarray) -> np.ndarray:
        """Map per-vertex results back to the input graph's vertex IDs."""
        return self.dbg.restore(props)

    def to_internal_vertex(self, vertex: int) -> int:
        """Map an input-graph vertex ID into the relabelled space."""
        return int(self.dbg.mapping[vertex])


class ReGraph:
    """End-to-end framework: preprocess once, run apps push-button."""

    def __init__(
        self,
        platform: Union[str, FpgaPlatform] = "U280",
        pipeline: Optional[PipelineConfig] = None,
        channel: Optional[HbmChannelModel] = None,
        num_pipelines: Optional[int] = None,
    ):
        self.platform = (
            get_platform(platform) if isinstance(platform, str) else platform
        )
        self.pipeline = pipeline or default_pipeline_config(self.platform)
        self.channel = channel or HbmChannelModel()
        self.num_pipelines = num_pipelines or self.platform.max_total_pipelines
        self._model: Optional[PerformanceModel] = None

    @property
    def model(self) -> PerformanceModel:
        """The calibrated analytic performance model (lazy)."""
        if self._model is None:
            self._model = calibrate_performance_model(
                self.pipeline, self.channel
            )
        return self._model

    # ------------------------------------------------------------------
    def preprocess(
        self,
        graph: Graph,
        use_dbg: bool = True,
        forced_combo: Optional[Tuple[int, int]] = None,
    ) -> PreprocessResult:
        """Offline phase: DBG, partition, schedule (Fig. 8 steps 3-4)."""
        t0 = time.perf_counter()
        dbg = (
            degree_based_grouping(graph) if use_dbg else identity_ordering(graph)
        )
        t1 = time.perf_counter()
        pset = partition_graph(dbg.graph, self.pipeline.partition_vertices)
        plan = build_schedule(
            pset, self.model, self.num_pipelines, forced_combo=forced_combo
        )
        t2 = time.perf_counter()
        return PreprocessResult(
            dbg=dbg,
            pset=pset,
            model=self.model,
            plan=plan,
            resources=resource_report(plan.accelerator, self.platform),
            dbg_seconds=t1 - t0,
            schedule_seconds=t2 - t1,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        graph_or_pre: Union[Graph, PreprocessResult],
        app_builder: Callable[[Graph], object],
        max_iterations: Optional[int] = None,
        functional: bool = True,
        fault_plan=None,
        resilience=None,
        breakers=None,
    ) -> RunReport:
        """Deploy and execute an app (Fig. 8 step 5).

        ``app_builder`` receives the *relabelled* graph; per-vertex
        results in the returned report are mapped back to input-graph
        order.

        Passing a :class:`~repro.faults.plan.FaultPlan` (and optionally a
        :class:`~repro.faults.resilience.ResiliencePolicy`) routes the
        run through the resilient execution layer: injected faults are
        absorbed by watchdog/retry/checkpoint/degrade and accounted in
        ``run.health``.  With both left ``None`` the plain simulator runs
        — bit-for-bit the historical code path.

        ``breakers`` optionally shares a
        :class:`~repro.faults.resilience.CircuitBreakerBank` across runs
        so repeatedly-faulting channels stay degraded between executions
        (the host runtime passes its per-handle bank here).
        """
        pre = (
            graph_or_pre
            if isinstance(graph_or_pre, PreprocessResult)
            else self.preprocess(graph_or_pre)
        )
        app = app_builder(pre.graph)
        if fault_plan is not None or resilience is not None:
            from repro.faults.resilience import ResilientExecutor

            executor = ResilientExecutor(
                pre, self.platform, self.channel,
                fault_plan=fault_plan, policy=resilience,
                breakers=breakers,
            )
            run = executor.run(
                app, max_iterations=max_iterations, functional=functional
            )
        else:
            sim = SystemSimulator(pre.plan, self.platform, self.channel)
            run = sim.run(
                app, max_iterations=max_iterations, functional=functional
            )
        if run.props is not None and run.props.size == pre.graph.num_vertices:
            run.props = pre.to_original_order(run.props)
            if (
                isinstance(run.result, np.ndarray)
                and run.result.size == pre.graph.num_vertices
            ):
                run.result = pre.to_original_order(run.result)
        return run

    # ------------------------------------------------------------------
    # Convenience wrappers for the three paper benchmarks
    # ------------------------------------------------------------------
    def run_pagerank(self, graph_or_pre, **kwargs) -> RunReport:
        """PageRank with the Listing 1 UDFs."""
        from repro.apps.pagerank import PageRank

        max_iterations = kwargs.pop("max_iterations", None)
        functional = kwargs.pop("functional", True)
        fault_plan = kwargs.pop("fault_plan", None)
        resilience = kwargs.pop("resilience", None)
        breakers = kwargs.pop("breakers", None)
        return self.run(
            graph_or_pre,
            lambda g: PageRank(g, **kwargs),
            max_iterations=max_iterations,
            functional=functional,
            fault_plan=fault_plan,
            resilience=resilience,
            breakers=breakers,
        )

    def run_bfs(self, graph_or_pre, root: int = 0, **kwargs) -> RunReport:
        """BFS from ``root`` (an input-graph vertex ID)."""
        from repro.apps.bfs import BreadthFirstSearch

        pre = (
            graph_or_pre
            if isinstance(graph_or_pre, PreprocessResult)
            else self.preprocess(graph_or_pre)
        )
        internal_root = pre.to_internal_vertex(root)
        return self.run(
            pre, lambda g: BreadthFirstSearch(g, root=internal_root), **kwargs
        )

    def run_closeness(self, graph_or_pre, root: int = 0, **kwargs) -> RunReport:
        """Closeness centrality of ``root`` (an input-graph vertex ID)."""
        from repro.apps.closeness import ClosenessCentrality

        pre = (
            graph_or_pre
            if isinstance(graph_or_pre, PreprocessResult)
            else self.preprocess(graph_or_pre)
        )
        internal_root = pre.to_internal_vertex(root)
        return self.run(
            pre, lambda g: ClosenessCentrality(g, root=internal_root), **kwargs
        )
