"""Accelerator generation (Sec. V-D).

ReGraph generates one accelerator per pipeline combination: with
``N_pip = min(N_ch, (N_port - N_res) / 2)`` total pipelines, it enumerates
``M`` from 0 to ``N_pip`` Little pipelines (and ``N = N_pip - M`` Big
ones).  The resource model then filters combinations that would not place
on the device — with the heterogeneous designs of the paper, all of them
fit, which is precisely the scalability claim.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import FpgaPlatform
from repro.arch.resources import report


def enumerate_accelerators(
    platform: FpgaPlatform,
    pipeline: Optional[PipelineConfig] = None,
    total_pipelines: Optional[int] = None,
) -> List[AcceleratorConfig]:
    """All (M Little, N Big) combinations for the platform.

    ``total_pipelines`` overrides the platform's port-derived maximum,
    which the scalability study (Fig. 12) uses to sweep pipeline counts.
    """
    if pipeline is None:
        pipeline = PipelineConfig().for_platform(platform)
    n_pip = total_pipelines or platform.max_total_pipelines
    if n_pip < 1:
        raise ValueError("platform supports no pipelines")
    return [
        AcceleratorConfig(num_little=m, num_big=n_pip - m, pipeline=pipeline)
        for m in range(n_pip + 1)
    ]


def feasible_accelerators(
    platform: FpgaPlatform,
    pipeline: Optional[PipelineConfig] = None,
    total_pipelines: Optional[int] = None,
    max_lut: float = 0.8,
) -> List[AcceleratorConfig]:
    """The combinations whose resource report passes the placement check."""
    return [
        accel
        for accel in enumerate_accelerators(platform, pipeline, total_pipelines)
        if report(accel, platform).feasible(max_lut=max_lut)
    ]
