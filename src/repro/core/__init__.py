"""ReGraph core: accelerator generation and the end-to-end framework.

Ties every substrate together, following the workflow of Fig. 8: UDFs ->
accelerator generation -> graph preprocessing (DBG + partitioning) ->
model-guided scheduling -> deployment on the simulated heterogeneous
pipeline system.
"""

from repro.core.accelerator import (
    enumerate_accelerators,
    feasible_accelerators,
)
from repro.core.system import IterationReport, RunReport, SystemSimulator
from repro.core.framework import PreprocessResult, ReGraph

__all__ = [
    "enumerate_accelerators",
    "feasible_accelerators",
    "IterationReport",
    "RunReport",
    "SystemSimulator",
    "PreprocessResult",
    "ReGraph",
]
