"""Full-system simulator: heterogeneous clusters + Apply + Writer.

Executes a static :class:`~repro.sched.plan.SchedulingPlan` iteration by
iteration.  Within an iteration every pipeline runs its task list; the two
clusters proceed concurrently and the Apply module streams the merged
accumulations against the old properties (Fig. 3c), so the iteration's
cycle count is the slowest pipeline's busy time overlapped with the
Apply/Writer stream.

Task timings are invariant across iterations (the edge lists never
change), so they are simulated once and cached; the *functional* pass —
running the app's UDFs through the modelled PEs — repeats every iteration
because properties evolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.arch.apply import ApplySim
from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.arch.platform import FpgaPlatform
from repro.arch.resources import report as resource_report
from repro.arch.trace import trace_plan
from repro.arch.writer import WriterSim
from repro.hbm.channel import HbmChannelModel
from repro.sched.plan import SchedulingPlan


@dataclass(frozen=True)
class IterationReport:
    """Cycle accounting of one iteration."""

    little_cycles: List[float]
    big_cycles: List[float]
    apply_cycles: float
    writer_cycles: float

    @property
    def cluster_cycles(self) -> float:
        """Busy time of the slowest pipeline across both clusters."""
        busiest = 0.0
        for cycles in (self.little_cycles, self.big_cycles):
            if cycles:
                busiest = max(busiest, max(cycles))
        return busiest

    @property
    def total_cycles(self) -> float:
        """Iteration cycles: clusters overlapped with the Apply stream,
        plus the Writer's broadcast tail."""
        return max(self.cluster_cycles, self.apply_cycles) + self.writer_cycles


@dataclass
class RunReport:
    """Outcome of a full application run on the simulated system."""

    app_name: str
    graph_name: str
    accel_label: str
    frequency_mhz: float
    iterations: int = 0
    total_cycles: float = 0.0
    edges_per_iteration: int = 0
    converged: bool = False
    iteration_reports: List[IterationReport] = field(default_factory=list)
    props: Optional[np.ndarray] = None
    result: Optional[object] = None
    #: :class:`repro.faults.resilience.RunHealthReport` when the run used
    #: the resilient execution layer; None for plain runs.
    health: Optional[object] = None
    #: :class:`repro.sched.scheduler.SchedulingPlan` the final iterations
    #: executed under (differs from the initial plan after degradation).
    final_plan: Optional[object] = None

    @property
    def total_seconds(self) -> float:
        """Wall-clock execution time at the modelled frequency."""
        return self.total_cycles / (self.frequency_mhz * 1e6)

    @property
    def processed_edges(self) -> int:
        """Edge traversals across all iterations."""
        return self.edges_per_iteration * self.iterations

    @property
    def mteps(self) -> float:
        """Millions of traversed edges per second."""
        if self.total_seconds == 0:
            return 0.0
        return self.processed_edges / self.total_seconds / 1e6

    @property
    def gteps(self) -> float:
        """Billions of traversed edges per second."""
        return self.mteps / 1e3


class SystemSimulator:
    """Executes a scheduling plan on the modelled heterogeneous system."""

    def __init__(
        self,
        plan: SchedulingPlan,
        platform: FpgaPlatform,
        channel: Optional[HbmChannelModel] = None,
        injector=None,
    ):
        self.plan = plan
        self.platform = platform
        self.channel = channel or HbmChannelModel()
        self.injector = injector
        if injector is not None:
            # Private channel copy so fault wiring never leaks into the
            # caller's (shared, possibly fault-free) channel model.
            self.channel = HbmChannelModel(
                self.channel.params, fault_site=injector
            )
        config = plan.accelerator.pipeline
        self._little = LittlePipelineSim(config, self.channel)
        self._big = BigPipelineSim(config, self.channel)
        self._apply = ApplySim(self.channel)
        self._writer = WriterSim(self.channel)
        if injector is not None:
            self._little.fault_site = injector
            self._big.fault_site = injector
        self._resource_report = resource_report(plan.accelerator, platform)
        self._cached_iteration: Optional[IterationReport] = None

    @property
    def frequency_mhz(self) -> float:
        """Implementation frequency from the resource model."""
        return self._resource_report.frequency_mhz

    # ------------------------------------------------------------------
    def _timing_pass(self, num_vertices: int) -> IterationReport:
        """Simulate one iteration's timing.

        Cached across iterations while no fault can perturb it (always,
        for fault-free runs); recomputed uncached — and never written to
        the cache — while injected timing faults are active, so clean
        iterations before/after a fault window keep the baseline counts.

        Fault-free passes route through the compiled engine when it is
        enabled (:func:`repro.compiled.compiled_enabled`); faulty passes
        always take the interpreted walk, whose per-task injector hooks
        the faults need.  The two paths are bit-identical on fault-free
        input — the equivalence harness's contract — and an *inactive*
        injector is safe to skip: its hooks draw no randomness and scale
        nothing while ``timing_faults_active()`` is False.
        """
        faulty = (
            self.injector is not None and self.injector.timing_faults_active()
        )
        if not faulty:
            if self._cached_iteration is None:
                from repro.compiled import compiled_enabled

                if compiled_enabled():
                    self._cached_iteration = self._compiled_timing(
                        num_vertices
                    )
                else:
                    self._cached_iteration = self._compute_timing(
                        num_vertices
                    )
            return self._cached_iteration
        return self._compute_timing(num_vertices)

    def _compiled_timing(self, num_vertices: int) -> IterationReport:
        """One timing pass through the compiled engine.

        The engine compiles the plan on first use (structure is attached
        to the plan object and reused across simulators, iterations and
        channel variants), evaluates all nodes batched under this
        simulator's channel, publishes the per-task timings into the
        simulation cache, and replays the interpreted busy-sum order.
        """
        from repro.compiled import plan_engine

        little, big = plan_engine(self.plan).busy_cycles(self.channel)
        return IterationReport(
            little_cycles=little,
            big_cycles=big,
            apply_cycles=self._apply.cycles(num_vertices),
            writer_cycles=self._writer.cycles(num_vertices),
        )

    def _compute_timing(self, num_vertices: int) -> IterationReport:
        """One uncached timing pass over every pipeline's task list."""
        injector = self.injector
        if injector is not None:
            injector.pass_kind = "timing"
        little = []
        for idx, tasks in enumerate(self.plan.little_tasks):
            if injector is not None:
                injector.enter_pipeline("little", idx)
            busy = 0.0
            for task in tasks:
                timing, _ = self._little.execute(task.partition)
                busy += timing.total_cycles
            little.append(busy)
        big = []
        for idx, tasks in enumerate(self.plan.big_tasks):
            if injector is not None:
                injector.enter_pipeline("big", idx)
            busy = 0.0
            for task in tasks:
                timing, _ = self._big.execute(task.partitions)
                busy += timing.total_cycles
            big.append(busy)
        if injector is not None:
            injector.exit_pipeline()
        return IterationReport(
            little_cycles=little,
            big_cycles=big,
            apply_cycles=self._apply.cycles(num_vertices),
            writer_cycles=self._writer.cycles(num_vertices),
        )

    def _functional_pass(self, app, props: np.ndarray) -> np.ndarray:
        """Run every task's UDFs and merge accumulations globally.

        Fault-free passes route through the compiled functional engine
        when it is enabled — batched UDF calls over the plan's lowered
        gather/scatter structure, bit-identical to the interpreted walk
        (``tests/test_compiled_functional.py`` is the contract).
        Passes with an *active* functional fault (an open bit-flip
        window) always take the interpreted walk, whose per-buffer
        ``filter_buffer`` hook owns the fault RNG; an inactive injector
        is safe to skip — its hooks draw no randomness and corrupt
        nothing while ``functional_faults_active()`` is False.
        """
        injector = self.injector
        faulty = (
            injector is not None and injector.functional_faults_active()
        )
        if not faulty:
            from repro.compiled import compiled_enabled

            if compiled_enabled():
                return self._compiled_functional(app, props)
        from repro.compiled.functional import note_functional_fallback

        note_functional_fallback()
        return self._interpreted_functional(app, props)

    def _compiled_functional(self, app, props: np.ndarray) -> np.ndarray:
        """One functional pass through the compiled engine.

        The engine lowers the plan's gather/scatter structure on first
        use (attached to the plan object, shared across simulators and
        iterations) and evaluates the whole iteration with batched
        scatter/gather_at calls.  The injector bookkeeping mirrors the
        interpreted walk's net effect: ``pass_kind`` flips to
        "functional" and the pipeline context ends cleared.
        """
        from repro.compiled.functional import functional_engine

        injector = self.injector
        if injector is not None:
            injector.pass_kind = "functional"
            injector.exit_pipeline()
        acc = functional_engine(self.plan).accumulate(app, props)
        return self._apply.run(app, props, acc)

    def _interpreted_functional(self, app, props: np.ndarray) -> np.ndarray:
        """The per-task interpreted walk (fault oracle and fallback)."""
        injector = self.injector
        if injector is not None:
            injector.pass_kind = "functional"
        acc = np.full(props.size, app.gather_identity, dtype=app.prop_dtype)
        for idx, tasks in enumerate(self.plan.little_tasks):
            if injector is not None:
                injector.enter_pipeline("little", idx)
            for task in tasks:
                _, output = self._little.execute(task.partition, app, props)
                lo, hi, buffer = output
                acc[lo:hi] = app.gather(acc[lo:hi], buffer)
        for idx, tasks in enumerate(self.plan.big_tasks):
            if injector is not None:
                injector.enter_pipeline("big", idx)
            for task in tasks:
                _, outputs = self._big.execute(task.partitions, app, props)
                for lo, hi, buffer in outputs:
                    acc[lo:hi] = app.gather(acc[lo:hi], buffer)
        if injector is not None:
            injector.exit_pipeline()
        return self._apply.run(app, props, acc)

    # -- public single-iteration surface (used by the resilient layer) --
    def iteration_timing(self, num_vertices: int) -> IterationReport:
        """Timing of one iteration (cached when no fault is active)."""
        return self._timing_pass(num_vertices)

    def iteration_trace(self):
        """Task-level :class:`~repro.arch.trace.ExecutionTrace` of one
        iteration under this simulator's channel model — the record the
        conformance checker audits.  Synthesized from compiled node
        timings on fault-free channels; see
        :func:`repro.arch.trace.trace_plan` for the routing rule."""
        return trace_plan(self.plan, self.channel)

    def functional_iteration(self, app, props: np.ndarray) -> np.ndarray:
        """One functional iteration: UDFs, global merge, Apply."""
        return self._functional_pass(app, props)

    # ------------------------------------------------------------------
    def run(
        self,
        app,
        max_iterations: Optional[int] = None,
        functional: bool = True,
    ) -> RunReport:
        """Execute the app until convergence or the iteration cap.

        With ``functional=False`` only timing is simulated (properties are
        not evolved) and exactly ``max_iterations`` iterations are
        charged — the mode used by pure-throughput sweeps.
        """
        limit = max_iterations if max_iterations is not None else app.max_iterations
        graph = app.graph
        run = RunReport(
            app_name=app.name,
            graph_name=graph.name,
            accel_label=self.plan.accelerator.label,
            frequency_mhz=self.frequency_mhz,
            edges_per_iteration=self.plan.total_edges(),
            final_plan=self.plan,
        )
        props = app.init_props() if functional else None
        for _ in range(limit):
            iteration = self._timing_pass(graph.num_vertices)
            run.iteration_reports.append(iteration)
            run.total_cycles += iteration.total_cycles
            run.iterations += 1
            if functional:
                new_props = self._functional_pass(app, props)
                if app.has_converged(props, new_props, run.iterations):
                    props = new_props
                    run.converged = True
                    break
                props = new_props
        if functional:
            run.props = props
            run.result = app.finalize(props)
        return run
