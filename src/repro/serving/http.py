"""Minimal stdlib HTTP/1.1 transport for the serving gateway.

A deliberately small asyncio server (no third-party web framework —
the container pins its dependency set) that does nothing but shovel
bytes: parse a request, hand the JSON to
:class:`~repro.serving.gateway.ServingGateway`, map the gateway's
typed errors onto status codes, write the JSON back.  Every robustness
property lives in the gateway and is tested through it in-process;
this module only has to be honest about framing.

Routes (all responses are JSON; errors are
``{"error": <type>, "detail": <message>}``):

=======  =========================  ===========================================
POST     ``/v1/jobs``               submit one job; 202 on acceptance
GET      ``/v1/jobs/<id>``          status / terminal result
GET      ``/v1/jobs/<id>/stream``   chunked status stream until terminal
GET      ``/v1/health``             liveness + queue/admission counters
GET      ``/v1/report``             session FleetReport digest so far
POST     ``/v1/drain``              begin graceful drain (idempotent)
=======  =========================  ===========================================

Authentication: ``Authorization: Bearer <key>`` or ``X-Api-Key:
<key>``.  Status mapping: 400 bad payload, 401 unknown key, 404
unknown job, 429 quota/overload (with ``Retry-After``), 503 draining.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.errors import (
    FleetOverloadError,
    ReproError,
    ServingDrainingError,
    TenantAuthError,
    UserInputError,
)
from repro.serving.gateway import ServingGateway

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def status_for(exc: ReproError) -> int:
    """The HTTP status a gateway error maps onto."""
    if isinstance(exc, TenantAuthError):
        return 401
    if isinstance(exc, ServingDrainingError):
        return 503
    if isinstance(exc, FleetOverloadError):
        return 429
    if isinstance(exc, UserInputError):
        return 400
    return 500


def _error_body(exc: BaseException) -> dict:
    return {"error": exc.__class__.__name__, "detail": str(exc)}


def _response(status: int, body: dict, extra: Tuple[str, ...] = ()) -> bytes:
    payload = (json.dumps(body, sort_keys=True) + "\n").encode()
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
        *extra,
    ]
    return ("\r\n".join(head) + "\r\n\r\n").encode() + payload


class HttpServer:
    """One listening socket bound to one gateway."""

    def __init__(self, gateway: ServingGateway, host: str = "127.0.0.1",
                 port: int = 8373):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        await self.gateway.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        addr = self._server.sockets[0].getsockname()
        self.port = addr[1]  # resolve port 0 to the bound port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling -------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the client went away; nothing to clean up
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(self, reader, writer) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            writer.write(_response(413, {"error": "headers too large"}))
            await writer.drain()
            return
        if len(head) > _MAX_HEADER_BYTES:
            writer.write(_response(413, {"error": "headers too large"}))
            await writer.drain()
            return
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _ = lines[0].split(" ", 2)
        except ValueError:
            writer.write(_response(400, {"error": "bad request line"}))
            await writer.drain()
            return
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            writer.write(_response(413, {"error": "body too large"}))
            await writer.drain()
            return
        body = await reader.readexactly(length) if length else b""
        api_key = self._api_key(headers)
        await self._route(method, target, api_key, body, writer)

    @staticmethod
    def _api_key(headers: dict) -> Optional[str]:
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return headers.get("x-api-key") or None

    async def _route(self, method, target, api_key, body, writer) -> None:
        path = target.split("?", 1)[0]
        try:
            if method == "POST" and path == "/v1/jobs":
                try:
                    payload = json.loads(body.decode() or "{}")
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise UserInputError(f"body is not JSON: {exc}")
                if not isinstance(payload, dict):
                    raise UserInputError("job payload must be an object")
                ack = await self.gateway.submit(api_key, payload)
                writer.write(_response(202, ack))
            elif method == "GET" and path == "/v1/health":
                writer.write(_response(200, self.gateway.health()))
            elif method == "GET" and path == "/v1/report":
                writer.write(_response(200, self.gateway.report()))
            elif method == "POST" and path == "/v1/drain":
                summary = await self.gateway.drain()
                writer.write(_response(200, summary))
            elif method == "GET" and path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/stream"):
                    await self._stream(rest[: -len("/stream")].rstrip("/"),
                                       writer)
                    return
                try:
                    status = self.gateway.status(rest)
                except UserInputError as exc:
                    writer.write(_response(404, _error_body(exc)))
                else:
                    writer.write(_response(200, status))
            else:
                writer.write(_response(
                    405 if path.startswith("/v1/") else 404,
                    {"error": "no such route", "detail": f"{method} {path}"},
                ))
        except ReproError as exc:
            extra = ("Retry-After: 1",) if status_for(exc) == 429 else ()
            writer.write(_response(status_for(exc), _error_body(exc), extra))
        await writer.drain()

    async def _stream(self, job_id: str, writer) -> None:
        """Chunked transfer: one JSON line per status update."""
        try:
            updates = self.gateway.stream(job_id)
            first = await updates.__anext__()
        except UserInputError as exc:
            writer.write(_response(404, _error_body(exc)))
            await writer.drain()
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode())

        def chunk(data: dict) -> bytes:
            line = (json.dumps(data, sort_keys=True) + "\n").encode()
            return f"{len(line):x}\r\n".encode() + line + b"\r\n"

        writer.write(chunk(first))
        await writer.drain()
        async for update in updates:
            writer.write(chunk(update))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
