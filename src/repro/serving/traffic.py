"""Live-traffic recording and deterministic replay.

A traffic bundle (``regraph-traffic/v1``) is the serving gateway's
flight recorder: an append-only JSONL file, one CRC-checksummed record
per line in exactly the fleet journal's wire format
(:class:`~repro.fleet.journal.JournalRecord`), capturing

* ``traffic-begin`` — the schema tag and the kernel session spec
  (pool recipe + policy) the gateway was started with;
* ``accept``       — one record per *acknowledged* job, carrying the
  acceptance sequence number, the tenant, the full job payload and the
  wall-clock arrival time.  The ordered accept stream **is** the
  session input: feeding it back through a fresh
  :class:`~repro.serving.session.KernelSession` reproduces the live
  run's :class:`~repro.fleet.report.FleetReport` digest bit-for-bit;
* ``reject``       — typed turn-aways (401/429/503) for observability;
* ``result``       — terminal results as they were streamed back;
* ``resume``       — a recovered gateway reopened this bundle;
* ``traffic-end``  — counts + the session report digest at drain.

Because accepts are written *before* the acknowledgement leaves the
gateway, the bundle doubles as a second write-ahead log of the
acceptance sequence: recovery merges accepts from the SQLite store and
the bundle, so an acked job survives as long as either file does.
Reading is damage-tolerant by the same machinery the fleet journal
uses — corrupt lines are skipped and counted, a torn tail never blocks
replay.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import UserInputError
from repro.fleet.job import JobResult
from repro.fleet.journal import JournalRecord, read_journal

#: Traffic-bundle schema identifier; bump on incompatible changes.
TRAFFIC_SCHEMA = "regraph-traffic/v1"

#: Record types a bundle may contain.
TRAFFIC_RECORD_TYPES = (
    "traffic-begin",  # schema + the kernel session spec
    "accept",         # one acknowledged job (seq, tenant, payload, wall)
    "reject",         # a typed turn-away (auth / quota / draining)
    "result",         # a terminal JobResult as streamed to the client
    "resume",         # a recovered gateway reopened this bundle
    "traffic-end",    # drain summary: counts + session report digest
)


class TrafficRecorder:
    """Append-side handle: records one gateway's request stream.

    Same durability contract as :class:`~repro.fleet.journal.JobJournal`
    — synchronous, fsync'd (by default) appends with per-record CRCs and
    a monotone sequence — and the same reopen semantics: opening an
    existing bundle continues its sequence with a ``resume`` marker, so
    one file spans every restart of the same session.
    """

    def __init__(self, path: Union[str, Path], spec: dict, fsync: bool = True):
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._next_seq = 0
        self.appended = 0
        fresh = not (self.path.exists() and self.path.stat().st_size > 0)
        if fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        else:
            scan = read_journal(self.path)
            if scan.records:
                self._next_seq = scan.records[-1].seq + 1
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self.append("traffic-begin", {
                "schema": TRAFFIC_SCHEMA,
                "session": dict(spec),
            })
        else:
            self.append("resume", {"session": dict(spec)})

    def append(self, rtype: str, payload: dict) -> int:
        if rtype not in TRAFFIC_RECORD_TYPES:
            raise UserInputError(
                f"unknown traffic record type {rtype!r}; "
                f"expected one of {TRAFFIC_RECORD_TYPES}"
            )
        record = JournalRecord(self._next_seq, rtype, payload)
        self._fh.write(record.line())
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._next_seq += 1
        self.appended += 1
        return record.seq

    # -- the recording vocabulary ----------------------------------------
    def record_accept(
        self, accept_seq: int, tenant: str, job_payload: dict, wall: float
    ) -> None:
        """Durably log an acknowledged job (call *before* the ack)."""
        self.append("accept", {
            "accept_seq": accept_seq,
            "tenant": tenant,
            "job": dict(job_payload),
            "wall": wall,
        })

    def record_reject(
        self, tenant: str, job_id: str, error_type: str,
        detail: str, wall: float,
    ) -> None:
        self.append("reject", {
            "tenant": tenant,
            "job_id": job_id,
            "error_type": error_type,
            "detail": detail,
            "wall": wall,
        })

    def record_result(self, result: JobResult, wall: float) -> None:
        self.append("result", {
            "result": result.to_dict(),
            "wall": wall,
        })

    def record_end(self, digest: str, counts: dict) -> None:
        self.append("traffic-end", {
            "report_digest": digest,
            "counts": dict(counts),
        })

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "TrafficRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class TrafficBundle:
    """Everything an intact-enough traffic bundle contains."""

    path: str
    #: Session spec from ``traffic-begin`` (or the newest ``resume``);
    #: ``None`` when every copy of it was damaged.
    spec: Optional[dict] = None
    #: Acknowledged jobs ordered by acceptance sequence:
    #: ``(accept_seq, tenant, job_payload)``.
    accepts: List[tuple] = field(default_factory=list)
    rejects: List[dict] = field(default_factory=list)
    #: Terminal results as recorded: job_id -> JobResult payload.
    results: Dict[str, dict] = field(default_factory=dict)
    #: ``traffic-end`` payload; ``None`` for a crashed (undrained) run.
    end: Optional[dict] = None
    #: Lines that failed parsing or their checksum (skipped, counted).
    corrupt_lines: int = 0

    @property
    def drained(self) -> bool:
        return self.end is not None

    def job_payloads(self) -> List[dict]:
        """The replay input: accepted jobs in acceptance order."""
        return [payload for _, _, payload in self.accepts]

    def summary(self) -> dict:
        return {
            "schema": TRAFFIC_SCHEMA,
            "accepts": len(self.accepts),
            "rejects": len(self.rejects),
            "results": len(self.results),
            "drained": self.drained,
            "corrupt_lines": self.corrupt_lines,
            "recorded_digest": (
                self.end.get("report_digest", "") if self.end else ""
            ),
        }


def read_traffic(path: Union[str, Path]) -> TrafficBundle:
    """Scan a traffic bundle, skipping (and counting) damaged lines.

    Never raises on corruption — a torn or bit-flipped bundle still
    yields every record that was durably written, which is exactly the
    property the dual-durability recovery path relies on.  Only a
    missing file is a typed error.
    """
    path = Path(path)
    if not path.exists():
        raise UserInputError(
            f"traffic bundle not found: {path} (record one with "
            "`repro serve --record <path>`)"
        )
    scan = read_journal(path)
    bundle = TrafficBundle(path=str(path), corrupt_lines=len(scan.corrupt))
    accepts: Dict[int, tuple] = {}
    for record in scan.records:
        payload = record.payload
        if record.type == "traffic-begin":
            if bundle.spec is None:
                bundle.spec = payload.get("session")
        elif record.type == "resume":
            # A resume marker repeats the spec: it covers for a damaged
            # traffic-begin record.
            if bundle.spec is None:
                bundle.spec = payload.get("session")
        elif record.type == "accept":
            try:
                seq = int(payload["accept_seq"])
                job = dict(payload["job"])
            except (KeyError, TypeError, ValueError):
                bundle.corrupt_lines += 1
                continue
            # Replays after a resume repeat earlier accepts: first copy
            # wins, which keeps the sequence exactly-once.
            accepts.setdefault(
                seq, (seq, str(payload.get("tenant", "")), job)
            )
        elif record.type == "reject":
            bundle.rejects.append(dict(payload))
        elif record.type == "result":
            result = payload.get("result", {})
            job_id = str(result.get("job_id", ""))
            if job_id:
                bundle.results.setdefault(job_id, result)
        elif record.type == "traffic-end":
            bundle.end = dict(payload)
    bundle.accepts = [accepts[s] for s in sorted(accepts)]
    return bundle


def replay_traffic(
    path: Union[str, Path],
    spec_override: Optional[dict] = None,
):
    """Re-serve a recorded bundle through a fresh virtual-clock session.

    Returns ``(session, bundle)``: the session has served every
    acknowledged job in the recorded order, so ``session.digest()``
    must equal the live run's report digest (and, for a drained
    bundle, the digest stored in ``traffic-end``).  ``spec_override``
    substitutes for a bundle whose spec records were all damaged.
    """
    from repro.serving.session import KernelSession

    bundle = read_traffic(path)
    spec = spec_override if spec_override is not None else bundle.spec
    if spec is None:
        raise UserInputError(
            f"traffic bundle {path} has no intact session spec and no "
            "override was given; replay cannot rebuild the kernel pool"
        )
    session = KernelSession(spec)
    session.replay(bundle.job_payloads())
    return session, bundle
