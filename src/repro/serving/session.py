"""The serving facade's virtual-clock kernel session.

One :class:`KernelSession` wraps one persistent
:class:`~repro.fleet.runtime.FleetRuntime` and pushes every accepted
job through it as a **micro-batch of one**, in acceptance order, with
``submit_time := clock.now`` (the virtual clock carries across
batches).  That one rule is what makes the whole facade reproducible:
the session's final :class:`~repro.fleet.report.FleetReport` is a pure
function of the *acceptance sequence* — the ordered list of job
payloads — and of the session spec (pool recipe + policy).  Live
serving, crash-recovery replay (``repro serve --resume``) and traffic
replay (``repro traffic replay``) all drive this same class with the
same sequence, so their report digests are bit-identical by
construction; no wall-clock timestamp ever reaches the kernel.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.errors import UserInputError
from repro.fleet.job import Job, JobResult
from repro.fleet.replica import Replica, make_replica
from repro.fleet.report import FleetReport
from repro.fleet.runtime import FleetPolicy, FleetRuntime


def build_pool(spec: dict) -> List[Replica]:
    """Fresh replicas from a ``session_spec()`` dict (one per device)."""
    devices = list(spec["devices"])
    if not devices:
        raise UserInputError("session spec names no devices")
    return [
        make_replica(
            f"serve-{i}-{str(device).lower()}",
            str(device),
            buffer_vertices=int(spec["buffer_vertices"]),
            num_pipelines=int(spec["num_pipelines"]),
        )
        for i, device in enumerate(devices)
    ]


class KernelSession:
    """Deterministic executor behind the wall-clock gateway."""

    def __init__(self, spec: dict):
        self.spec = dict(spec)
        policy = self.spec.get("policy")
        self.policy = (
            FleetPolicy.from_dict(policy)
            if policy is not None
            else FleetPolicy()
        )
        self.runtime = FleetRuntime(build_pool(self.spec), policy=self.policy)
        #: Jobs served so far, acceptance order, with the submit times
        #: the kernel actually used (the report input).
        self.served_jobs: List[Job] = []
        self._served_ids: set = set()

    @property
    def clock_now(self) -> float:
        return self.runtime.clock.now

    def execute(self, job: Job) -> JobResult:
        """Serve one accepted job to its terminal result.

        The job's wire ``submit_time`` is discarded: the kernel stamps
        the current virtual time, so the schedule depends only on the
        acceptance *order*, never on wall-clock arrival times.
        """
        if job.job_id in self._served_ids:
            raise UserInputError(
                f"job {job.job_id!r} was already served in this session"
            )
        pinned = replace(job, submit_time=self.runtime.clock.now)
        report = self.runtime.run([pinned])
        self.served_jobs.append(pinned)
        self._served_ids.add(pinned.job_id)
        return report.jobs[0]

    def report(self) -> FleetReport:
        """Aggregate report over every job served so far."""
        if not self.served_jobs:
            raise UserInputError(
                "the session has served no jobs yet; nothing to report"
            )
        return self.runtime.report_for(self.served_jobs)

    def digest(self) -> str:
        return self.report().digest()

    def replay(
        self, payloads, results_out: Optional[dict] = None
    ) -> "KernelSession":
        """Serve ``payloads`` (ordered job dicts) through this session.

        The resume/replay workhorse: feeding the recorded acceptance
        sequence through a fresh session reproduces the original
        session state event-for-event.  When ``results_out`` is given,
        each recomputed terminal result is stored under its job id.
        """
        for payload in payloads:
            result = self.execute(Job.from_dict(payload))
            if results_out is not None:
                results_out[result.job_id] = result
        return self
