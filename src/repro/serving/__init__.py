"""Wall-clock serving facade over the deterministic fleet kernel.

``repro.serving`` is where real time enters the system — and where it
is stopped.  The :class:`~repro.serving.gateway.ServingGateway` takes
concurrent wall-clock traffic (API keys, quotas, deadlines, SIGTERM)
and reduces it to the one thing the kernel sees: an ordered acceptance
sequence, executed micro-batch-by-micro-batch on a persistent
virtual-clock :class:`~repro.serving.session.KernelSession`.  Live
serving, crash recovery (``repro serve --resume``) and traffic replay
(``repro traffic replay``) all feed that same class the same sequence,
so their :class:`~repro.fleet.report.FleetReport` digests agree
bit-for-bit by construction.

Durability is dual: every acknowledged job is committed to the
SQLite-WAL :class:`~repro.serving.jobstore.SqliteJobStore` *and* the
``regraph-traffic/v1`` bundle before the ack leaves the process, and
recovery merges the two — an acked job survives as long as either file
does.  See ``docs/SERVING.md``.
"""

from repro.serving.config import (
    DEFAULT_TENANTS,
    ServingConfig,
    TenantRegistry,
    TenantSpec,
)
from repro.serving.gateway import ServingGateway, default_gateway
from repro.serving.http import HttpServer
from repro.serving.jobstore import JOBSTORE_SCHEMA, SqliteJobStore
from repro.serving.session import KernelSession, build_pool
from repro.serving.signals import (
    EXIT_RESUMABLE,
    graceful_interrupts,
    install_async_drain,
)
from repro.serving.traffic import (
    TRAFFIC_SCHEMA,
    TrafficBundle,
    TrafficRecorder,
    read_traffic,
    replay_traffic,
)

__all__ = [
    "DEFAULT_TENANTS",
    "EXIT_RESUMABLE",
    "HttpServer",
    "JOBSTORE_SCHEMA",
    "KernelSession",
    "ServingConfig",
    "ServingGateway",
    "SqliteJobStore",
    "TRAFFIC_SCHEMA",
    "TenantRegistry",
    "TenantSpec",
    "TrafficBundle",
    "TrafficRecorder",
    "build_pool",
    "default_gateway",
    "graceful_interrupts",
    "install_async_drain",
    "read_traffic",
    "replay_traffic",
]
