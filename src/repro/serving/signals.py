"""Graceful SIGINT/SIGTERM handling with a typed, resumable exit.

Two flavours for the two worlds:

* :func:`graceful_interrupts` — a context manager for the synchronous
  CLI paths (``repro fleet run``, ``repro chaos run``): the handler
  raises :class:`~repro.errors.RunInterrupted` at the interrupted
  bytecode boundary, the command's ``finally`` blocks flush the journal
  and store, and :func:`repro.cli.main` turns it into the documented
  *resumable* exit code 3 — never a traceback, never a mid-record tear
  beyond what the WAL already tolerates.
* :func:`install_async_drain` — for the asyncio gateway: signals must
  not raise into the event loop mid-callback, so the first signal
  schedules the drain callback (finish in-flight work, flush, exit 0
  or 3) and a second signal of the same kind falls through to the
  default handler (a stuck drain can still be killed).

Both are no-ops off the main thread (CPython only delivers signals
there), so library code stays importable from worker threads.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Callable, Iterable, Optional

from repro.errors import RunInterrupted

#: Signals the graceful paths care about.
GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)

#: Exit code of an interrupted-but-resumable run (docs/TESTING.md).
EXIT_RESUMABLE = 3


def _is_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


@contextlib.contextmanager
def graceful_interrupts(
    signals: Iterable[signal.Signals] = GRACEFUL_SIGNALS,
):
    """Raise :class:`RunInterrupted` (not ``KeyboardInterrupt``) on
    SIGINT/SIGTERM for the duration of the block.

    The previous handlers are restored on exit, even when the block
    leaves via the interrupt itself.  Off the main thread this is a
    transparent no-op.
    """
    if not _is_main_thread():
        yield
        return

    def _handler(signum, frame):
        name = signal.Signals(signum).name
        raise RunInterrupted(
            f"interrupted by {name}; durable state is flushed and the "
            "run is resumable",
            signal_name=name,
        )

    previous = {}
    for sig in signals:
        previous[sig] = signal.signal(sig, _handler)
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def install_async_drain(
    loop,
    callback: Callable[[str], None],
    signals: Iterable[signal.Signals] = GRACEFUL_SIGNALS,
) -> Callable[[], None]:
    """Route the first SIGINT/SIGTERM on ``loop`` into ``callback``.

    ``callback(signal_name)`` runs inside the event loop (schedule the
    drain there); the handler then uninstalls itself so a *second*
    signal gets the default behaviour — an operator can always
    ctrl-C twice.  Returns an uninstall function for clean shutdown.
    """
    installed = set()

    def _uninstall() -> None:
        for sig in tuple(installed):
            with contextlib.suppress(ValueError, RuntimeError, OSError):
                loop.remove_signal_handler(sig)
            installed.discard(sig)

    def _on_signal(sig: signal.Signals) -> None:
        _uninstall()
        callback(signal.Signals(sig).name)

    for sig in signals:
        try:
            loop.add_signal_handler(sig, _on_signal, sig)
        except (NotImplementedError, RuntimeError):
            continue  # non-unix / non-main-thread loop: rely on default
        installed.add(sig)
    return _uninstall
