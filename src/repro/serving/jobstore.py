"""Durable SQLite job/result store for the serving facade.

The wall-clock twin of the fleet's JSONL durability pair
(``fleet/journal.py`` + ``fleet/store.py``): one SQLite database in
WAL mode holding

* ``meta``     — schema version (``regraph-jobstore/v1``) and the
  canonical session spec (pool recipe + policy), written atomically
  with table creation so a half-initialised store can never be
  mistaken for a valid one;
* ``jobs``     — every *acknowledged* submission, in acceptance order
  (``seq``), exactly the write-ahead role of the journal's ``admit``
  records: an accepted job is durable before the client sees the ack;
* ``results``  — terminal :class:`~repro.fleet.job.JobResult`\\ s keyed
  by job id with the same **idempotency semantics** as
  :class:`~repro.fleet.store.ResultStore`: first write wins, every
  later ``put_result`` for the same key is suppressed and counted —
  which is what keeps the client-visible result stream exactly-once
  across crash/resume replays.

WAL mode + ``synchronous=FULL`` (the default; ``fsync=False`` trades
the crash guarantee for benchmark throughput) means each committed
transaction is on the platter before the commit returns, and SQLite's
per-frame WAL checksums give torn-tail containment for free: a
truncated or bit-flipped WAL tail rolls the database back to the last
intact commit instead of refusing to open.  Records lost that way are
re-derived by deterministic replay (and, for acknowledged jobs, merged
back from the traffic bundle — each file covers for the other).
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import UserInputError
from repro.fleet.job import JobResult

#: Store schema identifier; bump on incompatible layout changes.
JOBSTORE_SCHEMA = "regraph-jobstore/v1"

_TABLES = (
    """CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)""",
    """CREATE TABLE IF NOT EXISTS jobs (
    seq           INTEGER PRIMARY KEY,
    job_id        TEXT NOT NULL UNIQUE,
    tenant        TEXT NOT NULL,
    payload       TEXT NOT NULL,
    accepted_wall REAL NOT NULL DEFAULT 0.0
)""",
    """CREATE TABLE IF NOT EXISTS results (
    job_id  TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    seq     INTEGER NOT NULL
)""",
)


class SqliteJobStore:
    """Crash-safe acknowledged-job + exactly-once result persistence."""

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: ``put_result`` calls suppressed by the idempotency key.
        self.duplicates_suppressed = 0
        try:
            self._db = sqlite3.connect(self.path, isolation_level=None)
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute(
                f"PRAGMA synchronous={'FULL' if self.fsync else 'NORMAL'}"
            )
            self._init_schema()
        except sqlite3.DatabaseError as exc:
            raise UserInputError(
                f"job store {self.path} is not a usable SQLite database "
                f"({exc}); move it aside or pick another --store path"
            ) from exc

    def _init_schema(self) -> None:
        """Create-or-validate, atomically with the schema stamp."""
        row = None
        try:
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
        except sqlite3.OperationalError:
            pass  # fresh database: meta doesn't exist yet
        if row is not None:
            if row[0] != JOBSTORE_SCHEMA:
                raise UserInputError(
                    f"job store {self.path} has schema {row[0]!r}; this "
                    f"build reads {JOBSTORE_SCHEMA!r} (migrate or start a "
                    "fresh store)"
                )
            return
        # Tables and the schema stamp land in one transaction: a crash
        # mid-initialisation leaves either nothing or a valid v1 store.
        # (Not executescript — that implicitly commits first.)
        self._db.execute("BEGIN IMMEDIATE")
        try:
            for ddl in _TABLES:
                self._db.execute(ddl)
            self._db.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES ('schema', ?)",
                (JOBSTORE_SCHEMA,),
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    # -- session metadata ------------------------------------------------
    def session_spec(self) -> Optional[dict]:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key='session'"
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def set_session_spec(self, spec: dict) -> None:
        """Stamp (or cross-check) the kernel session recipe.

        A resumed store must be served with the pool/policy it was
        created for — anything else silently changes the virtual-clock
        schedule and breaks digest equivalence, so it is a typed error.
        """
        existing = self.session_spec()
        if existing is not None:
            if existing != spec:
                raise UserInputError(
                    f"job store {self.path} was created for a different "
                    "session (pool/policy mismatch); resume with the "
                    "original configuration or start a fresh store"
                )
            return
        self._db.execute(
            "INSERT INTO meta(key, value) VALUES ('session', ?)",
            (json.dumps(spec, sort_keys=True),),
        )

    # -- acknowledged jobs ----------------------------------------------
    def append_job(
        self,
        tenant: str,
        job_payload: dict,
        accepted_wall: float = 0.0,
        seq: Optional[int] = None,
    ) -> int:
        """Durably record an accepted job; returns its sequence number.

        Must be called *before* the ack leaves the gateway — this row
        is what makes the acknowledgement mean something.  ``seq`` pins
        an explicit sequence number (recovery restoring an accept from
        the traffic bundle keeps the original numbering); new accepts
        leave it ``None`` and SQLite continues from the current max.
        """
        job_id = str(job_payload["job_id"])
        try:
            cur = self._db.execute(
                "INSERT INTO jobs(seq, job_id, tenant, payload, "
                "accepted_wall) VALUES (?, ?, ?, ?, ?)",
                (
                    seq,
                    job_id,
                    tenant,
                    json.dumps(job_payload, sort_keys=True),
                    accepted_wall,
                ),
            )
        except sqlite3.IntegrityError as exc:
            raise UserInputError(
                f"job {job_id!r} is already accepted in this store"
            ) from exc
        return int(cur.lastrowid)

    def has_job(self, job_id: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        return row is not None

    def job_seq(self, job_id: str) -> Optional[int]:
        row = self._db.execute(
            "SELECT seq FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        return int(row[0]) if row is not None else None

    def jobs_in_order(self) -> List[Tuple[int, str, dict]]:
        """Every acknowledged job as ``(seq, tenant, payload)``, in
        acceptance order — the replay input."""
        rows = self._db.execute(
            "SELECT seq, tenant, payload FROM jobs ORDER BY seq"
        ).fetchall()
        return [(int(s), str(t), json.loads(p)) for s, t, p in rows]

    def job_count(self) -> int:
        return int(
            self._db.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
        )

    # -- exactly-once results -------------------------------------------
    def put_result(self, result: JobResult) -> bool:
        """Persist ``result`` under its idempotency key (the job id).

        First write wins; a later call for the same key is suppressed
        and counted, exactly like
        :meth:`repro.fleet.store.ResultStore.put`.
        """
        seq = self.job_seq(result.job_id)
        try:
            self._db.execute(
                "INSERT INTO results(job_id, payload, seq) VALUES (?, ?, ?)",
                (
                    result.job_id,
                    json.dumps(result.to_dict(), sort_keys=True),
                    seq if seq is not None else -1,
                ),
            )
        except sqlite3.IntegrityError:
            self.duplicates_suppressed += 1
            return False
        return True

    def get_result(self, job_id: str) -> Optional[JobResult]:
        row = self._db.execute(
            "SELECT payload FROM results WHERE job_id=?", (job_id,)
        ).fetchone()
        if row is None:
            return None
        return JobResult.from_dict(json.loads(row[0]))

    def results(self) -> Dict[str, JobResult]:
        rows = self._db.execute(
            "SELECT job_id, payload FROM results"
        ).fetchall()
        return {
            str(j): JobResult.from_dict(json.loads(p)) for j, p in rows
        }

    def result_count(self) -> int:
        return int(
            self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )

    def __len__(self) -> int:
        return self.result_count()

    def outstanding(self) -> List[str]:
        """Acknowledged jobs with no durable result yet (resume debt)."""
        rows = self._db.execute(
            "SELECT j.job_id FROM jobs j "
            "LEFT JOIN results r ON r.job_id = j.job_id "
            "WHERE r.job_id IS NULL ORDER BY j.seq"
        ).fetchall()
        return [str(r[0]) for r in rows]

    def stats(self) -> dict:
        return {
            "jobs": self.job_count(),
            "results": self.result_count(),
            "outstanding": len(self.outstanding()),
            "duplicates_suppressed": self.duplicates_suppressed,
        }

    # -- lifecycle -------------------------------------------------------
    def checkpoint(self) -> None:
        """Fold the WAL into the main file (graceful-drain flush)."""
        self._db.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        try:
            self._db.close()
        except sqlite3.ProgrammingError:
            pass  # already closed

    def __enter__(self) -> "SqliteJobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
