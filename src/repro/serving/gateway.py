"""The wall-clock serving gateway: asyncio facade over the kernel.

:class:`ServingGateway` is the seam between two worlds.  On the
outside: wall-clock time, concurrent clients, API keys, quotas and
SIGTERM.  On the inside: the deterministic virtual-clock
:class:`~repro.serving.session.KernelSession`, which executes accepted
jobs strictly in acceptance order.  Everything nondeterministic stops
at this class — which is why every robustness property of the facade
is assertable in ordinary tier-1 tests through the gateway's async
methods directly (the "in-process transport"), no sockets required;
:mod:`repro.serving.http` is a thin byte-shoveling adapter on top.

The request path, in order, for one submission:

1. **drain gate** — a draining gateway turns new work away with a typed
   :class:`~repro.errors.ServingDrainingError` (503);
2. **authentication** — the API key must name a tenant
   (:class:`~repro.errors.TenantAuthError`, 401);
3. **idempotent resubmission** — a job id already acknowledged returns
   its original ack (or its durable result), never a second execution;
4. **admission** — per-tenant pending cap, per-tenant token bucket,
   then the gateway-wide bucket, all peek-then-take
   (:class:`~repro.errors.TenantQuotaExceededError` /
   :class:`~repro.errors.FleetOverloadError`, 429);
5. **durability before acknowledgement** — the accept is committed to
   the SQLite store *and* the traffic bundle before the caller sees
   the ack.  An acknowledged job survives ``kill -9`` by construction.

A single worker task drains the accept queue through the kernel (in a
thread, so the event loop stays live for status/stream requests) and
persists each terminal result exactly-once.

**Recovery** (``resume=True``): the acceptance sequence is re-read from
the store *merged with* the traffic bundle — each file covers holes in
the other — missing accepts are restored to the store under their
original sequence numbers, and the whole sequence is replayed through a
fresh kernel session from t=0.  Durable results suppress the recomputed
duplicates (first-write-wins) and every recomputation is cross-checked
against the durable copy (``replay_divergences`` must stay 0), so the
post-recovery report digest is bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import asyncio
import time
from typing import AsyncIterator, Callable, Dict, List, Optional

from repro.errors import (
    FleetOverloadError,
    ServingDrainingError,
    TenantQuotaExceededError,
    UserInputError,
)
from repro.fleet.admission import AdmissionController
from repro.fleet.job import Job, JobResult
from repro.serving.config import ServingConfig, TenantSpec
from repro.serving.jobstore import SqliteJobStore
from repro.serving.session import KernelSession
from repro.serving.traffic import TrafficRecorder, read_traffic


class _Pending:
    """One accepted-but-unfinished job inside the gateway."""

    __slots__ = ("job", "tenant", "seq", "done")

    def __init__(self, job: Job, tenant: str, seq: int):
        self.job = job
        self.tenant = tenant
        self.seq = seq
        self.done = asyncio.Event()


class ServingGateway:
    """Asyncio front door of one serving session."""

    def __init__(
        self,
        config: ServingConfig,
        resume: bool = False,
        wall: Callable[[], float] = time.monotonic,
    ):
        self.config = config
        self.registry = config.registry()
        self.wall = wall
        self.spec = config.session_spec()
        self.draining = False
        #: Recovery accounting (mirrors FleetRuntime.recovery_stats).
        self.recovery_stats: Dict[str, int] = {
            "accepts_restored": 0,
            "accepts_merged_from_traffic": 0,
            "results_restored": 0,
            "duplicates_suppressed": 0,
            "replay_divergences": 0,
        }

        self.store = SqliteJobStore(
            config.store_path if config.store_path else ":memory:",
            fsync=config.fsync,
        )
        self.store.set_session_spec(self.spec)
        self.recovery_stats["results_restored"] = self.store.result_count()

        self.session = KernelSession(self.spec)
        if resume:
            self._recover()

        # The recorder opens *after* recovery read the old bundle, so
        # the resume marker lands behind the records it recovered from.
        self.recorder = (
            TrafficRecorder(
                config.traffic_path, self.spec, fsync=config.fsync
            )
            if config.traffic_path
            else None
        )

        self.admission = AdmissionController(
            max_queue_depth=config.max_pending,
            rate_limit_jobs_per_second=config.rate_jobs_per_second,
            rate_limit_burst=config.rate_burst,
        )
        for tenant in self.registry:
            self.admission.register_tenant(
                tenant.name, tenant.rate_jobs_per_second, tenant.rate_burst
            )

        self._pending: Dict[str, _Pending] = {}
        self._queue: "asyncio.Queue[Optional[_Pending]]" = asyncio.Queue()
        self._worker: Optional[asyncio.Task] = None
        self._worker_error: Optional[BaseException] = None

    # -- recovery ---------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the kernel session by replaying the merged accepts."""
        merged: Dict[int, tuple] = {
            seq: (tenant, payload)
            for seq, tenant, payload in self.store.jobs_in_order()
        }
        if self.config.traffic_path:
            try:
                bundle = read_traffic(self.config.traffic_path)
            except UserInputError:
                bundle = None  # never recorded: the store is the WAL
            if bundle is not None:
                for seq, tenant, payload in bundle.accepts:
                    if seq in merged:
                        continue
                    # The store lost this accept (crash or storage
                    # fault); the bundle copy restores it under its
                    # original sequence number.
                    merged[seq] = (tenant, payload)
                    self.store.append_job(tenant, payload, seq=seq)
                    self.recovery_stats["accepts_merged_from_traffic"] += 1
        self.recovery_stats["accepts_restored"] = len(merged)
        before = self.store.duplicates_suppressed
        for seq in sorted(merged):
            _, payload = merged[seq]
            result = self.session.execute(Job.from_dict(payload))
            if self.store.put_result(result):
                continue
            durable = self.store.get_result(result.job_id)
            if (
                durable is not None
                and durable.to_dict() != result.to_dict()
            ):
                self.recovery_stats["replay_divergences"] += 1
        self.recovery_stats["duplicates_suppressed"] = (
            self.store.duplicates_suppressed - before
        )

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        """Start the kernel worker (idempotent)."""
        if self._worker is None or self._worker.done():
            self._worker = asyncio.create_task(
                self._work(), name="serving-kernel-worker"
            )

    async def _work(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            pending = await self._queue.get()
            if pending is None:
                return
            try:
                # The kernel runs in a thread so the loop keeps
                # answering status/stream requests mid-execution; one
                # worker means acceptance order is execution order.
                result: JobResult = await loop.run_in_executor(
                    None, self.session.execute, pending.job
                )
                self.store.put_result(result)
                if self.recorder is not None:
                    self.recorder.record_result(result, self.wall())
            except BaseException as exc:  # surfaced by submit/drain
                self._worker_error = exc
                pending.done.set()
                raise
            self._pending.pop(pending.job.job_id, None)
            pending.done.set()

    def _check_worker(self) -> None:
        if self._worker_error is not None:
            raise self._worker_error

    # -- the request path -------------------------------------------------
    def _tenant_pending(self, tenant: str) -> int:
        return sum(1 for p in self._pending.values() if p.tenant == tenant)

    async def submit(self, api_key: Optional[str], payload: dict) -> dict:
        """Authenticate, admit and durably acknowledge one job.

        Returns the acknowledgement dict; raises typed errors the
        transport maps onto status codes (401 auth, 429 quota/overload,
        503 draining, 400 bad payload).
        """
        self._check_worker()
        tenant = self.registry.authenticate(api_key)
        if self.draining:
            raise ServingDrainingError(
                "gateway is draining; new submissions are not accepted"
            )
        try:
            job = Job.from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, UserInputError):
                raise
            raise UserInputError(f"bad job payload: {exc!r}") from exc

        # Idempotent resubmission: an acknowledged id never runs twice.
        if self.store.has_job(job.job_id):
            ack = {
                "job_id": job.job_id,
                "status": "accepted",
                "seq": self.store.job_seq(job.job_id),
                "tenant": tenant.name,
                "duplicate": True,
            }
            result = self.store.get_result(job.job_id)
            if result is not None:
                ack["result"] = result.to_dict()
                ack["status"] = result.status
            return ack

        now = self.wall()
        try:
            if self._tenant_pending(tenant.name) >= tenant.max_pending:
                self.admission.stats.submitted += 1
                self.admission.stats.shed_tenant_quota += 1
                raise TenantQuotaExceededError(
                    f"job {job.job_id} shed: tenant {tenant.name!r} has "
                    f"{tenant.max_pending} job(s) pending (its cap)",
                    tenant=tenant.name,
                    reason="tenant-pending",
                )
            self.admission.admit(
                job, len(self._pending), now, tenant=tenant.name
            )
        except FleetOverloadError as exc:
            if self.recorder is not None:
                self.recorder.record_reject(
                    tenant.name, job.job_id,
                    exc.__class__.__name__, str(exc), now,
                )
            raise

        # Durability before acknowledgement: store first (the ack's
        # ground truth), then the traffic bundle (the second WAL).
        canonical = job.to_dict()
        seq = self.store.append_job(tenant.name, canonical, now)
        if self.recorder is not None:
            self.recorder.record_accept(seq, tenant.name, canonical, now)

        pending = _Pending(job, tenant.name, seq)
        self._pending[job.job_id] = pending
        await self.start()
        await self._queue.put(pending)
        return {
            "job_id": job.job_id,
            "status": "accepted",
            "seq": seq,
            "tenant": tenant.name,
            "duplicate": False,
        }

    def status(self, job_id: str) -> dict:
        """Current view of one acknowledged job."""
        self._check_worker()
        result = self.store.get_result(job_id)
        if result is not None:
            return {
                "job_id": job_id,
                "status": result.status,
                "result": result.to_dict(),
            }
        if job_id in self._pending or self.store.has_job(job_id):
            return {"job_id": job_id, "status": "pending"}
        raise UserInputError(f"unknown job {job_id!r}")

    async def stream(self, job_id: str) -> AsyncIterator[dict]:
        """Yield status updates until the job is terminal."""
        first = self.status(job_id)
        yield first
        if first["status"] != "pending":
            return
        pending = self._pending.get(job_id)
        if pending is not None:
            await pending.done.wait()
        self._check_worker()
        yield self.status(job_id)

    # -- observability ----------------------------------------------------
    def health(self) -> dict:
        from repro.perf.simcache import get_cache

        cache = get_cache().stats()
        health = {
            "status": "draining" if self.draining else "serving",
            "pending": len(self._pending),
            "served": len(self.session.served_jobs),
            "store": self.store.stats(),
            "admission": self.admission.stats.to_dict(),
            "recovery": dict(self.recovery_stats),
            "tenants": [t.name for t in self.registry],
            # Two-tier sim-cache telemetry (docs/PERFORMANCE.md): tier-1
            # hit/miss plus, when a shared store is attached, tier-2
            # hit/miss and quarantine counts.
            "cache": {
                k: cache[k]
                for k in ("hits", "misses", "tier2_hits", "tier2_misses")
            },
        }
        shared = cache.get("shared")
        if shared:
            health["cache"]["shared"] = {
                k: shared[k]
                for k in ("entries", "writes", "quarantined", "stale")
            }
        scaler = getattr(self.session.runtime, "autoscaler", None)
        if scaler is not None:
            stats = scaler.stats()
            health["autoscaler"] = {
                k: stats[k]
                for k in ("spawned", "retired", "warmed_entries",
                          "p99_latency_seconds", "decisions")
            }
        return health

    def report(self) -> dict:
        """The session's aggregate FleetReport + its digest."""
        if not self.session.served_jobs:
            return {"digest": "", "jobs": 0}
        report = self.session.report()
        return {
            "digest": report.digest(),
            "jobs": len(report.jobs),
            "passed": report.passed,
            "makespan_seconds": report.makespan_seconds,
        }

    def outstanding(self) -> List[str]:
        return self.store.outstanding()

    # -- drain and shutdown -----------------------------------------------
    async def drain(self, budget_seconds: Optional[float] = None) -> dict:
        """Stop accepting, finish (or journal) in-flight work, flush.

        Within the budget every pending job reaches a durable terminal
        result and the gateway exits clean (``drained=True``).  Past
        the budget nothing is lost — every pending job is already
        acknowledged in the store, so a later ``--resume`` serves it —
        but the caller should exit with the *resumable* code 3.
        """
        self.draining = True
        budget = (
            budget_seconds
            if budget_seconds is not None
            else self.config.drain_budget_seconds
        )
        drained = True
        if self._worker is not None and not self._worker.done():
            await self._queue.put(None)  # after every queued job
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._worker), timeout=budget
                )
            except asyncio.TimeoutError:
                drained = False
            except BaseException:
                drained = False
        self._check_worker()
        outstanding = self.store.outstanding()
        summary = {
            "drained": drained and not outstanding,
            "outstanding": outstanding,
            "served": len(self.session.served_jobs),
        }
        if self.session.served_jobs:
            summary["digest"] = self.session.digest()
        else:
            summary["digest"] = ""
        self.flush(summary["digest"])
        return summary

    def flush(self, digest: str = "") -> None:
        """Fold the store's WAL and close out the traffic bundle."""
        self.store.checkpoint()
        if self.recorder is not None:
            self.recorder.record_end(digest, {
                "accepts": self.store.job_count(),
                "results": self.store.result_count(),
                "outstanding": len(self.store.outstanding()),
            })
            self.recorder.close()
            self.recorder = None

    def close(self) -> None:
        if self._worker is not None:
            self._worker.cancel()
            self._worker = None
        if self.recorder is not None:
            self.recorder.close()
            self.recorder = None
        self.store.close()

    def abandon(self) -> None:
        """Die like a SIGKILL: no drain, no flush, no checkpoint.

        Chaos-cell hook — whatever the store and bundle already made
        durable is exactly what recovery gets to see.
        """
        if self._worker is not None:
            self._worker.cancel()
            self._worker = None
        self._pending.clear()


def default_gateway(**overrides) -> ServingGateway:
    """A gateway over the default config (tests and the CLI smoke)."""
    return ServingGateway(ServingConfig(**overrides))
