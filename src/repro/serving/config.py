"""Serving-facade configuration: tenants, API keys, gateway knobs.

A :class:`TenantSpec` is one paying customer of the gateway: an API
key, an optional per-tenant admission rate (token bucket, enforced by
:class:`~repro.fleet.admission.AdmissionController`), and a bound on
how many of the tenant's jobs may sit unfinished at once.  The
:class:`TenantRegistry` maps keys to tenants — authentication failures
and quota rejections are *typed*
(:class:`~repro.errors.TenantAuthError`,
:class:`~repro.errors.TenantQuotaExceededError`), mirroring the fleet's
no-silent-drops posture at the HTTP boundary (401/429, never a hang).

:class:`ServingConfig` pins everything else one gateway needs: the
replica pool recipe (devices, buffer size, pipeline count — the same
recipe the fleet journal stores in ``run-begin``), the fleet policy,
the drain budget, and where the durable job store and traffic bundle
live.  ``session_spec()`` is the canonical dict of the *kernel-visible*
subset: it is persisted in the SQLite store and the traffic header, and
resume/replay rebuild the virtual-clock session from it — which is why
a recovered or replayed run can reproduce the live run's
:class:`~repro.fleet.report.FleetReport` digest bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import TenantAuthError, UserInputError
from repro.fleet.runtime import FleetPolicy


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving gateway."""

    name: str
    api_key: str
    #: Per-tenant admission rate (jobs per wall-clock second);
    #: ``None`` = unmetered.
    rate_jobs_per_second: Optional[float] = None
    rate_burst: int = 8
    #: Jobs the tenant may have accepted-but-unfinished at once.
    max_pending: int = 64

    def __post_init__(self):
        if not self.name:
            raise UserInputError("tenant name must be non-empty")
        if not self.api_key:
            raise UserInputError(
                f"tenant {self.name!r} needs a non-empty API key"
            )
        if self.rate_jobs_per_second is not None and (
            not math.isfinite(self.rate_jobs_per_second)
            or self.rate_jobs_per_second <= 0
        ):
            raise UserInputError(
                f"tenant {self.name!r}: rate must be positive and finite, "
                f"got {self.rate_jobs_per_second}"
            )
        if self.rate_burst < 1:
            raise UserInputError(
                f"tenant {self.name!r}: burst must be >= 1, "
                f"got {self.rate_burst}"
            )
        if self.max_pending < 1:
            raise UserInputError(
                f"tenant {self.name!r}: max_pending must be >= 1, "
                f"got {self.max_pending}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "api_key": self.api_key,
            "rate_jobs_per_second": self.rate_jobs_per_second,
            "rate_burst": self.rate_burst,
            "max_pending": self.max_pending,
        }

    @staticmethod
    def from_dict(data: dict) -> "TenantSpec":
        rate = data.get("rate_jobs_per_second")
        return TenantSpec(
            name=str(data["name"]),
            api_key=str(data["api_key"]),
            rate_jobs_per_second=None if rate is None else float(rate),
            rate_burst=int(data.get("rate_burst", 8)),
            max_pending=int(data.get("max_pending", 64)),
        )

    @staticmethod
    def parse(spec: str) -> "TenantSpec":
        """``NAME:KEY[:RATE[:BURST]]`` (the ``--tenant`` CLI syntax)."""
        parts = spec.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise UserInputError(
                f"bad --tenant spec {spec!r} "
                "(expected NAME:KEY[:RATE[:BURST]], e.g. acme:s3cret:50:8)"
            )
        try:
            rate = float(parts[2]) if len(parts) >= 3 and parts[2] else None
            burst = int(parts[3]) if len(parts) == 4 else 8
        except ValueError as exc:
            raise UserInputError(
                f"bad --tenant spec {spec!r}: {exc}"
            ) from exc
        return TenantSpec(
            name=parts[0],
            api_key=parts[1],
            rate_jobs_per_second=rate,
            rate_burst=burst,
        )


class TenantRegistry:
    """API-key -> tenant lookup with typed auth failures."""

    def __init__(self, tenants: Tuple[TenantSpec, ...]):
        if not tenants:
            raise UserInputError("the gateway needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise UserInputError(f"duplicate tenant names: {sorted(names)}")
        keys = [t.api_key for t in tenants]
        if len(set(keys)) != len(keys):
            raise UserInputError(
                "two tenants share an API key; keys must be unique"
            )
        self.tenants: Tuple[TenantSpec, ...] = tuple(tenants)
        self._by_key: Dict[str, TenantSpec] = {
            t.api_key: t for t in tenants
        }
        self._by_name: Dict[str, TenantSpec] = {t.name: t for t in tenants}

    def authenticate(self, api_key: Optional[str]) -> TenantSpec:
        """The tenant owning ``api_key``, or a typed 401."""
        if not api_key:
            raise TenantAuthError(
                "missing API key (send 'Authorization: Bearer <key>' "
                "or 'X-Api-Key: <key>')"
            )
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise TenantAuthError("unknown API key")
        return tenant

    def get(self, name: str) -> Optional[TenantSpec]:
        return self._by_name.get(name)

    def __iter__(self):
        return iter(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)


#: The out-of-the-box tenant (`repro serve` without --tenant).
DEFAULT_TENANTS = (TenantSpec(name="demo", api_key="demo-key"),)


@dataclass(frozen=True)
class ServingConfig:
    """Everything one gateway instance needs."""

    #: Replica pool recipe: device per pool slot.
    devices: Tuple[str, ...] = ("U280", "U50")
    buffer_vertices: int = 256
    num_pipelines: int = 4
    policy: FleetPolicy = field(default_factory=FleetPolicy)
    tenants: Tuple[TenantSpec, ...] = DEFAULT_TENANTS
    #: Gateway-wide admission rate (jobs per wall second); ``None`` =
    #: unlimited (tenants may still be metered individually).
    rate_jobs_per_second: Optional[float] = None
    rate_burst: int = 16
    #: Jobs allowed to wait across all tenants.
    max_pending: int = 256
    #: Wall-clock seconds a graceful drain may take before the gateway
    #: journals the rest and reports itself resumable (exit code 3).
    drain_budget_seconds: float = 30.0
    #: Durable SQLite job/result store; ``None`` = in-memory (tests).
    store_path: Optional[str] = None
    #: ``regraph-traffic/v1`` bundle to record; ``None`` = no recording.
    traffic_path: Optional[str] = None
    fsync: bool = True

    def __post_init__(self):
        if not self.devices:
            raise UserInputError("serving needs at least one replica")
        if self.max_pending < 1:
            raise UserInputError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if (
            not math.isfinite(self.drain_budget_seconds)
            or self.drain_budget_seconds <= 0
        ):
            raise UserInputError(
                "drain_budget_seconds must be positive and finite, got "
                f"{self.drain_budget_seconds}"
            )
        TenantRegistry(self.tenants)  # validates names/keys

    def registry(self) -> TenantRegistry:
        return TenantRegistry(self.tenants)

    def session_spec(self) -> dict:
        """The kernel-visible subset that determines the virtual-clock
        session — persisted in the store and the traffic header, and
        the whole input of resume/replay."""
        return {
            "devices": list(self.devices),
            "buffer_vertices": self.buffer_vertices,
            "num_pipelines": self.num_pipelines,
            "policy": self.policy.to_dict(),
        }
