"""Declared tolerance bands of the conformance subsystem.

Every cross-check in :mod:`repro.check` compares two *independent*
descriptions of the same machine — cycle-level simulators, the Eq. 1-4
analytic model, pure-Python reference algorithms — and independence only
buys confidence if the allowed disagreement is declared up front rather
than tuned after the fact.  This module is that declaration: one frozen
dataclass, used by the oracles, the invariant checker and the ``repro
check`` CLI alike, so a drifting model or simulator fails loudly instead
of silently widening an inline constant.

Band provenance:

* **Model vs simulator** — Fig. 9 reports the analytic model within
  ~10% of hardware on average with larger per-partition excursions; the
  per-task band is looser than the makespan band because single tasks
  are dominated by the measured constants while makespans average them
  out.
* **Algorithm results** — BFS levels, SSSP distances and WCC labels are
  integer-exact by construction; PageRank agrees up to Q1.30
  fixed-point resolution accumulated over the run (the same bound the
  functional equivalence tests use).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ToleranceBands:
    """Allowed disagreement between the three machine descriptions."""

    #: Relative cycle error allowed per task: |sim - est| / sim.
    model_task_rel: float = 0.45
    #: Relative error allowed on the whole-iteration makespan.
    model_makespan_rel: float = 0.25
    #: Relative bandwidth overshoot tolerated before a task is declared
    #: faster than its HBM channel (numerical slack only).
    bandwidth_rel: float = 1e-9
    #: Absolute slack (cycles) when comparing event boundaries.
    cycle_eps: float = 1e-6
    #: Extra absolute tolerance on PageRank ranks beyond the accumulated
    #: fixed-point resolution bound.
    pagerank_extra_atol: float = 1e-6
    #: Practical LUT ceiling (Table I footnote: < 80% places/routes).
    max_lut_util: float = 0.8

    def pagerank_atol(self, max_out_degree: float, iterations: int) -> float:
        """Accumulated Q1.30 fixed-point error bound for a PageRank run.

        Each iteration's divide-by-degree and gather chain loses at most
        one resolution step per contributing edge of the heaviest vertex.
        """
        return (
            max(float(max_out_degree), 1.0) / 2**30 * (iterations + 1)
            + self.pagerank_extra_atol
        )


#: The bands every built-in check uses unless a caller overrides them.
DEFAULT_BANDS = ToleranceBands()
