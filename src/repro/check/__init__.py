"""Conformance subsystem: differential oracles + trace invariants.

Cross-checks the three independent descriptions of the machine — the
cycle-level simulators, the Eq. 1-4 analytic model, and the pure-Python
reference algorithms — and audits execution traces against the physical
invariants of the modelled hardware.  Exposed to users as the ``repro
check`` CLI subcommand and to tests via
:mod:`repro.check.pytest_helpers`.
"""

from repro.check.invariants import (
    Violation,
    assert_trace_invariants,
    check_channel_bandwidth,
    check_coverage,
    check_monotone_cycles,
    check_no_overlap,
    check_resource_feasibility,
    check_trace,
)
from repro.check.oracles import (
    ORACLE_APPS,
    OracleResult,
    functional_oracle,
    model_oracle,
)
from repro.check.pytest_helpers import ConformanceChecker
from repro.check.runner import (
    ConformanceReport,
    run_conformance,
    seed_graphs,
    with_random_weights,
)
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands

__all__ = [
    "ConformanceChecker",
    "ConformanceReport",
    "DEFAULT_BANDS",
    "ORACLE_APPS",
    "OracleResult",
    "ToleranceBands",
    "Violation",
    "assert_trace_invariants",
    "check_channel_bandwidth",
    "check_coverage",
    "check_monotone_cycles",
    "check_no_overlap",
    "check_resource_feasibility",
    "check_trace",
    "functional_oracle",
    "model_oracle",
    "run_conformance",
    "seed_graphs",
    "with_random_weights",
]
