"""Conformance runner: the engine behind ``repro check``.

Assembles a seed suite of graphs spanning the skew classes the paper
evaluates (RMAT, power-law, uniform), then for each graph on the chosen
device:

1. preprocesses it through the real framework (DBG + partition +
   model-guided schedule) and validates the plan structurally;
2. runs the **model oracle** (simulators vs Eq. 1-4 estimates) and the
   **trace invariant checker** on one traced iteration;
3. runs the **functional oracle** for every requested app against the
   pure-Python references.

The result is one :class:`ConformanceReport` suitable both for the CLI
table and for programmatic assertion in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.config import PipelineConfig
from repro.arch.trace import trace_plan
from repro.core.framework import ReGraph
from repro.errors import ConformanceError
from repro.graph.coo import Graph
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.check.invariants import Violation, check_trace
from repro.check.oracles import (
    ORACLE_APPS,
    OracleResult,
    functional_oracle,
    model_oracle,
)
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands

#: Iteration cap for the convergence-free oracle apps.
CHECK_PAGERANK_ITERATIONS = 10


def with_random_weights(
    graph: Graph, seed: int = 0, low: int = 1, high: int = 16
) -> Graph:
    """A weighted twin of ``graph`` with deterministic integer weights,
    for exercising the SSSP/weighted-edge path of the oracles."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(low, high, size=graph.num_edges, dtype=np.int32)
    return Graph(
        graph.num_vertices,
        graph.src,
        graph.dst,
        weights=weights,
        name=f"{graph.name}-w",
        assume_sorted=True,
    )


def seed_graphs(seed: int = 1, quick: bool = False) -> List[Graph]:
    """The seed conformance suite: one graph per skew class.

    ``quick`` shrinks the suite to a single small RMAT graph for smoke
    use (CI per-commit, CLI sanity runs).
    """
    if quick:
        return [rmat_graph(9, 8, seed=seed, name="rmat9")]
    return [
        rmat_graph(10, 8, seed=seed, name="rmat10"),
        power_law_graph(
            1200, 10_000, exponent=1.8, seed=seed + 10, name="pl1200"
        ),
        erdos_renyi_graph(800, 6_000, seed=seed + 20, name="er800"),
    ]


@dataclass
class ConformanceReport:
    """All oracle results and invariant violations of one ``check`` run."""

    device: str
    apps: Sequence[str]
    results: List[OracleResult] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every oracle agreed and no invariant broke."""
        return not self.violations and all(r.passed for r in self.results)

    @property
    def num_checks(self) -> int:
        """Oracle comparisons performed (invariant rules not counted)."""
        return len(self.results)

    def rows(self) -> List[tuple]:
        """Table rows for :func:`repro.reporting.format_table`."""
        rows = [
            (r.oracle, r.subject, "ok" if r.passed else "FAIL", r.detail)
            for r in self.results
        ]
        rows += [
            (v.rule, v.subject, "FAIL", v.detail) for v in self.violations
        ]
        return rows

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.ConformanceError` summarising
        every failed check; no-op when the report is clean."""
        if self.passed:
            return
        failed = [str(r) for r in self.results if not r.passed]
        failed += [str(v) for v in self.violations]
        lines = "\n  ".join(failed)
        raise ConformanceError(
            f"{len(failed)} conformance failure(s) on {self.device}:\n"
            f"  {lines}"
        )


def run_conformance(
    device: str = "U280",
    apps: Optional[Sequence[str]] = None,
    graphs: Optional[Sequence[Graph]] = None,
    buffer_vertices: int = 256,
    num_pipelines: int = 4,
    seed: int = 1,
    quick: bool = False,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> ConformanceReport:
    """Cross-check simulators, model and references on one device.

    Unknown app names raise :class:`~repro.errors.ConformanceError`
    before any simulation starts.
    """
    apps = tuple(apps) if apps else ORACLE_APPS
    unknown = [a for a in apps if a not in ORACLE_APPS]
    if unknown:
        raise ConformanceError(
            f"unknown oracle app(s) {unknown}; available: {ORACLE_APPS}"
        )
    graphs = list(graphs) if graphs is not None else seed_graphs(seed, quick)
    framework = ReGraph(
        device,
        pipeline=PipelineConfig(gather_buffer_vertices=buffer_vertices),
        num_pipelines=num_pipelines,
    )
    report = ConformanceReport(device=framework.platform.name, apps=apps)

    for graph in graphs:
        pre = framework.preprocess(graph)
        pre.plan.validate(expected_edges=graph.num_edges)
        report.results += model_oracle(
            pre.plan, framework.channel, bands, subject=graph.name
        )
        trace = trace_plan(pre.plan, framework.channel)
        report.violations += check_trace(
            trace,
            plan=pre.plan,
            platform=framework.platform,
            channel=framework.channel,
            bands=bands,
        )
        for app in apps:
            if app == "sssp":
                weighted = with_random_weights(graph, seed=seed)
                result = functional_oracle(
                    weighted, "sssp", framework, bands=bands
                )
            elif app == "pagerank":
                result = functional_oracle(
                    graph, app, framework,
                    max_iterations=CHECK_PAGERANK_ITERATIONS, bands=bands,
                )
            else:
                result = functional_oracle(graph, app, framework, bands=bands)
            report.results.append(result)
    return report
