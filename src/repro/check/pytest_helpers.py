"""Plugin-style helpers letting any test opt into invariant enforcement.

Import-light on purpose: no pytest dependency here, just callables that
raise :class:`~repro.errors.ConformanceError` (an ``AssertionError``
subclass, so pytest renders violations as plain test failures).  The
``conformance`` fixture in ``tests/conftest.py`` hands tests a
:class:`ConformanceChecker` bound to their framework under test; any
integration test can add one line —

    conformance.check_run(pre, framework)

— and every future regression in trace structure, channel ceilings,
resource budgets or model agreement fails that test too.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.trace import trace_plan
from repro.check.invariants import assert_trace_invariants
from repro.check.oracles import model_oracle
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands
from repro.errors import ConformanceError


class ConformanceChecker:
    """One-call invariant/oracle enforcement for tests."""

    def __init__(self, bands: ToleranceBands = DEFAULT_BANDS):
        self.bands = bands

    def check_plan(
        self, plan, platform=None, channel=None,
        expected_edges: Optional[int] = None, weighted: bool = False,
    ) -> None:
        """Validate a plan structurally and audit one traced iteration."""
        plan.validate(expected_edges=expected_edges)
        trace = trace_plan(plan, channel)
        assert_trace_invariants(
            trace, plan=plan, platform=platform, channel=channel,
            weighted=weighted, bands=self.bands,
        )

    def check_model(self, plan, channel=None, subject: str = "plan") -> None:
        """Assert the Eq. 1-4 estimates agree with the simulators."""
        for result in model_oracle(plan, channel, self.bands, subject):
            if not result.passed:
                raise ConformanceError(str(result))

    def check_run(self, pre, framework, weighted: bool = False) -> None:
        """Full enforcement for a preprocessed graph: plan invariants,
        traced-iteration invariants, and model agreement."""
        self.check_plan(
            pre.plan,
            platform=framework.platform,
            channel=framework.channel,
            expected_edges=pre.graph.num_edges,
            weighted=weighted,
        )
        self.check_model(
            pre.plan, framework.channel, subject=pre.graph.name
        )
