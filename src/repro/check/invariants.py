"""Trace invariant checker.

Audits a task-level :class:`~repro.arch.trace.ExecutionTrace` against the
:class:`~repro.sched.plan.SchedulingPlan` it claims to execute and the
physical models it must respect.  Enforced invariants:

* **well-formed timeline** — every event has finite, non-negative cycles
  and positive duration;
* **no overlap** — a pipeline never runs two tasks at once;
* **coverage** — every planned task produced exactly one event on its
  pipeline, in order, with matching partition indices and edge counts,
  and the trace covers exactly the plan's edges (every planned partition
  executed, none twice);
* **channel ceiling** — no task moves its edge stream faster than one
  HBM pseudo-channel physically can (Sec. III-A: one 512-bit block per
  cycle);
* **resource feasibility** — the plan's accelerator fits the platform's
  Table II capacities (LUT below the practical 80% cap, BRAM/URAM within
  capacity).

Each check returns :class:`Violation` records instead of raising, so the
``repro check`` CLI can report all failures at once;
:func:`assert_trace_invariants` wraps them into a single
:class:`~repro.errors.ConformanceError` for test use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.platform import FpgaPlatform
from repro.arch.resources import report as resource_report
from repro.arch.trace import ExecutionTrace
from repro.errors import ConformanceError
from repro.graph.coo import EDGE_BYTES, VERTEX_WORD_BYTES
from repro.hbm.channel import HbmChannelModel
from repro.sched.plan import SchedulingPlan
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which rule, where, and the evidence."""

    rule: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.detail}"


def _events_by_pipeline(trace: ExecutionTrace) -> dict:
    by_pipe: dict = {}
    for event in trace.events:
        by_pipe.setdefault(event.pipeline, []).append(event)
    return by_pipe


# ----------------------------------------------------------------------
# Individual invariants
# ----------------------------------------------------------------------
def check_monotone_cycles(
    trace: ExecutionTrace, bands: ToleranceBands = DEFAULT_BANDS
) -> List[Violation]:
    """Cycles are finite, non-negative, and every event ends after it
    starts."""
    violations = []
    for event in trace.events:
        if not (
            np.isfinite(event.start_cycle) and np.isfinite(event.end_cycle)
        ):
            violations.append(Violation(
                "monotone-cycles", event.pipeline,
                f"task {event.task_label} has non-finite cycles "
                f"[{event.start_cycle}, {event.end_cycle}]",
            ))
            continue
        if event.start_cycle < -bands.cycle_eps:
            violations.append(Violation(
                "monotone-cycles", event.pipeline,
                f"task {event.task_label} starts at negative cycle "
                f"{event.start_cycle}",
            ))
        if event.duration <= 0:
            violations.append(Violation(
                "monotone-cycles", event.pipeline,
                f"task {event.task_label} has non-positive duration "
                f"{event.duration}",
            ))
    return violations


def check_no_overlap(
    trace: ExecutionTrace, bands: ToleranceBands = DEFAULT_BANDS
) -> List[Violation]:
    """No pipeline ever executes two tasks simultaneously."""
    violations = []
    for pipe, events in _events_by_pipeline(trace).items():
        ordered = sorted(events, key=lambda e: (e.start_cycle, e.end_cycle))
        for prev, nxt in zip(ordered, ordered[1:]):
            if nxt.start_cycle < prev.end_cycle - bands.cycle_eps:
                violations.append(Violation(
                    "no-overlap", pipe,
                    f"task {nxt.task_label} starts at {nxt.start_cycle} "
                    f"before {prev.task_label} ends at {prev.end_cycle}",
                ))
    return violations


def check_coverage(
    trace: ExecutionTrace, plan: SchedulingPlan
) -> List[Violation]:
    """Every planned task ran exactly once, on its pipeline, in order.

    Joins the trace to the plan via the ``little[i]``/``big[i]`` pipeline
    names; per-task identity is (partition indices, edge count), which
    also proves every planned partition executed exactly once and that
    the trace moved exactly the plan's edges.
    """
    violations = []
    by_pipe = _events_by_pipeline(trace)
    planned: dict = {}
    for pipe, task in plan.iter_tasks():
        planned.setdefault(pipe, []).append(task)

    for pipe, tasks in planned.items():
        events = sorted(
            by_pipe.pop(pipe, []), key=lambda e: e.start_cycle
        )
        if len(events) != len(tasks):
            violations.append(Violation(
                "coverage", pipe,
                f"plan has {len(tasks)} task(s), trace has "
                f"{len(events)} event(s)",
            ))
            continue
        for ordinal, (task, event) in enumerate(zip(tasks, events)):
            if event.partition_indices != task.partition_indices:
                violations.append(Violation(
                    "coverage", pipe,
                    f"task #{ordinal} covers partitions "
                    f"{event.partition_indices}, plan says "
                    f"{task.partition_indices}",
                ))
            elif event.num_edges != task.num_edges:
                violations.append(Violation(
                    "coverage", pipe,
                    f"task #{ordinal} moved {event.num_edges} edges, "
                    f"plan says {task.num_edges}",
                ))
    for pipe in by_pipe:
        violations.append(Violation(
            "coverage", pipe, "trace has events for an unplanned pipeline",
        ))

    traced_edges = sum(e.num_edges for e in trace.events)
    if not violations and traced_edges != plan.total_edges():
        violations.append(Violation(
            "coverage", "plan",
            f"trace moved {traced_edges} edges, plan covers "
            f"{plan.total_edges()}",
        ))
    return violations


def check_channel_bandwidth(
    trace: ExecutionTrace,
    channel: Optional[HbmChannelModel] = None,
    weighted: bool = False,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> List[Violation]:
    """No task streams its edge list faster than one pseudo-channel.

    Each pipeline's edge list lives on a single pseudo-channel
    (:mod:`repro.runtime.host` layout), so an event of ``E`` edges may
    not finish in fewer cycles than the channel needs to move
    ``E * S_e`` bytes at peak sequential bandwidth.
    """
    channel = channel or HbmChannelModel()
    edge_bytes = EDGE_BYTES + (VERTEX_WORD_BYTES if weighted else 0)
    violations = []
    for event in trace.events:
        if event.num_edges <= 0 or event.duration <= 0:
            continue
        floor = channel.min_cycles_for_bytes(event.num_edges * edge_bytes)
        if event.duration < floor * (1.0 - bands.bandwidth_rel) - bands.cycle_eps:
            implied = event.num_edges * edge_bytes / event.duration
            violations.append(Violation(
                "channel-bandwidth", event.pipeline,
                f"task {event.task_label} implies "
                f"{implied:.2f} B/cycle on its edge channel, ceiling is "
                f"{channel.bandwidth_bytes_per_cycle():.2f}",
            ))
    return violations


def check_resource_feasibility(
    plan: SchedulingPlan,
    platform: FpgaPlatform,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> List[Violation]:
    """The plan's accelerator fits the platform's Table II capacities."""
    rep = resource_report(plan.accelerator, platform)
    violations = []
    for label, util, cap in [
        ("LUT", rep.lut_util, bands.max_lut_util),
        ("FF", rep.ff_util, 1.0),
        ("BRAM", rep.bram_util, 1.0),
        ("URAM", rep.uram_util, 1.0),
    ]:
        if util > cap:
            violations.append(Violation(
                "resource-feasibility", plan.accelerator.label,
                f"{label} utilisation {util:.1%} exceeds the "
                f"{cap:.0%} cap on {platform.name}",
            ))
    return violations


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def check_trace(
    trace: ExecutionTrace,
    plan: Optional[SchedulingPlan] = None,
    platform: Optional[FpgaPlatform] = None,
    channel: Optional[HbmChannelModel] = None,
    weighted: bool = False,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> List[Violation]:
    """Run every applicable invariant; returns all violations found.

    ``plan`` enables the coverage check, ``platform`` the resource
    check; trace-local invariants always run.
    """
    violations = check_monotone_cycles(trace, bands)
    violations += check_no_overlap(trace, bands)
    violations += check_channel_bandwidth(trace, channel, weighted, bands)
    if plan is not None:
        violations += check_coverage(trace, plan)
    if plan is not None and platform is not None:
        violations += check_resource_feasibility(plan, platform, bands)
    return violations


def assert_trace_invariants(
    trace: ExecutionTrace,
    plan: Optional[SchedulingPlan] = None,
    platform: Optional[FpgaPlatform] = None,
    channel: Optional[HbmChannelModel] = None,
    weighted: bool = False,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> None:
    """Raise :class:`~repro.errors.ConformanceError` listing every
    violated invariant; no-op on a conformant trace."""
    violations = check_trace(trace, plan, platform, channel, weighted, bands)
    if violations:
        lines = "\n  ".join(str(v) for v in violations)
        raise ConformanceError(
            f"{len(violations)} trace invariant violation(s):\n  {lines}"
        )
