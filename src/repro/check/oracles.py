"""Differential oracles: three descriptions of one machine, cross-checked.

The repo describes the same accelerator three independent ways:

1. the **cycle-level module simulators** (Figs. 3-6) that execute plans
   task by task;
2. the **Eq. 1-4 analytic performance model** that predicts those cycle
   counts during scheduling;
3. the **pure-Python reference algorithms**
   (:mod:`repro.apps.reference`) that define what the answers must be.

Each oracle runs one (graph, app, device, plan) through two of the
descriptions and asserts agreement: cycle counts within the declared
:class:`~repro.check.tolerances.ToleranceBands`, algorithm results
exactly (BFS levels, SSSP distances, WCC components) or within
fixed-point resolution (PageRank ranks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.reference import (
    bfs_reference,
    closeness_reference,
    pagerank_reference,
    sssp_reference,
    wcc_reference,
)
from repro.apps.sssp import SingleSourceShortestPaths
from repro.apps.wcc import WeaklyConnectedComponents, symmetrized
from repro.arch.trace import trace_plan
from repro.errors import ConformanceError
from repro.graph.coo import Graph
from repro.hbm.channel import HbmChannelModel
from repro.sched.plan import SchedulingPlan
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands

#: Apps the functional oracle knows how to cross-check.
ORACLE_APPS = ("pagerank", "bfs", "closeness", "sssp", "wcc")


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one differential comparison."""

    oracle: str
    subject: str
    passed: bool
    #: worst observed disagreement (relative cycles, absolute ranks, or
    #: mismatching element count, depending on the oracle)
    max_error: float
    detail: str

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return f"[{self.oracle}] {self.subject}: {status} ({self.detail})"


# ----------------------------------------------------------------------
# Simulator vs analytic model
# ----------------------------------------------------------------------
def model_oracle(
    plan: SchedulingPlan,
    channel: Optional[HbmChannelModel] = None,
    bands: ToleranceBands = DEFAULT_BANDS,
    subject: str = "plan",
) -> List[OracleResult]:
    """Compare the plan's Eq. 1-4 estimates against the cycle simulators.

    Two comparisons: every task's estimated cycles against its simulated
    duration (per-task band), and the plan's estimated makespan against
    the traced makespan (tighter band, errors average out).
    """
    trace = trace_plan(plan, channel)
    events = {}
    for event in trace.events:
        events.setdefault(event.pipeline, []).append(event)
    for pipe_events in events.values():
        pipe_events.sort(key=lambda e: e.start_cycle)

    worst_task = 0.0
    worst_detail = "no tasks"
    cursor = {pipe: 0 for pipe in events}
    for pipe, task in plan.iter_tasks():
        event = events[pipe][cursor[pipe]]
        cursor[pipe] += 1
        sim = event.duration
        rel = abs(sim - task.estimated_cycles) / max(sim, 1.0)
        if rel >= worst_task:
            worst_task = rel
            worst_detail = (
                f"{pipe} task over {task.partition_indices}: "
                f"est {task.estimated_cycles:,.0f} vs sim {sim:,.0f}"
            )
    task_result = OracleResult(
        oracle="model-vs-sim/task",
        subject=subject,
        passed=worst_task <= bands.model_task_rel,
        max_error=worst_task,
        detail=f"worst task error {worst_task:.1%} "
               f"(band {bands.model_task_rel:.0%}): {worst_detail}",
    )

    sim_span = trace.makespan
    est_span = plan.estimated_makespan
    span_rel = abs(sim_span - est_span) / max(sim_span, 1.0)
    span_result = OracleResult(
        oracle="model-vs-sim/makespan",
        subject=subject,
        passed=span_rel <= bands.model_makespan_rel,
        max_error=span_rel,
        detail=f"est {est_span:,.0f} vs sim {sim_span:,.0f} cycles "
               f"({span_rel:.1%}, band {bands.model_makespan_rel:.0%})",
    )
    return [task_result, span_result]


# ----------------------------------------------------------------------
# Simulated system vs reference algorithms
# ----------------------------------------------------------------------
def _component_canonical(labels: np.ndarray) -> np.ndarray:
    """Relabel components by first occurrence, making partitions of the
    vertex set comparable regardless of which member names the label."""
    _, canonical = np.unique(labels, return_inverse=True)
    first_seen: dict = {}
    out = np.empty(labels.size, dtype=np.int64)
    next_id = 0
    for i, c in enumerate(canonical):
        if c not in first_seen:
            first_seen[c] = next_id
            next_id += 1
        out[i] = first_seen[c]
    return out


def functional_oracle(
    graph: Graph,
    app: str,
    framework,
    root: int = 0,
    max_iterations: Optional[int] = None,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> OracleResult:
    """Run ``app`` through the full simulated system and the reference
    implementation; compare the answers.

    ``framework`` is a :class:`~repro.core.framework.ReGraph` instance —
    the oracle exercises the whole pipeline it drives: DBG, partitioning,
    model-guided scheduling, heterogeneous execution, Apply, and the
    relabelling round-trip.
    """
    subject = f"{app}@{graph.name}"
    if app == "pagerank":
        run = framework.run_pagerank(graph, max_iterations=max_iterations)
        ref = pagerank_reference(graph, iterations=run.iterations)
        atol = bands.pagerank_atol(
            graph.out_degrees().max() if graph.num_edges else 1,
            run.iterations,
        )
        err = float(np.max(np.abs(run.result - ref)))
        return OracleResult(
            "functional", subject, err <= atol, err,
            f"max |rank - ref| = {err:.2e} (atol {atol:.2e})",
        )
    if app == "bfs":
        run = framework.run_bfs(graph, root=root)
        ref = bfs_reference(graph, root)
        mismatches = int(np.count_nonzero(run.props != ref))
        return OracleResult(
            "functional", subject, mismatches == 0, float(mismatches),
            f"{mismatches} level mismatch(es) of {graph.num_vertices}",
        )
    if app == "closeness":
        run = framework.run_closeness(graph, root=root)
        ref = closeness_reference(graph, root)
        err = abs(float(run.result) - ref)
        return OracleResult(
            "functional", subject, err <= 1e-9, err,
            f"|closeness - ref| = {err:.2e}",
        )
    if app == "sssp":
        if graph.weights is None:
            raise ConformanceError(f"sssp oracle needs weights on {graph.name}")
        pre = framework.preprocess(graph)
        internal_root = pre.to_internal_vertex(root)
        run = framework.run(
            pre, lambda g: SingleSourceShortestPaths(g, root=internal_root)
        )
        ref = sssp_reference(graph, root)
        mismatches = int(np.count_nonzero(run.props != ref))
        return OracleResult(
            "functional", subject, mismatches == 0, float(mismatches),
            f"{mismatches} distance mismatch(es) of {graph.num_vertices}",
        )
    if app == "wcc":
        # Weak components need the symmetrized edge set; labels are
        # compared as partitions (the simulator propagates relabelled
        # IDs, the reference original IDs — same components either way).
        sym = symmetrized(graph)
        run = framework.run(sym, WeaklyConnectedComponents)
        ref = wcc_reference(sym)
        mismatches = int(np.count_nonzero(
            _component_canonical(run.props) != _component_canonical(ref)
        ))
        return OracleResult(
            "functional", subject, mismatches == 0, float(mismatches),
            f"{mismatches} component mismatch(es) of {graph.num_vertices}",
        )
    raise ConformanceError(
        f"unknown oracle app {app!r}; available: {ORACLE_APPS}"
    )
