"""Baseline systems the paper compares against.

Every comparison target of Sec. VI enters as a *model*: mechanistic
bandwidth/resource-bound throughput models calibrated to the numbers the
corresponding papers report (we have no ThunderGP bitstreams, GraphLily
overlays, 48-core Xeons or Tesla GPUs offline).  Where Table V quotes a
measured MTEPS we carry that number verbatim for the comparison printout;
for unlisted graphs the models extrapolate.

The ThunderGP-like baseline can also be *simulated* through our own
framework (homogeneous monolithic pipelines, resource-bound pipeline
count, even edge cuts) for a fully mechanistic apples-to-apples ablation.
"""

from repro.baselines.resource_table import (
    TABLE1_DESIGNS,
    ExistingDesign,
    project_utilization,
    table1_rows,
)
from repro.baselines.fpga import (
    ASIATICI,
    GRAPHLILY,
    THUNDERGP,
    FpgaBaseline,
    thundergp_like_plan,
)
from repro.baselines.ligra import LigraModel
from repro.baselines.gunrock import GUNROCK_A100, GUNROCK_P100, GunrockModel
from repro.baselines.energy import (
    PLATFORM_POWER_WATTS,
    energy_efficiency_gteps_per_watt,
    efficiency_ratio,
)

__all__ = [
    "TABLE1_DESIGNS",
    "ExistingDesign",
    "project_utilization",
    "table1_rows",
    "ASIATICI",
    "GRAPHLILY",
    "THUNDERGP",
    "FpgaBaseline",
    "thundergp_like_plan",
    "LigraModel",
    "GUNROCK_A100",
    "GUNROCK_P100",
    "GunrockModel",
    "PLATFORM_POWER_WATTS",
    "energy_efficiency_gteps_per_watt",
    "efficiency_ratio",
]
