"""Gunrock GPU baseline (Sec. VI-H, Fig. 15).

Modelled as a bandwidth roofline on the two evaluation GPUs.  PR on GPUs
is a near-streaming workload and converts a large fraction of the huge
HBM2(e) bandwidth into traversal — which is why both GPUs beat ReGraph on
PR throughput.  BFS is frontier-driven with kernel-launch overheads and
poor utilisation on small frontiers, so its efficiency is much lower —
which is why ReGraph beats the P100 on BFS.  Energy efficiency divides by
the measured execution power of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.coo import Graph


@dataclass(frozen=True)
class GunrockModel:
    """Throughput/energy model of Gunrock on one GPU."""

    name: str
    peak_bandwidth_gbs: float
    power_watts: float
    #: fraction of peak bandwidth PR converts into edge traversal
    pr_efficiency: float
    #: fraction for frontier-based BFS (launch + load-balance losses)
    bfs_efficiency: float

    def _locality(self, graph: Graph) -> float:
        """Coalescing factor: denser graphs coalesce vertex loads better."""
        return min(0.25 + graph.average_degree / 64.0, 1.0)

    def pagerank_mteps(self, graph: Graph) -> float:
        """Modelled PR throughput (MTEPS)."""
        bytes_per_edge = 8.0 + 4.0 / self._locality(graph)
        gbs = self.peak_bandwidth_gbs * self.pr_efficiency
        return gbs / bytes_per_edge * 1e3

    def bfs_mteps(self, graph: Graph) -> float:
        """Modelled BFS throughput (MTEPS)."""
        bytes_per_edge = 8.0 + 4.0 / self._locality(graph)
        gbs = self.peak_bandwidth_gbs * self.bfs_efficiency
        return gbs / bytes_per_edge * 1e3

    def throughput_mteps(self, app: str, graph: Graph) -> float:
        """Dispatch on application name ('PR' or 'BFS')."""
        if app.upper() == "PR":
            return self.pagerank_mteps(graph)
        if app.upper() in ("BFS", "CC"):
            return self.bfs_mteps(graph)
        raise ValueError(f"unknown app {app!r}")


#: Tesla P100: 732 GB/s, measured 176 W (Table VI).
GUNROCK_P100 = GunrockModel(
    name="Gunrock-P100",
    peak_bandwidth_gbs=732.0,
    power_watts=176.0,
    pr_efficiency=0.55,
    bfs_efficiency=0.10,
)

#: Tesla A100: 2039 GB/s, measured 187 W (Table VI).
GUNROCK_A100 = GunrockModel(
    name="Gunrock-A100",
    peak_bandwidth_gbs=2039.0,
    power_watts=187.0,
    pr_efficiency=0.60,
    bfs_efficiency=0.18,
)
