"""Energy model (Table VI and the GTEPS/Watt comparisons of Figs. 14-15).

Execution power is measured, not TDP: the paper reads 35 W on the U280
via xbutil, 208 W on the Xeon via CPU Energy Meter, and 176/187 W on the
GPUs via nvidia-smi.  Energy efficiency is throughput per watt; the
improvement factor is the ratio of two designs' GTEPS/W.
"""

from __future__ import annotations

from typing import Dict

#: Measured execution power (Table VI), watts.
PLATFORM_POWER_WATTS: Dict[str, float] = {
    "U280": 35.0,
    "U50": 30.0,
    "Xeon-6248R": 208.0,
    "P100": 176.0,
    "A100": 187.0,
}


def energy_efficiency_gteps_per_watt(gteps: float, watts: float) -> float:
    """Throughput per watt — the energy metric of Sec. VI-H."""
    if watts <= 0:
        raise ValueError(f"watts must be > 0, got {watts}")
    return gteps / watts


def efficiency_ratio(
    gteps_a: float, watts_a: float, gteps_b: float, watts_b: float
) -> float:
    """Energy-efficiency improvement of design A over design B."""
    eff_a = energy_efficiency_gteps_per_watt(gteps_a, watts_a)
    eff_b = energy_efficiency_gteps_per_watt(gteps_b, watts_b)
    if eff_b == 0:
        raise ValueError("design B has zero efficiency")
    return eff_a / eff_b
