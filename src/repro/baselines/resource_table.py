"""Table I: resource projections of existing designs vs HBM channel count.

The paper takes each design's published resource utilisation (starred
cells, normalised to U280), derives a per-channel cost, and scales it
linearly with the number of memory channels — showing every prior design
blows past the device at or before 8 of the 32 channels, the motivation
for heterogeneous pipelines.

We store both the exact published cells (for the comparison printout) and
the per-channel fraction (for the projection mechanism and the downstream
resource-bound baseline models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Channel counts of Table I's columns with their bandwidth labels (GB/s).
TABLE1_CHANNELS: Tuple[Tuple[int, float], ...] = (
    (1, 14.0),
    (4, 58.0),
    (8, 115.0),
    (16, 230.0),
    (32, 460.0),
)

#: Practical LUT ceiling (Table I footnote).
PRACTICAL_LUT_CAP = 0.80


@dataclass(frozen=True)
class ExistingDesign:
    """One row of Table I."""

    name: str
    resource_type: str
    #: utilisation fraction per memory channel (derived from the starred,
    #: i.e. measured, anchor cell)
    per_channel_fraction: float
    #: the exact published utilisation percentages per column
    paper_cells: Tuple[float, ...]
    #: which columns were measured in the original papers (channel counts)
    measured_at: Tuple[int, ...]

    def utilization(self, num_channels: int) -> float:
        """Projected utilisation fraction at ``num_channels`` channels."""
        if num_channels < 0:
            raise ValueError("num_channels must be >= 0")
        return self.per_channel_fraction * num_channels

    def max_feasible_channels(self, cap: float = PRACTICAL_LUT_CAP) -> int:
        """Channels usable before exceeding the practical resource cap."""
        return int(cap / self.per_channel_fraction)


#: The four designs of Table I.  Fractions anchor on the starred cells:
#: HitGraph 68.1%@4CH, FabGraph 25.5%@1CH (projections use 102.1/4),
#: Asiatici 74.2%@4CH, ThunderGP 85.3%@4CH.
TABLE1_DESIGNS: Tuple[ExistingDesign, ...] = (
    ExistingDesign(
        "HitGraph",
        "LUT",
        0.681 / 4,
        (16.9, 68.1, 136.2, 272.4, 544.8),
        (1, 4),
    ),
    ExistingDesign(
        "FabGraph",
        "LUT",
        1.021 / 4,
        (25.5, 102.1, 204.2, 408.5, 817.0),
        (1,),
    ),
    ExistingDesign(
        "Asiatici et al. (ISCA'21)",
        "LUT",
        0.742 / 4,
        (18.6, 74.2, 148.4, 296.8, 593.6),
        (4,),
    ),
    ExistingDesign(
        "ThunderGP",
        "CLB",
        0.853 / 4,
        (21.3, 85.3, 170.6, 341.2, 682.4),
        (4,),
    ),
)


def project_utilization(design: ExistingDesign) -> List[float]:
    """Utilisation fractions projected at every Table I channel count."""
    return [design.utilization(ch) for ch, _bw in TABLE1_CHANNELS]


def table1_rows() -> List[Tuple]:
    """Rows for regeneration: (name, resource, projected %, paper %)."""
    return [
        (
            design.name,
            design.resource_type,
            [round(100 * u, 1) for u in project_utilization(design)],
            list(design.paper_cells),
        )
        for design in TABLE1_DESIGNS
    ]


def feasible_channel_summary() -> Dict[str, int]:
    """How many channels each prior design can actually drive (<80% LUT)."""
    return {
        design.name: design.max_feasible_channels()
        for design in TABLE1_DESIGNS
    }
