"""Ligra CPU baseline (Sec. VI-H, Fig. 14).

Ligra's push/pull direction-switching traversal is *functionally*
implemented (so results can be cross-checked) and its throughput on the
paper's 48-core Xeon Gold 6248R is *modelled* as bandwidth-bound: graph
processing at scale is memory-bound on CPUs, so per-iteration time is the
bytes the sweep touches divided by achievable bandwidth, degraded by a
random-access efficiency factor that grows with average degree (denser
graphs amortise cache lines better).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.coo import Graph
from repro.graph.csr import CsrGraph


@dataclass(frozen=True)
class LigraModel:
    """Throughput/energy model of Ligra on the evaluation CPU."""

    name: str = "Ligra"
    peak_bandwidth_gbs: float = 122.0  # Xeon Gold 6248R, Table VI
    power_watts: float = 208.0
    #: fraction of peak bandwidth a fully-regular sweep achieves
    sweep_efficiency: float = 0.55
    #: random-access penalty floor for very sparse graphs
    min_locality: float = 0.12

    def _locality(self, graph: Graph) -> float:
        """Cache-line amortisation factor from degree structure."""
        return min(
            self.min_locality + graph.average_degree / 64.0, 1.0
        )

    def pagerank_mteps(self, graph: Graph) -> float:
        """Modelled PR throughput: edge records + random rank gathers."""
        bytes_per_edge = 8.0 + 8.0 / self._locality(graph)
        gbs = self.peak_bandwidth_gbs * self.sweep_efficiency
        return gbs / bytes_per_edge * 1e3

    def bfs_mteps(self, graph: Graph) -> float:
        """Modelled BFS throughput; direction switching helps dense
        frontiers, so BFS tracks PR with a small frontier overhead."""
        return 0.8 * self.pagerank_mteps(graph)

    def throughput_mteps(self, app: str, graph: Graph) -> float:
        """Dispatch on application name ('PR' or 'BFS')."""
        if app.upper() == "PR":
            return self.pagerank_mteps(graph)
        if app.upper() in ("BFS", "CC"):
            return self.bfs_mteps(graph)
        raise ValueError(f"unknown app {app!r}")

    # ------------------------------------------------------------------
    # Functional reference: Ligra-style direction-switching BFS
    # ------------------------------------------------------------------
    @staticmethod
    def bfs_levels(graph: Graph, root: int = 0) -> np.ndarray:
        """Push/pull BFS; switches to pull when the frontier is large."""
        out_csr = CsrGraph.from_coo(graph)
        in_csr = CsrGraph.from_coo(graph, transpose=True)
        n = graph.num_vertices
        levels = np.full(n, 2**31 - 1, dtype=np.int64)
        levels[root] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[root] = True
        depth = 0
        threshold = max(n // 20, 1)
        while frontier.any():
            depth += 1
            next_frontier = np.zeros(n, dtype=bool)
            if frontier.sum() > threshold:
                # Pull: every unvisited vertex scans its in-neighbours.
                for v in np.flatnonzero(levels == 2**31 - 1):
                    neigh = in_csr.neighbors(int(v))
                    if neigh.size and frontier[neigh].any():
                        levels[v] = depth
                        next_frontier[v] = True
            else:
                # Push: frontier vertices relax their out-neighbours.
                for v in np.flatnonzero(frontier):
                    for u in out_csr.neighbors(int(v)):
                        if levels[u] > depth:
                            levels[u] = depth
                            next_frontier[u] = True
            frontier = next_frontier
        return levels
