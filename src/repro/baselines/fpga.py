"""FPGA baseline models: ThunderGP, GraphLily, Asiatici et al.

Each baseline carries (a) the throughput numbers its paper / Table V
reports, used verbatim in comparison printouts, and (b) a mechanistic
bandwidth-and-resource-bound throughput model for graphs the papers never
measured.  The model's structure follows each system's architecture:

* **ThunderGP** — monolithic pipelines; resource cost of ~21.3% CLB per
  memory channel (Table I) caps it at 3-4 channels on U280, each channel
  moving edges at near-burst efficiency but sharing bandwidth with the
  cached vertex traffic.
* **Asiatici et al.** — non-blocking cache with thousands of outstanding
  misses on a DRAM (UltraScale+) platform: high per-miss efficiency but
  only 4 DDR channels of bandwidth.
* **GraphLily** — an SpMV/SpMSpV overlay on U280 HBM: uses many channels
  but its fixed bitstream cannot specialise, losing efficiency to format
  conversion and balanced-but-generic SpMV lanes.

``thundergp_like_plan`` additionally builds a *simulated* monolithic
baseline through our own framework (homogeneous pipelines, even edge
cuts, resource-bound pipeline count) for mechanistic A/B studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.graph.coo import Graph

#: (app, dataset-key) -> MTEPS reported in Table V for each baseline.
_THUNDERGP_REPORTED: Dict[Tuple[str, str], float] = {
    ("PR", "R21"): 5920.0,
    ("PR", "HW"): 6147.0,
    ("PR", "PK"): 3832.0,
    ("PR", "OR"): 5661.0,
    ("PR", "HD"): 1760.0,
    ("BFS", "R21"): 6978.0,
    ("BFS", "HW"): 7743.0,
    ("BFS", "PK"): 4105.0,
    ("BFS", "OR"): 7629.0,
    ("BFS", "HD"): 1868.0,
    ("CC", "R21"): 6182.0,
    ("CC", "HW"): 6076.0,
    ("CC", "PK"): 3790.0,
    ("CC", "OR"): 5872.0,
    ("CC", "HD"): 1737.0,
}

_GRAPHLILY_REPORTED: Dict[Tuple[str, str], float] = {
    ("PR", "R21"): 4653.0,
    ("PR", "HW"): 7471.0,
    ("PR", "PK"): 2933.0,
    ("PR", "OR"): 5940.0,
    ("BFS", "PK"): 1965.0,
    ("BFS", "OR"): 4937.0,
    ("BFS", "HW"): 6863.0,
}

_ASIATICI_REPORTED: Dict[Tuple[str, str], float] = {
    ("PR", "DB"): 920.0,
    ("PR", "R24"): 1800.0,
}

#: Our speedups over each baseline as Table V reports them, used by the
#: bench to print the expected bands: (app, graph) -> (U50, U280).
TABLE5_PAPER_SPEEDUPS: Dict[Tuple[str, str, str], Tuple[float, float]] = {
    ("Asiatici", "PR", "DB"): (4.2, 5.9),
    ("Asiatici", "PR", "R24"): (4.1, 5.5),
    ("GraphLily", "PR", "R21"): (2.8, 3.3),
    ("GraphLily", "PR", "HW"): (2.0, 2.1),
    ("GraphLily", "PR", "PK"): (2.3, 2.8),
    ("GraphLily", "PR", "OR"): (1.7, 2.1),
    ("GraphLily", "BFS", "PK"): (3.3, 3.7),
    ("GraphLily", "BFS", "OR"): (2.3, 2.5),
    ("GraphLily", "BFS", "HW"): (2.1, 2.2),
    ("ThunderGP", "PR", "R21"): (2.1, 2.6),
    ("ThunderGP", "PR", "HW"): (2.4, 2.5),
    ("ThunderGP", "PR", "PK"): (1.8, 2.1),
    ("ThunderGP", "PR", "OR"): (2.1, 2.2),
    ("ThunderGP", "PR", "HD"): (4.0, 4.4),
    ("ThunderGP", "BFS", "R21"): (1.9, 2.0),
    ("ThunderGP", "BFS", "HW"): (1.9, 1.9),
    ("ThunderGP", "BFS", "PK"): (1.6, 1.8),
    ("ThunderGP", "BFS", "OR"): (1.5, 1.6),
    ("ThunderGP", "BFS", "HD"): (3.3, 3.7),
    ("ThunderGP", "CC", "R21"): (2.1, 2.8),
    ("ThunderGP", "CC", "HW"): (2.5, 3.1),
    ("ThunderGP", "CC", "PK"): (1.7, 2.0),
    ("ThunderGP", "CC", "OR"): (2.0, 2.5),
    ("ThunderGP", "CC", "HD"): (3.7, 4.4),
}


@dataclass(frozen=True)
class FpgaBaseline:
    """Throughput model + reported numbers for one FPGA comparator."""

    name: str
    platform: str
    #: effective memory channels the design can drive (resource/arch bound)
    effective_channels: int
    #: per-channel bandwidth in GB/s on its platform
    channel_bandwidth_gbs: float
    #: fraction of peak channel bandwidth converted into edge traversal
    edge_efficiency: float
    #: LUT fraction of the best-performing implementation (for Fig. 13)
    lut_fraction: float
    reported_mteps: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def modeled_mteps(self, graph: Graph, app: str = "PR") -> float:
        """Mechanistic throughput estimate on an arbitrary graph.

        Edge records cost 8 bytes; irregular graphs (low average degree)
        waste vertex-access bandwidth, captured by a locality factor that
        saturates for degree >= 32.
        """
        locality = min(graph.average_degree / 32.0, 1.0) * 0.5 + 0.5
        bytes_per_edge = 8.0
        gbs = self.effective_channels * self.channel_bandwidth_gbs
        return gbs * self.edge_efficiency * locality / bytes_per_edge * 1e3

    def throughput_mteps(
        self, app: str, dataset_key: str, graph: Optional[Graph] = None
    ) -> float:
        """Reported MTEPS when available, otherwise the model estimate."""
        key = (app, dataset_key)
        if key in self.reported_mteps:
            return self.reported_mteps[key]
        if graph is None:
            raise KeyError(
                f"{self.name} has no reported number for {key} and no "
                "graph was supplied for the model"
            )
        return self.modeled_mteps(graph, app)


#: ThunderGP ported to U280 (Sec. VI-G: 1.3x the original paper's design);
#: resource-bound to ~4 channel groups (Table I: 21.3% CLB per channel).
THUNDERGP = FpgaBaseline(
    name="ThunderGP",
    platform="U280",
    effective_channels=4,
    channel_bandwidth_gbs=14.4,
    edge_efficiency=0.85,
    lut_fraction=0.853,
    reported_mteps=_THUNDERGP_REPORTED,
)

#: GraphLily overlay on U280 HBM: many channels, generic SpMV lanes.
GRAPHLILY = FpgaBaseline(
    name="GraphLily",
    platform="U280",
    effective_channels=16,
    channel_bandwidth_gbs=14.4,
    edge_efficiency=0.25,
    lut_fraction=0.45,
    reported_mteps=_GRAPHLILY_REPORTED,
)

#: Asiatici et al. on a DRAM (UltraScale+) platform: 4 DDR4 channels.
ASIATICI = FpgaBaseline(
    name="Asiatici",
    platform="UltraScale+",
    effective_channels=4,
    channel_bandwidth_gbs=19.2,
    edge_efficiency=0.2,
    lut_fraction=0.742,
    reported_mteps=_ASIATICI_REPORTED,
)

ALL_FPGA_BASELINES = (THUNDERGP, GRAPHLILY, ASIATICI)


def thundergp_like_plan(framework, graph: Graph, num_pipelines: int = 4):
    """Simulate a monolithic (ThunderGP-style) accelerator with our own
    machinery: homogeneous Little-style pipelines at the resource-bound
    count, scheduled without dense/sparse awareness.

    Returns the framework preprocess result with a forced homogeneous
    combo, so callers can run apps on it exactly like on ReGraph.
    """
    from repro.core.framework import ReGraph

    mono = ReGraph(
        platform=framework.platform,
        pipeline=framework.pipeline,
        channel=framework.channel,
        num_pipelines=num_pipelines,
    )
    return mono.preprocess(graph, forced_combo=(num_pipelines, 0))
