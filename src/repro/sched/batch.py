"""Batch execution across multiple graphs (an analytics-service scenario).

ReGraph pre-builds one bitstream per pipeline combination (Sec. V-D) and
the task scheduler picks which one to deploy per graph.  When a service
processes a *queue* of graphs, reprogramming the FPGA between bitstreams
costs seconds — so the batch scheduler orders the queue to group graphs
that selected the same combination, paying the programming cost once per
distinct bitstream instead of once per graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.graph.coo import Graph

#: Seconds to program one xclbin (matches the host-runtime model).
REPROGRAM_SECONDS = 2.5


@dataclass(frozen=True)
class BatchItem:
    """One queued graph with its selected accelerator and run estimate."""

    graph_name: str
    combo_label: str
    estimated_run_seconds: float


@dataclass
class BatchSchedule:
    """An ordered batch with its total-time accounting."""

    items: List[BatchItem] = field(default_factory=list)
    reprogram_seconds: float = REPROGRAM_SECONDS

    @property
    def num_reprograms(self) -> int:
        """Bitstream switches the order incurs (first load included)."""
        count = 0
        previous = None
        for item in self.items:
            if item.combo_label != previous:
                count += 1
                previous = item.combo_label
        return count

    @property
    def total_seconds(self) -> float:
        """Run time plus programming overhead for this order."""
        runs = sum(item.estimated_run_seconds for item in self.items)
        return runs + self.num_reprograms * self.reprogram_seconds


def plan_batch(
    graphs: Sequence[Graph],
    preprocess: Callable,
    estimate_run_seconds: Callable,
) -> BatchSchedule:
    """Order a graph queue to minimise bitstream reprogramming.

    ``preprocess(graph)`` must return an object exposing
    ``plan.accelerator.label``; ``estimate_run_seconds(pre)`` the
    expected run time.  Grouping by combo label is optimal here because
    programming cost is label-independent (simple exchange argument:
    any order with a label appearing in two separate runs can drop one
    reprogram by merging them without affecting run time).
    """
    items = []
    for graph in graphs:
        pre = preprocess(graph)
        items.append(
            BatchItem(
                graph_name=graph.name,
                combo_label=pre.plan.accelerator.label,
                estimated_run_seconds=float(estimate_run_seconds(pre)),
            )
        )
    items.sort(key=lambda item: (item.combo_label, item.graph_name))
    return BatchSchedule(items=items)


def naive_batch(
    graphs: Sequence[Graph],
    preprocess: Callable,
    estimate_run_seconds: Callable,
) -> BatchSchedule:
    """FIFO order — the baseline the grouped schedule is compared to."""
    items = []
    for graph in graphs:
        pre = preprocess(graph)
        items.append(
            BatchItem(
                graph_name=graph.name,
                combo_label=pre.plan.accelerator.label,
                estimated_run_seconds=float(estimate_run_seconds(pre)),
            )
        )
    return BatchSchedule(items=items)
