"""Static scheduling plan data structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.arch.config import AcceleratorConfig
from repro.graph.partition import Partition


@dataclass(frozen=True)
class LittleTask:
    """One Little pipeline execution: a (sub-)partition."""

    partition: Partition
    estimated_cycles: float

    @property
    def num_edges(self) -> int:
        """Edges this task processes."""
        return self.partition.num_edges

    @property
    def partition_indices(self) -> Tuple[int, ...]:
        """Destination-interval indices this task covers."""
        return (self.partition.index,)


@dataclass(frozen=True)
class BigTask:
    """One Big pipeline execution: a (sliced) group of partitions.

    The group covers at most ``N_gpe`` destination intervals; data routing
    lets one execution process them all, amortising the switch overhead.
    """

    partitions: List[Partition]
    estimated_cycles: float

    @property
    def num_edges(self) -> int:
        """Edges this task processes."""
        return sum(p.num_edges for p in self.partitions)

    @property
    def partition_indices(self) -> Tuple[int, ...]:
        """Destination-interval indices this task covers."""
        return tuple(p.index for p in self.partitions)


@dataclass
class SchedulingPlan:
    """The full static plan for one graph on one accelerator."""

    accelerator: AcceleratorConfig
    #: one task list per Little pipeline (length == num_little)
    little_tasks: List[List[LittleTask]] = field(default_factory=list)
    #: one task list per Big pipeline (length == num_big)
    big_tasks: List[List[BigTask]] = field(default_factory=list)
    #: original partition indices classified dense / sparse
    dense_indices: List[int] = field(default_factory=list)
    sparse_indices: List[int] = field(default_factory=list)

    @property
    def little_cycle_estimates(self) -> List[float]:
        """Estimated busy cycles of each Little pipeline."""
        return [
            sum(t.estimated_cycles for t in tasks)
            for tasks in self.little_tasks
        ]

    @property
    def big_cycle_estimates(self) -> List[float]:
        """Estimated busy cycles of each Big pipeline."""
        return [
            sum(t.estimated_cycles for t in tasks) for tasks in self.big_tasks
        ]

    @property
    def estimated_makespan(self) -> float:
        """Estimated iteration cycles: the slowest pipeline of any cluster."""
        candidates = self.little_cycle_estimates + self.big_cycle_estimates
        return max(candidates) if candidates else 0.0

    @property
    def balance_ratio(self) -> float:
        """Max/mean busy-cycle ratio across pipelines (1.0 = perfect)."""
        busy = [
            c for c in self.little_cycle_estimates + self.big_cycle_estimates
        ]
        busy = [c for c in busy if c > 0]
        if not busy:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))

    def iter_tasks(self) -> Iterator[Tuple[str, object]]:
        """Yield ``(pipeline_name, task)`` pairs in execution order.

        Pipeline names match the ``little[i]`` / ``big[i]`` labels used
        by :func:`repro.arch.trace.trace_plan`, so a trace can be joined
        back to the plan task-by-task.
        """
        for idx, tasks in enumerate(self.little_tasks):
            for task in tasks:
                yield f"little[{idx}]", task
        for idx, tasks in enumerate(self.big_tasks):
            for task in tasks:
                yield f"big[{idx}]", task

    def total_edges(self) -> int:
        """Edges covered by the plan (must equal the graph's E)."""
        little = sum(t.num_edges for tasks in self.little_tasks for t in tasks)
        big = sum(t.num_edges for tasks in self.big_tasks for t in tasks)
        return little + big

    def validate(self, expected_edges: int = None) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage.

        Verified: pipeline list lengths match the accelerator shape, Big
        groups respect the ``N_gpe`` cap with ascending bases, task edge
        lists stay inside their destination intervals, and (optionally)
        the plan covers exactly the expected edge count.
        """
        accel = self.accelerator
        if len(self.little_tasks) != accel.num_little:
            raise ValueError(
                f"{len(self.little_tasks)} Little task lists for "
                f"{accel.num_little} pipelines"
            )
        if len(self.big_tasks) != accel.num_big:
            raise ValueError(
                f"{len(self.big_tasks)} Big task lists for "
                f"{accel.num_big} pipelines"
            )
        for tasks in self.little_tasks:
            for task in tasks:
                p = task.partition
                if p.num_edges and (
                    p.dst.min() < p.vertex_lo or p.dst.max() >= p.vertex_hi
                ):
                    raise ValueError(
                        f"Little task on partition {p.index} has edges "
                        "outside its destination interval"
                    )
        for tasks in self.big_tasks:
            for task in tasks:
                if len(task.partitions) > accel.pipeline.n_gpe:
                    raise ValueError(
                        f"Big task covers {len(task.partitions)} partitions "
                        f"(> N_gpe = {accel.pipeline.n_gpe})"
                    )
                bases = [p.vertex_lo for p in task.partitions]
                if bases != sorted(bases) or len(set(bases)) != len(bases):
                    raise ValueError(
                        "Big task partition bases must be strictly ascending"
                    )
        if expected_edges is not None and self.total_edges() != expected_edges:
            raise ValueError(
                f"plan covers {self.total_edges()} edges, expected "
                f"{expected_edges}"
            )
