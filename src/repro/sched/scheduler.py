"""End-to-end model-guided scheduler (Sec. IV-B).

``build_schedule`` runs the full offline flow once per (graph, app) pair:

1. estimate every partition on both pipeline types (the estimates are
   produced during partitioning, so this is the only edge enumeration);
2. classify partitions dense/sparse and pick the pipeline combination
   (M, N) — unless a combination is forced, as the Fig. 10 sweep does;
3. merge sparse partitions into ``N_gpe``-sized groups and cut both
   clusters' work into equal-time per-pipeline task lists.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.config import AcceleratorConfig
from repro.graph.partition import PartitionSet
from repro.model.perf import PerformanceModel
from repro.sched.inter import choose_pipeline_combination, classify_partitions
from repro.sched.intra import (
    DEFAULT_WINDOW_EDGES,
    merge_sparse_groups,
    split_dense_for_little,
    split_groups_for_big,
)
from repro.sched.plan import SchedulingPlan


def build_schedule(
    pset: PartitionSet,
    model: PerformanceModel,
    num_pipelines: int,
    forced_combo: Optional[Tuple[int, int]] = None,
    window_edges: int = DEFAULT_WINDOW_EDGES,
) -> SchedulingPlan:
    """Produce the static scheduling plan for a partitioned graph.

    ``forced_combo`` pins (M, N) — used to sweep all combinations in the
    heterogeneity study; classification then respects the forced cluster
    sizes (everything goes to the only cluster when one count is zero).
    """
    partitions = pset.nonempty()
    dense_idx, sparse_idx, t_little, t_big = classify_partitions(
        partitions, model
    )

    if forced_combo is not None:
        num_little, num_big = forced_combo
        if num_little + num_big != num_pipelines:
            raise ValueError(
                f"forced combo {forced_combo} does not sum to "
                f"{num_pipelines} pipelines"
            )
        if num_little == 0:
            sparse_idx = sorted(dense_idx + sparse_idx)
            dense_idx = []
        elif num_big == 0:
            dense_idx = sorted(dense_idx + sparse_idx)
            sparse_idx = []
    else:
        dense_time = sum(t_little[i] for i in dense_idx)
        sparse_time = sum(t_big[i] for i in sparse_idx)
        num_little, num_big = choose_pipeline_combination(
            dense_time, sparse_time, num_pipelines
        )
        # A cluster that lost its pipelines sends its work to the other.
        if num_little == 0 and dense_idx:
            sparse_idx = sorted(dense_idx + sparse_idx)
            dense_idx = []
        if num_big == 0 and sparse_idx:
            dense_idx = sorted(dense_idx + sparse_idx)
            sparse_idx = []

    accel = AcceleratorConfig(
        num_little=num_little, num_big=num_big, pipeline=model.config
    )

    dense_parts = [partitions[i] for i in dense_idx]
    sparse_parts = [partitions[i] for i in sparse_idx]

    little_tasks = split_dense_for_little(
        dense_parts, num_little, model, window_edges
    )
    groups = merge_sparse_groups(sparse_parts, model.config.n_gpe)
    big_tasks = split_groups_for_big(groups, num_big, model, window_edges)

    return SchedulingPlan(
        accelerator=accel,
        little_tasks=little_tasks,
        big_tasks=big_tasks,
        dense_indices=[partitions[i].index for i in dense_idx],
        sparse_indices=[partitions[i].index for i in sparse_idx],
    )
