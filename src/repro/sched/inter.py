"""Inter-cluster task scheduling (Sec. IV-B, Fig. 7a).

Step one marks each partition dense or sparse: *"a partition is marked as
a sparse partition if the estimated execution time on the Big pipeline is
shorter than that on the Little pipeline, otherwise marked as a dense
partition"*.  Step two picks the pipeline split (M Little, N Big) with
``M + N = N_pip`` minimising the imbalance between the two clusters'
total estimated times.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.partition import Partition
from repro.model.perf import PerformanceModel


def classify_partitions(
    partitions: Sequence[Partition],
    model: PerformanceModel,
) -> Tuple[List[int], List[int], List[float], List[float]]:
    """Split partitions into dense and sparse sets by modelled time.

    Two phases:

    1. per-partition comparison: sparse if the Big estimate (with the
       gather bound amortised over a balanced ``N_gpe`` group) beats the
       Little estimate;
    2. group refinement: sparse partitions will execute as merged
       ``N_gpe`` groups, so each prospective group is re-estimated as a
       group.  A group whose Big time exceeds the Little alternative is
       dominated by a too-heavy partition (its Gather PE serialises);
       that partition is evicted to the dense set and grouping repeats.

    Returns ``(dense_idx, sparse_idx, t_little, t_big)`` where the index
    lists refer to positions in ``partitions``.
    """
    dense, sparse = [], []
    t_little, t_big = [], []
    for i, partition in enumerate(partitions):
        tl = model.estimate_partition(partition, "little")
        tb = model.estimate_partition(partition, "big")
        t_little.append(tl)
        t_big.append(tb)
        if tb < tl:
            sparse.append(i)
        else:
            dense.append(i)

    n_gpe = model.config.n_gpe
    while sparse:
        evicted = None
        for lo in range(0, len(sparse), n_gpe):
            group = sparse[lo : lo + n_gpe]
            group_big = model.estimate_big_group(
                [partitions[i].src for i in group]
            )
            group_little = sum(t_little[i] for i in group)
            if group_little < group_big:
                evicted = max(group, key=lambda i: partitions[i].num_edges)
                break
        if evicted is None:
            break
        sparse.remove(evicted)
        dense.append(evicted)
    dense.sort()
    return dense, sparse, t_little, t_big


def choose_pipeline_combination(
    dense_time: float,
    sparse_time: float,
    num_pipelines: int,
) -> Tuple[int, int]:
    """Pick (M, N) minimising ``|dense_time / M - sparse_time / N|``.

    Each cluster with work gets at least one pipeline; a cluster with no
    work gets zero.  Ties break toward more Big pipelines (sparse
    partitions are the long tail on real graphs).
    """
    if num_pipelines < 1:
        raise ValueError("need at least one pipeline")
    if dense_time <= 0 and sparse_time <= 0:
        return num_pipelines, 0
    if dense_time <= 0:
        return 0, num_pipelines
    if sparse_time <= 0:
        return num_pipelines, 0
    if num_pipelines == 1:
        # One pipeline cannot host two clusters; give it to the bigger load.
        return (1, 0) if dense_time >= sparse_time else (0, 1)

    best = None
    for m in range(1, num_pipelines):
        n = num_pipelines - m
        gap = abs(dense_time / m - sparse_time / n)
        if best is None or gap < best[0]:
            best = (gap, m, n)
    return best[1], best[2]
