"""Scheduling-plan serialization.

The task scheduler "runs offline and only once to generate a static
scheduling plan for a graph on an application" (Sec. IV-B) — so the plan
is an artifact worth persisting.  Plans serialise to JSON describing the
accelerator choice, the dense/sparse split and every task's edge range;
deserialisation rebuilds the plan against the original partition set
(edge data itself is not duplicated into the file).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.graph.partition import Partition, PartitionSet
from repro.sched.plan import BigTask, LittleTask, SchedulingPlan


def _edge_range(parent: Partition, sub: Partition):
    """Locate a slice's [lo, hi) edge range inside its parent partition."""
    if sub.num_edges == 0:
        return 0, 0
    lo = int(
        np.searchsorted(parent.src, sub.src[0], side="left")
    )
    # Advance past equal-src edges that precede the slice's first edge.
    while lo < parent.num_edges and not (
        parent.src[lo] == sub.src[0] and parent.dst[lo] == sub.dst[0]
    ):
        lo += 1
    return lo, lo + sub.num_edges


def plan_to_dict(plan: SchedulingPlan) -> dict:
    """JSON-serialisable description of a plan."""
    def little_entry(task: LittleTask):
        return {
            "partition": task.partition.index,
            "edges": task.partition.num_edges,
            "estimated_cycles": task.estimated_cycles,
        }

    def big_entry(task: BigTask):
        return {
            "partitions": [p.index for p in task.partitions],
            "edges": [p.num_edges for p in task.partitions],
            "estimated_cycles": task.estimated_cycles,
        }

    return {
        "accelerator": {
            "num_little": plan.accelerator.num_little,
            "num_big": plan.accelerator.num_big,
            "n_spe": plan.accelerator.pipeline.n_spe,
            "n_gpe": plan.accelerator.pipeline.n_gpe,
            "gather_buffer_vertices": (
                plan.accelerator.pipeline.gather_buffer_vertices
            ),
        },
        "dense_indices": list(plan.dense_indices),
        "sparse_indices": list(plan.sparse_indices),
        "little_tasks": [
            [little_entry(t) for t in tasks] for tasks in plan.little_tasks
        ],
        "big_tasks": [
            [big_entry(t) for t in tasks] for tasks in plan.big_tasks
        ],
        "total_edges": plan.total_edges(),
    }


def save_plan(plan: SchedulingPlan, path: Union[str, Path]) -> Path:
    """Write a plan summary as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2))
    return path


def load_plan_summary(path: Union[str, Path]) -> dict:
    """Read back a serialized plan summary."""
    return json.loads(Path(path).read_text())


def verify_plan_against(
    summary: dict, pset: PartitionSet, accelerator: AcceleratorConfig
) -> bool:
    """Check a stored summary is consistent with a partition set.

    Used when re-deploying a cached plan: the accelerator shape must
    match and the edge totals must equal the freshly partitioned graph's.
    """
    acc = summary["accelerator"]
    pipeline: PipelineConfig = accelerator.pipeline
    if (acc["num_little"], acc["num_big"]) != (
        accelerator.num_little,
        accelerator.num_big,
    ):
        return False
    if acc["gather_buffer_vertices"] != pipeline.gather_buffer_vertices:
        return False
    total = sum(p.num_edges for p in pset.nonempty())
    return summary["total_edges"] == total
