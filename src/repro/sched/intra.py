"""Intra-cluster task scheduling (Sec. IV-B, Fig. 7b).

Pipelines within a cluster process partitions cooperatively, so partitions
are cut into sub-partitions of near-equal *estimated execution time* — not
equal edge counts, which the paper shows leaves pipelines unbalanced on
irregular graphs.  Cuts are found at window granularity (a fixed number of
edges) so boundaries come out of one prefix-sum scan.

For the Big cluster, every ``N_gpe`` sparse partitions are first merged
into a large sparse partition (one execution's worth); cutting a merged
group hands each Big pipeline a *source-range slice* of the same
destination intervals, and the Big merger combines their buffers.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.partition import Partition
from repro.model.perf import PerformanceModel
from repro.sched.plan import BigTask, LittleTask
from repro.utils.prefix import balanced_chunk_bounds

#: Edges per scheduling window (Sec. IV-B estimates time per window).
DEFAULT_WINDOW_EDGES = 1024


def split_dense_for_little(
    dense: Sequence[Partition],
    num_pipelines: int,
    model: PerformanceModel,
    window_edges: int = DEFAULT_WINDOW_EDGES,
) -> List[List[LittleTask]]:
    """Cut dense partitions into per-pipeline task lists of ~equal time.

    Windows of all dense partitions form one weighted sequence which is
    split into ``num_pipelines`` contiguous chunks; chunk boundaries
    falling inside a partition produce sub-partition slices.
    """
    if num_pipelines < 1:
        return []
    assignments: List[List[LittleTask]] = [[] for _ in range(num_pipelines)]
    if not dense:
        return assignments

    # Per-window weights, tagged with (partition ordinal, local edge lo).
    # Built with repeat/concatenate instead of a per-window Python loop:
    # window counts per partition expand directly into the owner and
    # local-offset columns.
    per_partition = [
        model.window_weights(p.src, "little", window_edges) for p in dense
    ]
    counts = np.array([w.size for w in per_partition], dtype=np.int64)
    weights = (
        np.concatenate(per_partition) if per_partition else np.zeros(0)
    )
    owner = np.repeat(np.arange(len(dense), dtype=np.int64), counts)
    local_lo = (
        np.concatenate(
            [np.arange(c, dtype=np.int64) for c in counts]
        ) * window_edges
        if counts.size
        else np.zeros(0, dtype=np.int64)
    )
    bounds = balanced_chunk_bounds(weights, num_pipelines)
    # Starts of owner runs, so chunks walk per-run instead of per-window.
    run_starts = np.flatnonzero(np.diff(owner)) + 1

    for pipe in range(num_pipelines):
        lo_w, hi_w = int(bounds[pipe]), int(bounds[pipe + 1])
        if hi_w <= lo_w:
            continue
        # Group this chunk's windows by owning partition and slice once
        # per (partition, contiguous window run).
        inner = run_starts[
            (run_starts > lo_w) & (run_starts < hi_w)
        ]
        starts = [lo_w] + [int(s) for s in inner]
        ends = starts[1:] + [hi_w]
        for w, run_end in zip(starts, ends):
            ordinal = int(owner[w])
            partition = dense[ordinal]
            edge_lo = int(local_lo[w])
            edge_hi = (
                partition.num_edges
                if run_end == owner.size or owner[run_end] != ordinal
                else int(local_lo[run_end])
            )
            edge_hi = min(edge_hi, partition.num_edges)
            sub = partition.slice(edge_lo, edge_hi)
            est = model.estimate_little_execution(sub.src)
            assignments[pipe].append(LittleTask(sub, est))
    return assignments


def merge_sparse_groups(
    sparse: Sequence[Partition],
    group_size: int,
) -> List[List[Partition]]:
    """Merge every ``group_size`` sparse partitions into one group.

    Groups preserve ascending destination-interval order, which the Big
    pipeline's Gather PE base lookup requires.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    ordered = sorted(sparse, key=lambda p: p.vertex_lo)
    return [
        ordered[i : i + group_size]
        for i in range(0, len(ordered), group_size)
    ]


def _slice_group_by_src(
    group: Sequence[Partition],
    src_lo: int,
    src_hi: int,
) -> List[Partition]:
    """Slice every partition of a group to edges with src in [lo, hi)."""
    out = []
    for partition in group:
        lo = int(np.searchsorted(partition.src, src_lo, side="left"))
        hi = int(np.searchsorted(partition.src, src_hi, side="left"))
        out.append(partition.slice(lo, hi))
    return out


def split_groups_for_big(
    groups: Sequence[Sequence[Partition]],
    num_pipelines: int,
    model: PerformanceModel,
    window_edges: int = DEFAULT_WINDOW_EDGES,
) -> List[List[BigTask]]:
    """Distribute merged sparse groups over Big pipelines by modelled time.

    The window sequence of all groups (in merged ascending-source order)
    is split into ``num_pipelines`` chunks.  A chunk boundary inside a
    group becomes a source-range cut: each pipeline executes the same
    destination intervals over disjoint source ranges.
    """
    if num_pipelines < 1:
        return []
    assignments: List[List[BigTask]] = [[] for _ in range(num_pipelines)]
    if not groups:
        return assignments

    merged_srcs = []
    group_weights = []
    for group in groups:
        src = np.sort(np.concatenate([p.src for p in group]))
        merged_srcs.append(src)
        group_weights.append(
            model.window_weights(src, "big", window_edges)
        )

    # Global window sequence across groups.
    weights = (
        np.concatenate(group_weights)
        if group_weights
        else np.zeros(0)
    )
    group_of_window = np.concatenate(
        [np.full(w.size, gi) for gi, w in enumerate(group_weights)]
    )
    first_window = np.concatenate(
        ([0], np.cumsum([w.size for w in group_weights])[:-1])
    )
    bounds = balanced_chunk_bounds(weights, num_pipelines)
    # Starts of group runs, so chunks walk per-run instead of per-window.
    run_starts = np.flatnonzero(np.diff(group_of_window)) + 1

    for pipe in range(num_pipelines):
        lo_w, hi_w = int(bounds[pipe]), int(bounds[pipe + 1])
        inner = run_starts[(run_starts > lo_w) & (run_starts < hi_w)]
        starts = [lo_w] + [int(s) for s in inner] if hi_w > lo_w else []
        ends = starts[1:] + [hi_w] if starts else []
        for w, run_end in zip(starts, ends):
            gi = int(group_of_window[w])
            src = merged_srcs[gi]
            edge_lo = int(w - first_window[gi]) * window_edges
            if (
                run_end < group_of_window.size
                and group_of_window[run_end] == gi
            ):
                edge_hi = int(run_end - first_window[gi]) * window_edges
            else:
                edge_hi = src.size
            edge_hi = min(edge_hi, src.size)
            src_lo = int(src[edge_lo]) if edge_lo < src.size else int(src[-1]) + 1
            src_hi = int(src[edge_hi]) if edge_hi < src.size else int(src[-1]) + 1
            sliced = _slice_group_by_src(groups[gi], src_lo, src_hi)
            if sum(p.num_edges for p in sliced):
                est = model.estimate_big_group([p.src for p in sliced])
                assignments[pipe].append(BigTask(list(sliced), est))
    return assignments
