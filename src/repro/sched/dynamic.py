"""Dynamic (work-stealing) scheduling — an ablation of the static plan.

ReGraph's plan is *static*: the model assigns every task to a pipeline
offline.  A natural question is how much a dynamic runtime — pipelines
pulling the next task from a shared queue when they go idle — would gain
or lose.  This module simulates exactly that, using the same cycle-level
task timings, so the comparison isolates the scheduling policy:

* static = zero runtime coordination, quality depends on the model;
* dynamic = perfect load information, but each pull still pays the
  partition-switch handshake and tasks cannot be split further online.

The paper's implicit claim is that model-guided static cuts make dynamic
scheduling unnecessary; the comparison bench quantifies the gap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.hbm.channel import HbmChannelModel
from repro.sched.plan import SchedulingPlan

#: Extra cycles per dynamic task pull (host/queue handshake).
DYNAMIC_PULL_OVERHEAD = 500.0


@dataclass(frozen=True)
class ClusterSchedule:
    """Outcome of scheduling one cluster's tasks over its pipelines."""

    pipeline_finish: Tuple[float, ...]

    @property
    def makespan(self) -> float:
        """Completion time of the slowest pipeline."""
        return max(self.pipeline_finish) if self.pipeline_finish else 0.0


def _simulate_queue(
    durations: Sequence[float],
    num_pipelines: int,
    pull_overhead: float,
) -> ClusterSchedule:
    """Greedy list scheduling: idle pipeline pulls the next queued task."""
    if num_pipelines < 1:
        return ClusterSchedule(pipeline_finish=())
    finish = [0.0] * num_pipelines
    heap = [(0.0, i) for i in range(num_pipelines)]
    heapq.heapify(heap)
    for duration in durations:
        t, i = heapq.heappop(heap)
        t += duration + pull_overhead
        finish[i] = t
        heapq.heappush(heap, (t, i))
    return ClusterSchedule(pipeline_finish=tuple(finish))


def dynamic_makespan(
    plan: SchedulingPlan,
    channel: Optional[HbmChannelModel] = None,
    longest_first: bool = True,
    pull_overhead: float = DYNAMIC_PULL_OVERHEAD,
) -> float:
    """Iteration makespan if the plan's tasks were scheduled dynamically.

    Tasks keep the static plan's granularity (sub-partition cuts are an
    offline product); only the task-to-pipeline mapping becomes online.
    ``longest_first`` sorts the queue by measured duration — the classic
    LPT heuristic an informed runtime would use.
    """
    channel = channel or HbmChannelModel()
    config = plan.accelerator.pipeline
    little = LittlePipelineSim(config, channel)
    big = BigPipelineSim(config, channel)

    little_durations: List[float] = [
        little.execute(task.partition)[0].total_cycles
        for tasks in plan.little_tasks
        for task in tasks
    ]
    big_durations: List[float] = [
        big.execute(task.partitions)[0].total_cycles
        for tasks in plan.big_tasks
        for task in tasks
    ]
    if longest_first:
        little_durations.sort(reverse=True)
        big_durations.sort(reverse=True)

    little_sched = _simulate_queue(
        little_durations, plan.accelerator.num_little, pull_overhead
    )
    big_sched = _simulate_queue(
        big_durations, plan.accelerator.num_big, pull_overhead
    )
    return max(little_sched.makespan, big_sched.makespan)


def static_makespan(
    plan: SchedulingPlan,
    channel: Optional[HbmChannelModel] = None,
) -> float:
    """Measured (cycle-simulated) makespan of the static plan itself."""
    channel = channel or HbmChannelModel()
    config = plan.accelerator.pipeline
    little = LittlePipelineSim(config, channel)
    big = BigPipelineSim(config, channel)
    finish = []
    for tasks in plan.little_tasks:
        finish.append(
            sum(little.execute(t.partition)[0].total_cycles for t in tasks)
        )
    for tasks in plan.big_tasks:
        finish.append(
            sum(big.execute(t.partitions)[0].total_cycles for t in tasks)
        )
    return max(finish) if finish else 0.0
