"""Model-guided task scheduling (Sec. IV-B).

Inter-cluster scheduling classifies every partition as dense or sparse by
comparing its estimated execution time on the two pipeline types, then
picks the Little/Big pipeline split (M, N) that balances the two clusters.
Intra-cluster scheduling cuts the work into sub-partitions of near-equal
*estimated time* (not equal edge counts) at window granularity.  The
result is a static :class:`~repro.sched.plan.SchedulingPlan` computed once
per (graph, application) pair.
"""

from repro.sched.plan import BigTask, LittleTask, SchedulingPlan
from repro.sched.inter import (
    choose_pipeline_combination,
    classify_partitions,
)
from repro.sched.intra import (
    merge_sparse_groups,
    split_dense_for_little,
    split_groups_for_big,
)
from repro.sched.scheduler import build_schedule
from repro.sched.dynamic import dynamic_makespan, static_makespan
from repro.sched.serialize import load_plan_summary, plan_to_dict, save_plan
from repro.sched.batch import BatchSchedule, naive_batch, plan_batch

__all__ = [
    "BigTask",
    "LittleTask",
    "SchedulingPlan",
    "classify_partitions",
    "choose_pipeline_combination",
    "merge_sparse_groups",
    "split_dense_for_little",
    "split_groups_for_big",
    "build_schedule",
    "dynamic_makespan",
    "static_makespan",
    "load_plan_summary",
    "plan_to_dict",
    "save_plan",
    "BatchSchedule",
    "naive_batch",
    "plan_batch",
]
