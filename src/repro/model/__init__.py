"""Analytic performance model (Sec. IV-A) and the roofline of Fig. 13.

The model estimates per-partition execution cycles of Big and Little
pipelines by enumerating edges (Eq. 1-4).  It is deliberately *independent
code* from the cycle-level simulators in :mod:`repro.arch`; the Fig. 9
bench cross-validates the two, reproducing the paper's 4%/6% average error
claim.
"""

from repro.model.perf import PerformanceModel
from repro.model.calibrate import calibrate_performance_model
from repro.model.roofline import RooflinePoint, resource_roofline_bounds
from repro.model.bottleneck import (
    BottleneckBreakdown,
    attribute_partition,
    compare_pipeline_choice,
)
from repro.model.sweep import SweepPoint, sensitivity_report, sweep_parameter

__all__ = [
    "PerformanceModel",
    "calibrate_performance_model",
    "RooflinePoint",
    "resource_roofline_bounds",
    "BottleneckBreakdown",
    "attribute_partition",
    "compare_pipeline_choice",
    "SweepPoint",
    "sensitivity_report",
    "sweep_parameter",
]
