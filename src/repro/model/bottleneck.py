"""Bottleneck attribution for pipeline executions.

Decomposes a partition's modelled time into which Eq. 1 term binds each
edge — edge supply, vertex access, gather serialisation — plus the fixed
store/switch overheads, answering "why is this partition slow on this
pipeline type?".  Used by the analysis bench and by users tuning pipeline
parameters (PE counts, buffer sizes) for their graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.coo import EDGE_BYTES
from repro.graph.partition import Partition
from repro.hbm.channel import BLOCK_BYTES
from repro.model.perf import PerformanceModel


@dataclass(frozen=True)
class BottleneckBreakdown:
    """Cycle attribution of one partition on one pipeline type."""

    kind: str
    edge_supply_cycles: float
    vertex_access_cycles: float
    gather_cycles: float
    fixed_cycles: float

    @property
    def total_cycles(self) -> float:
        """Sum of all attributed cycles (== the model's estimate)."""
        return (
            self.edge_supply_cycles
            + self.vertex_access_cycles
            + self.gather_cycles
            + self.fixed_cycles
        )

    @property
    def dominant(self) -> str:
        """Name of the largest component."""
        parts = {
            "edge_supply": self.edge_supply_cycles,
            "vertex_access": self.vertex_access_cycles,
            "gather": self.gather_cycles,
            "fixed": self.fixed_cycles,
        }
        return max(parts, key=parts.get)

    def fractions(self) -> dict:
        """Each component as a fraction of the total."""
        total = max(self.total_cycles, 1e-12)
        return {
            "edge_supply": self.edge_supply_cycles / total,
            "vertex_access": self.vertex_access_cycles / total,
            "gather": self.gather_cycles / total,
            "fixed": self.fixed_cycles / total,
        }


def attribute_partition(
    partition: Partition,
    model: PerformanceModel,
    kind: str,
) -> BottleneckBreakdown:
    """Attribute a partition's modelled cycles to Eq. 1's terms.

    The per-edge ``max`` is split by which term wins it: edges bound by
    ``C_acs_e``/``C_proc`` count as edge supply; edges whose vertex
    access exceeds the floor count their excess as vertex access.  For
    the Big pipeline, the gather bound's excess over the supply total is
    attributed to gather serialisation.
    """
    if kind not in ("big", "little"):
        raise ValueError(f"kind must be 'big' or 'little', got {kind!r}")
    src = partition.src
    floor = max(
        EDGE_BYTES / BLOCK_BYTES, model.config.proc_cycles_per_edge
    )
    if kind == "big":
        costs = model.edge_costs_big(src)
        fixed = model.const_big / model.config.n_gpe
    else:
        costs = model.edge_costs_little(src)
        fixed = model.const_little
    edge_supply = float(np.minimum(costs, floor).sum())
    vertex_access = float(np.maximum(costs - floor, 0.0).sum())

    gather = 0.0
    if kind == "big":
        supply_total = edge_supply + vertex_access
        gather_bound = (
            partition.num_edges
            * model.config.ii_gpe
            / model.config.n_gpe
        )
        gather = max(gather_bound - supply_total, 0.0)
    return BottleneckBreakdown(
        kind=kind,
        edge_supply_cycles=edge_supply,
        vertex_access_cycles=vertex_access,
        gather_cycles=gather,
        fixed_cycles=fixed,
    )


def compare_pipeline_choice(
    partition: Partition, model: PerformanceModel
) -> dict:
    """Side-by-side attribution explaining the dense/sparse decision."""
    little = attribute_partition(partition, model, "little")
    big = attribute_partition(partition, model, "big")
    return {
        "partition": partition.index,
        "edges": partition.num_edges,
        "little": little,
        "big": big,
        "preferred": "little" if little.total_cycles <= big.total_cycles
        else "big",
    }
