"""Design-space sensitivity sweeps over pipeline parameters.

The accelerator generator fixes its parameters once per platform
(Sec. V-D: "it tunes the numbers of Scatter and Gather PEs to fully
utilize the memory bandwidth of a memory channel").  This module answers
the next architect's question — *how sensitive is performance to each
knob?* — by sweeping one :class:`PipelineConfig` field at a time and
re-estimating the scheduled makespan with the analytic model.

Parameters swept: PE counts (``n_spe``/``n_gpe``), the Gather buffer
size (which also changes the partition count!), the Ping-Pong Buffer
size and the partition-switch overhead.

Every point is an independent pure function of (graph, config,
parameter, value), so sweeps fan out over worker processes when a
:class:`~repro.perf.config.PerfConfig` with ``workers > 1`` is passed —
results come back in value order either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.arch.config import PipelineConfig
from repro.graph.coo import Graph
from repro.graph.partition import partition_graph
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model
from repro.perf.config import PerfConfig
from repro.perf.parallel import parallel_map


@dataclass(frozen=True)
class SweepPoint:
    """One parameter setting's outcome."""

    parameter: str
    value: int
    makespan_cycles: float
    num_partitions: int
    combo_label: str

    def speedup_over(self, other: "SweepPoint") -> float:
        """Makespan ratio other/self (>1 means this point is faster)."""
        return other.makespan_cycles / max(self.makespan_cycles, 1e-9)


def _sweep_point(task: tuple) -> SweepPoint:
    """Evaluate one (graph, config, parameter, value) setting.

    Top-level (picklable) so :func:`~repro.perf.parallel.parallel_map`
    can dispatch points to worker processes.
    """
    # Imported here: repro.sched pulls the performance model back in,
    # which would cycle at package-import time.
    from repro.sched.scheduler import build_schedule

    graph, base_config, parameter, value, num_pipelines, channel = task
    config = replace(base_config, **{parameter: value})
    model = calibrate_performance_model(config, channel)
    pset = partition_graph(graph, config.partition_vertices)
    plan = build_schedule(pset, model, num_pipelines)
    return SweepPoint(
        parameter=parameter,
        value=int(value),
        makespan_cycles=plan.estimated_makespan,
        num_partitions=len(pset.nonempty()),
        combo_label=plan.accelerator.label,
    )


def sweep_parameter(
    graph: Graph,
    base_config: PipelineConfig,
    parameter: str,
    values: Sequence[int],
    num_pipelines: int = 8,
    channel: HbmChannelModel = None,
    perf: Optional[PerfConfig] = None,
) -> List[SweepPoint]:
    """Estimate scheduled makespan across settings of one parameter.

    Re-partitions and re-calibrates per point when the parameter affects
    partitioning (``gather_buffer_vertices``); otherwise reuses the
    partition set.  Uses modelled (not simulated) cycles, so whole sweeps
    stay cheap enough for interactive use.
    """
    if not hasattr(base_config, parameter):
        raise ValueError(f"unknown PipelineConfig field {parameter!r}")
    channel = channel or HbmChannelModel()
    workers = 1
    if perf is not None:
        perf.apply()
        workers = perf.workers
    tasks = [
        (graph, base_config, parameter, int(value), num_pipelines, channel)
        for value in values
    ]
    return parallel_map(_sweep_point, tasks, workers=workers, perf=perf)


def sensitivity_report(
    graph: Graph,
    base_config: PipelineConfig,
    num_pipelines: int = 8,
    channel: HbmChannelModel = None,
    perf: Optional[PerfConfig] = None,
) -> Dict[str, List[SweepPoint]]:
    """Sweep the standard knobs around their Sec. VI-A defaults.

    All (parameter, value) points of all sweeps form one flat work list
    so a worker pool stays busy across parameter boundaries; points are
    regrouped per parameter in value order afterwards.
    """
    channel = channel or HbmChannelModel()
    workers = 1
    if perf is not None:
        perf.apply()
        workers = perf.workers
    buffer_base = base_config.gather_buffer_vertices
    sweeps = {
        "n_spe": [2, 4, 8, 16],
        "n_gpe": [2, 4, 8, 16],
        "gather_buffer_vertices": [
            buffer_base // 4, buffer_base // 2, buffer_base, buffer_base * 2
        ],
        "pingpong_bytes": [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024],
    }
    tasks = [
        (graph, base_config, name, int(value), num_pipelines, channel)
        for name, values in sweeps.items()
        for value in values
    ]
    points = parallel_map(_sweep_point, tasks, workers=workers, perf=perf)
    report: Dict[str, List[SweepPoint]] = {name: [] for name in sweeps}
    for point in points:
        report[point.parameter].append(point)
    return report
