"""Design-space sensitivity sweeps over pipeline parameters.

The accelerator generator fixes its parameters once per platform
(Sec. V-D: "it tunes the numbers of Scatter and Gather PEs to fully
utilize the memory bandwidth of a memory channel").  This module answers
the next architect's question — *how sensitive is performance to each
knob?* — by sweeping one :class:`PipelineConfig` field at a time and
re-estimating the scheduled makespan with the analytic model.

Parameters swept: PE counts (``n_spe``/``n_gpe``), the Gather buffer
size (which also changes the partition count!), the Ping-Pong Buffer
size and the partition-switch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.arch.config import PipelineConfig
from repro.graph.coo import Graph
from repro.graph.partition import partition_graph
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model


@dataclass(frozen=True)
class SweepPoint:
    """One parameter setting's outcome."""

    parameter: str
    value: int
    makespan_cycles: float
    num_partitions: int
    combo_label: str

    def speedup_over(self, other: "SweepPoint") -> float:
        """Makespan ratio other/self (>1 means this point is faster)."""
        return other.makespan_cycles / max(self.makespan_cycles, 1e-9)


def sweep_parameter(
    graph: Graph,
    base_config: PipelineConfig,
    parameter: str,
    values: Sequence[int],
    num_pipelines: int = 8,
    channel: HbmChannelModel = None,
) -> List[SweepPoint]:
    """Estimate scheduled makespan across settings of one parameter.

    Re-partitions and re-calibrates per point when the parameter affects
    partitioning (``gather_buffer_vertices``); otherwise reuses the
    partition set.  Uses modelled (not simulated) cycles, so whole sweeps
    stay cheap enough for interactive use.
    """
    # Imported here: repro.sched pulls the performance model back in,
    # which would cycle at package-import time.
    from repro.sched.scheduler import build_schedule

    if not hasattr(base_config, parameter):
        raise ValueError(f"unknown PipelineConfig field {parameter!r}")
    channel = channel or HbmChannelModel()
    points = []
    for value in values:
        config = replace(base_config, **{parameter: value})
        model = calibrate_performance_model(config, channel)
        pset = partition_graph(graph, config.partition_vertices)
        plan = build_schedule(pset, model, num_pipelines)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=int(value),
                makespan_cycles=plan.estimated_makespan,
                num_partitions=len(pset.nonempty()),
                combo_label=plan.accelerator.label,
            )
        )
    return points


def sensitivity_report(
    graph: Graph,
    base_config: PipelineConfig,
    num_pipelines: int = 8,
    channel: HbmChannelModel = None,
) -> Dict[str, List[SweepPoint]]:
    """Sweep the standard knobs around their Sec. VI-A defaults."""
    buffer_base = base_config.gather_buffer_vertices
    sweeps = {
        "n_spe": [2, 4, 8, 16],
        "n_gpe": [2, 4, 8, 16],
        "gather_buffer_vertices": [
            buffer_base // 4, buffer_base // 2, buffer_base, buffer_base * 2
        ],
        "pingpong_bytes": [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024],
    }
    return {
        name: sweep_parameter(
            graph, base_config, name, values, num_pipelines, channel
        )
        for name, values in sweeps.items()
    }
