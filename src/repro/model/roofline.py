"""Resource-centric roofline model (Fig. 13).

Classic rooflines plot performance against operational intensity; the
paper's variant plots absolute performance (GTEPS, y) against *resource
efficiency* (GTEPS per unit of logic, x).  Horizontal lines are memory
bandwidth bounds, diagonals are resource bounds: a design consuming a
fraction ``r`` of the device's LUTs with efficiency ``e`` can reach at most
``e * r * total_resource``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.coo import EDGE_BYTES


@dataclass(frozen=True)
class RooflinePoint:
    """One design plotted on the resource-centric roofline."""

    name: str
    gteps: float
    lut_fraction: float
    platform: str

    @property
    def resource_efficiency(self) -> float:
        """GTEPS per fraction-of-device-LUTs — the x axis of Fig. 13."""
        return self.gteps / max(self.lut_fraction, 1e-9)

    def speedup_over(self, other: "RooflinePoint") -> float:
        """Throughput ratio vs another design."""
        return self.gteps / max(other.gteps, 1e-12)

    def efficiency_over(self, other: "RooflinePoint") -> float:
        """Resource-efficiency ratio vs another design (the 12x claim)."""
        return self.resource_efficiency / max(
            other.resource_efficiency, 1e-12
        )


def bandwidth_bound_gteps(bandwidth_gbs: float) -> float:
    """Horizontal roofline: edge throughput if bandwidth were the only
    limit (every edge moves at least one 8-byte record)."""
    return bandwidth_gbs / EDGE_BYTES


def resource_bound_gteps(
    efficiency: float, lut_fraction_available: float = 0.8
) -> float:
    """Diagonal roofline: performance reachable at a given efficiency
    before hitting the practical 80% LUT ceiling."""
    return efficiency * lut_fraction_available


def resource_roofline_bounds(
    points: List[RooflinePoint],
    platform_bandwidths: Dict[str, float],
    port_bounds: Dict[str, float] = None,
) -> Dict[str, dict]:
    """Classify each design as bandwidth-, resource- or port-bounded.

    ``port_bounds`` optionally caps named designs at the throughput their
    memory-port budget allows.  Existing works are resource bounded on
    U280, while ReGraph — whose pipelines fit comfortably — runs into the
    memory-port limit first (Sec. VI-G: "ReGraph is currently bounded by
    memory ports").
    """
    port_bounds = port_bounds or {}
    out = {}
    for point in points:
        bounds = {
            "bandwidth": bandwidth_bound_gteps(
                platform_bandwidths.get(point.platform, 460.0)
            ),
            "resource": resource_bound_gteps(point.resource_efficiency),
        }
        if point.name in port_bounds:
            bounds["port"] = port_bounds[point.name]
        binding = min(bounds, key=bounds.get)
        out[point.name] = {
            "gteps": point.gteps,
            "efficiency": point.resource_efficiency,
            "bandwidth_bound": bounds["bandwidth"],
            "resource_bound": bounds["resource"],
            "port_bound": bounds.get("port"),
            "binding": binding,
        }
    return out
