"""Model-validation harness: error statistics over a graph matrix.

Fig. 9 validates the analytic model on four graphs; this harness
generalises the experiment: draw a matrix of synthetic graphs spanning
skew classes and sizes, compare the model's per-partition / per-group
estimates against the cycle-level simulators, and summarise the error
distribution (mean, p95, worst case, bias).  A reproduction that
silently drifted would fail the error-band assertions built on top of
this harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.config import PipelineConfig
from repro.arch.little_pipeline import LittlePipelineSim
from repro.graph.coo import Graph
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model


@dataclass(frozen=True)
class ErrorStats:
    """Summary of relative errors |est - sim| / sim."""

    kind: str
    count: int
    mean: float
    p95: float
    worst: float
    #: signed mean of (est - sim) / sim; positive = model overestimates.
    bias: float

    @classmethod
    def from_samples(cls, kind: str, errors: np.ndarray, signed: np.ndarray):
        if errors.size == 0:
            return cls(kind, 0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            kind=kind,
            count=int(errors.size),
            mean=float(errors.mean()),
            p95=float(np.percentile(errors, 95)),
            worst=float(errors.max()),
            bias=float(signed.mean()),
        )


def validate_model_on_graph(
    graph: Graph,
    config: PipelineConfig,
    channel: HbmChannelModel = None,
) -> List[ErrorStats]:
    """Model-vs-simulator error statistics on one graph.

    Little errors are measured per partition; Big errors per
    ``N_gpe``-partition group — the units each pipeline actually
    executes.
    """
    channel = channel or HbmChannelModel()
    model = calibrate_performance_model(config, channel)
    little = LittlePipelineSim(config, channel)
    big = BigPipelineSim(config, channel)
    pset = partition_graph(
        degree_based_grouping(graph).graph, config.partition_vertices
    )
    parts = pset.nonempty()

    little_signed = []
    for p in parts:
        sim = little.execute(p)[0].total_cycles
        est = model.estimate_little_execution(p.src)
        little_signed.append((est - sim) / sim)

    big_signed = []
    n = config.n_gpe
    for lo in range(0, len(parts), n):
        group = parts[lo : lo + n]
        sim = big.execute(group)[0].total_cycles
        est = model.estimate_big_group([p.src for p in group])
        big_signed.append((est - sim) / sim)

    little_signed = np.asarray(little_signed)
    big_signed = np.asarray(big_signed)
    return [
        ErrorStats.from_samples(
            "little", np.abs(little_signed), little_signed
        ),
        ErrorStats.from_samples("big", np.abs(big_signed), big_signed),
    ]


def validation_matrix(
    config: PipelineConfig,
    seeds: int = 2,
    channel: HbmChannelModel = None,
) -> List[ErrorStats]:
    """Error statistics over a matrix of skew classes and seeds."""
    from repro.graph.generators import (
        erdos_renyi_graph,
        power_law_graph,
        rmat_graph,
    )

    stats: List[ErrorStats] = []
    for seed in range(seeds):
        graphs = [
            rmat_graph(12, 16, seed=seed, name=f"rmat-{seed}"),
            power_law_graph(
                5000, 60_000, exponent=1.8, seed=seed, name=f"pl-{seed}"
            ),
            erdos_renyi_graph(4000, 40_000, seed=seed, name=f"er-{seed}"),
        ]
        for graph in graphs:
            stats.extend(validate_model_on_graph(graph, config, channel))
    return stats


def aggregate(stats: List[ErrorStats], kind: str) -> ErrorStats:
    """Pool per-graph stats of one pipeline kind (weighted by count)."""
    selected = [s for s in stats if s.kind == kind and s.count]
    if not selected:
        return ErrorStats(kind, 0, 0.0, 0.0, 0.0, 0.0)
    total = sum(s.count for s in selected)
    return ErrorStats(
        kind=kind,
        count=total,
        mean=sum(s.mean * s.count for s in selected) / total,
        p95=max(s.p95 for s in selected),
        worst=max(s.worst for s in selected),
        bias=sum(s.bias * s.count for s in selected) / total,
    )
