"""The Eq. 1-4 cycle-level performance model.

For a partition ``p`` with ``E_p`` edges:

    C_p = sum_i max(C_acs_v^i, C_acs_e, C_proc) + C_store + C_const    (1)

* ``C_acs_e = S_e / S_mem`` — sequential edge fetch (constant).
* ``C_proc = 1 / max(N_spe / II_spe, N_gpe / II_gpe)``               (3)
* ``C_acs_v^i`` — source-vertex access cost of edge ``i``:
  - **Big**: 0 when the edge hits the Vertex Loader's last-block cache,
    otherwise the bounded linear latency model ``clip(a * dist + b)`` of
    Eq. 4, with (a, b) fitted from the strided memory benchmark;
  - **Little**: ``(vid_i - vid_{i-1}) * S_vprop / S_mem`` — the burst
    cycles to stream the gap (Eq. 4, second case).
* ``C_store`` (Eq. 2) and ``C_const`` are folded into one measured
  per-execution constant, obtained by timing dummy partitions exactly as
  Sec. IV-A prescribes.

Estimation is O(E_p) with NumPy and runs during graph partitioning, so the
preprocessing cost it adds matches the paper's "little extra overhead".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import PipelineConfig
from repro.graph.coo import EDGE_BYTES, VERTEX_WORD_BYTES
from repro.graph.partition import Partition
from repro.hbm.channel import BLOCK_BYTES
from repro.hbm.latency import LatencyFit
from repro.utils.prefix import balanced_chunk_bounds


@dataclass(frozen=True)
class PerformanceModel:
    """Calibrated analytic model for one pipeline configuration."""

    config: PipelineConfig
    #: Eq. 4 fit of the Big pipeline's effective per-request cycles.
    big_fit: LatencyFit
    #: Measured constant per Big execution (C_store + C_const + fill).
    const_big: float
    #: Measured constant per Little execution.
    const_little: float

    # ------------------------------------------------------------------
    # Per-edge enumeration (the sum term of Eq. 1)
    # ------------------------------------------------------------------
    def edge_costs_big(
        self, src: np.ndarray, edge_bytes: int = EDGE_BYTES
    ) -> np.ndarray:
        """Per-edge cycles on the Big pipeline (the Eq. 1 max term).

        ``edge_bytes`` is ``S_e`` of Eq. 1: 8 for (src, dst) records, 12
        when a weight word rides along (SSSP/SpMV), which slows the
        sequential edge stream accordingly.
        """
        src = np.asarray(src, dtype=np.int64)
        if src.size == 0:
            return np.zeros(0)
        blocks = src // self.config.vertices_per_block
        new_block = np.empty(src.size, dtype=bool)
        new_block[0] = True
        new_block[1:] = blocks[1:] != blocks[:-1]
        dist = np.zeros(src.size, dtype=np.float64)
        dist[1:] = (src[1:] - src[:-1]) * VERTEX_WORD_BYTES
        acs_v = np.where(new_block, self.big_fit.latency(dist), 0.0)
        floor = max(self._acs_e(edge_bytes), self.config.proc_cycles_per_edge)
        return np.maximum(acs_v, floor)

    def edge_costs_little(
        self, src: np.ndarray, edge_bytes: int = EDGE_BYTES
    ) -> np.ndarray:
        """Per-edge cycles on the Little pipeline (the Eq. 1 max term)."""
        src = np.asarray(src, dtype=np.int64)
        if src.size == 0:
            return np.zeros(0)
        dist = np.zeros(src.size, dtype=np.float64)
        dist[1:] = (src[1:] - src[:-1]) * VERTEX_WORD_BYTES
        acs_v = dist / BLOCK_BYTES
        floor = max(self._acs_e(edge_bytes), self.config.proc_cycles_per_edge)
        return np.maximum(acs_v, floor)

    def _acs_e(self, edge_bytes: int = EDGE_BYTES) -> float:
        """``C_acs_e = S_e / S_mem`` — constant sequential edge cost."""
        return edge_bytes / BLOCK_BYTES

    # ------------------------------------------------------------------
    # Partition-level estimates
    # ------------------------------------------------------------------
    def estimate_big_group(self, lane_srcs) -> float:
        """Cycles of one Big execution covering a partition group.

        Two bounds compose (both derive from Eq. 1's max structure):

        * the *supply* bound — the sum of per-edge access costs over the
          merged ascending-source stream;
        * the *gather* bound — each Gather PE owns one partition and
          absorbs one tuple per cycle (II_gpe), so the execution cannot
          finish before the busiest lane drains.
        """
        lane_srcs = [np.asarray(s, dtype=np.int64) for s in lane_srcs]
        if not lane_srcs:
            raise ValueError("group needs at least one partition")
        merged = np.sort(np.concatenate(lane_srcs))
        supply = float(self.edge_costs_big(merged).sum())
        gather_bound = max(s.size for s in lane_srcs) * self.config.ii_gpe
        return max(supply, float(gather_bound)) + self.const_big

    def estimate_little_execution(self, src: np.ndarray) -> float:
        """Cycles of one Little execution over one (sub-)partition."""
        return float(self.edge_costs_little(src).sum()) + self.const_little

    def estimate_partition(self, partition: Partition, kind: str) -> float:
        """Estimated cycles of a single partition on a pipeline type.

        For the Big pipeline the per-execution constant is amortised over
        the ``N_gpe`` partitions one execution covers (Sec. III-B), which
        is what makes Big pipelines win on sparse partitions; conversely
        the partition's own Gather PE bounds it from below at one edge
        per cycle, which is what makes Big lose on dense partitions.
        """
        if kind == "little":
            return self.estimate_little_execution(partition.src)
        if kind == "big":
            supply = float(self.edge_costs_big(partition.src).sum())
            # Classification assumes the partition joins a *balanced*
            # group (sparse partitions are merged N_gpe at a time), so
            # its share of the group's gather bound is E_p / N_gpe; a
            # partition heavy enough to dominate its group is caught by
            # the supply term and the Fig. 9 group estimates instead.
            gather_bound = (
                partition.num_edges * self.config.ii_gpe / self.config.n_gpe
            )
            return (
                max(supply, gather_bound)
                + self.const_big / self.config.n_gpe
            )
        raise ValueError(f"kind must be 'big' or 'little', got {kind!r}")

    # ------------------------------------------------------------------
    # Window support for the intra-cluster scheduler
    # ------------------------------------------------------------------
    def window_weights(
        self, src: np.ndarray, kind: str, window_edges: int
    ) -> np.ndarray:
        """Estimated cycles of consecutive ``window_edges``-sized windows.

        The intra-cluster scheduler (Sec. IV-B) cuts partitions at window
        granularity so sub-partition boundaries can be found in one scan.
        """
        costs = (
            self.edge_costs_big(src)
            if kind == "big"
            else self.edge_costs_little(src)
        )
        if costs.size == 0:
            return np.zeros(0)
        num_windows = -(-costs.size // window_edges)
        padded = np.zeros(num_windows * window_edges)
        padded[: costs.size] = costs
        return padded.reshape(num_windows, window_edges).sum(axis=1)

    def cut_points(
        self,
        src: np.ndarray,
        kind: str,
        num_chunks: int,
        window_edges: int = 1024,
    ) -> np.ndarray:
        """Edge indices cutting ``src`` into ``num_chunks`` equal-time
        sub-partitions at window granularity."""
        weights = self.window_weights(src, kind, window_edges)
        bounds = balanced_chunk_bounds(weights, num_chunks)
        return np.minimum(bounds * window_edges, src.size)
