"""Calibration of the analytic model against the simulated hardware.

Sec. IV-A prescribes two measurements:

1. *"we benchmark the memory access latency with varying access distance
   (stride) on the test FPGAs"* — here, we sweep strided access patterns
   through the Big pipeline's memory interface and fit the bounded linear
   function of Eq. 4 to the observed **effective** per-request cycles
   (latency divided by the outstanding-request window, floored at the
   issue rate);

2. *"we measure the execution time of dummy partitions with a few edges to
   estimate the constant overhead of partition switching"* — we run each
   pipeline simulator on a dummy partition and take its total as the
   per-execution constant (C_store + C_const + pipeline fill).
"""

from __future__ import annotations

import numpy as np

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.config import PipelineConfig
from repro.arch.little_pipeline import LittlePipelineSim
from repro.graph.partition import Partition
from repro.hbm.channel import HbmChannelModel
from repro.hbm.latency import fit_linear_latency
from repro.model.perf import PerformanceModel


def _effective_request_benchmark(channel: HbmChannelModel):
    """Sample effective per-request cycles over a stride sweep."""
    strides = np.array(
        [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768],
        dtype=np.float64,
    )
    effective = channel.effective_request_cycles(strides)
    return strides, effective


def _dummy_partition(num_edges: int = 8) -> Partition:
    """A tiny partition used to expose the per-execution constant."""
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    return Partition(index=0, vertex_lo=0, vertex_hi=1, src=src, dst=dst)


def calibrate_performance_model(
    config: PipelineConfig,
    channel: HbmChannelModel,
) -> PerformanceModel:
    """Produce a :class:`PerformanceModel` calibrated to the given channel."""
    strides, effective = _effective_request_benchmark(channel)
    fit = fit_linear_latency(strides, effective)

    dummy = _dummy_partition()
    big_timing, _ = BigPipelineSim(config, channel).execute([dummy])
    little_timing, _ = LittlePipelineSim(config, channel).execute(dummy)

    return PerformanceModel(
        config=config,
        big_fit=fit,
        const_big=big_timing.total_cycles,
        const_little=little_timing.total_cycles,
    )
