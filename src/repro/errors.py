"""Exception hierarchy of the reproduction.

Everything the library raises deliberately derives from
:class:`ReproError`, so callers (and the CLI) can separate *user errors*
and *modelled hardware faults* from genuine bugs.  Two design points:

* Host-runtime errors keep their historical built-in bases
  (``RuntimeError`` / ``MemoryError``) so existing ``except`` clauses and
  tests continue to work after the rename.
* Injected-fault errors carry enough structure (channel / pipeline ids,
  whether degradation can absorb the fault) for the resilient executor in
  :mod:`repro.faults.resilience` to decide between retry and re-plan.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class of every deliberate error raised by this package."""


class UserInputError(ReproError, ValueError):
    """Invalid user-supplied input (bad graph name, app, file, ...)."""


# ----------------------------------------------------------------------
# Host-runtime errors (repro.runtime.host)
# ----------------------------------------------------------------------
class AcceleratorReleasedError(ReproError, RuntimeError):
    """An operation was attempted on a released accelerator context."""


class NoGraphLoadedError(ReproError, RuntimeError):
    """``execute`` was called before ``load_graph``."""


class DeviceOutOfMemoryError(ReproError, MemoryError):
    """A buffer allocation exceeded the per-channel HBM capacity."""


class AcceleratorDrainingError(ReproError, RuntimeError):
    """New work was offered to a handle that is draining (fleet
    lifecycle hook: in-flight work finishes, nothing new is accepted)."""


# ----------------------------------------------------------------------
# Injected hardware faults (repro.faults)
# ----------------------------------------------------------------------
class FaultInjectedError(ReproError):
    """Base class of every modelled hardware fault.

    ``victim`` is the ``(kind, index)`` of a pipeline the resilient
    executor may degrade to absorb the fault, or ``None`` when the fault
    is not attributable to one pipeline (e.g. a global stall rate).
    """

    category = "fault"

    def __init__(self, message: str, victim: Optional[Tuple[str, int]] = None):
        super().__init__(message)
        self.victim = victim


class ChannelFaultError(FaultInjectedError):
    """A dead/stuck HBM pseudo-channel; permanent, always degradable."""

    category = "dead-channel"

    def __init__(self, channel: int, victim: Tuple[str, int]):
        super().__init__(
            f"HBM channel {channel} is dead (pipeline {victim[0]}{victim[1]})",
            victim=victim,
        )
        self.channel = channel


class PipelineStallError(FaultInjectedError):
    """A pipeline hung mid-partition; the watchdog reclaims it."""

    category = "pipeline-stall"


class DataCorruptionError(FaultInjectedError):
    """A transient bit-flip was detected (parity/ECC) at block ingest."""

    category = "bit-flip"


class WatchdogTimeoutError(FaultInjectedError):
    """An iteration exceeded its model-predicted cycle budget."""

    category = "watchdog-timeout"

    def __init__(
        self,
        measured_cycles: float,
        budget_cycles: float,
        victim: Optional[Tuple[str, int]] = None,
    ):
        super().__init__(
            f"iteration took {measured_cycles:,.0f} cycles, watchdog "
            f"budget is {budget_cycles:,.0f}",
            victim=victim,
        )
        self.measured_cycles = measured_cycles
        self.budget_cycles = budget_cycles


class ResilienceExhaustedError(ReproError):
    """Retries and degradation could not absorb the injected faults."""


# ----------------------------------------------------------------------
# Fleet serving runtime (repro.fleet)
# ----------------------------------------------------------------------
class FleetError(ReproError):
    """Base class of the fleet serving runtime's typed errors."""


class FleetOverloadError(FleetError):
    """Admission control rejected a job (queue full or rate limited).

    Load shedding is always *typed*: a shed job surfaces as a rejected
    :class:`~repro.fleet.job.JobResult` carrying this error's name and
    message — never as a silent drop.
    """

    def __init__(self, message: str, reason: str = "overload"):
        super().__init__(message)
        #: Machine-readable shed reason: ``"queue-depth"`` or ``"rate-limit"``.
        self.reason = reason


class NoServingReplicaError(FleetError):
    """No SERVING replica is left to place an admitted job onto."""


class ReplicaCrashError(FleetError):
    """A replica died (or was killed) while a job was in flight."""


class JobFailoverExhaustedError(FleetError):
    """A job failed on every attempt up to the per-job attempt cap."""


class TenantQuotaExceededError(FleetOverloadError):
    """A tenant blew its per-tenant quota (429-style rejection).

    Subclasses :class:`FleetOverloadError` so the fleet's typed-shedding
    machinery (rejected :class:`~repro.fleet.job.JobResult`, admission
    counters) handles tenant-level rejections unchanged; ``tenant``
    and ``reason`` (``"tenant-rate"`` or ``"tenant-pending"``) say who
    and why.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = "tenant-rate"):
        super().__init__(message, reason=reason)
        self.tenant = tenant


class FleetKilledError(FleetError):
    """The fleet runtime process was hard-killed mid-run (chaos).

    Models a SIGKILL of the serving process itself: no cleanup, no
    flushing beyond what the write-ahead journal already made durable.
    A runtime that dies this way is rebuilt with
    ``FleetRuntime.recover`` + ``resume`` from its journal and result
    store.  ``events_processed`` records how far the event loop got.
    """

    def __init__(self, message: str, events_processed: int = 0):
        super().__init__(message)
        self.events_processed = events_processed


# ----------------------------------------------------------------------
# Wall-clock serving facade (repro.serving)
# ----------------------------------------------------------------------
class ServingError(ReproError):
    """Base class of the serving facade's typed errors."""


class TenantAuthError(ServingError):
    """The request carried no API key, or one no tenant owns (401)."""


class ServingDrainingError(ServingError):
    """The gateway is draining: no new submissions are accepted (503).

    In-flight and queued jobs still finish (or are journaled for
    resume); only *new* work is turned away.
    """


class RunInterrupted(ReproError):
    """SIGTERM/SIGINT arrived mid-run and the graceful handler fired.

    Raised out of the signal handler installed by
    :func:`repro.serving.signals.graceful_interrupts`; commands catch it
    (or let :func:`repro.cli.main` catch it), flush whatever durable
    state they own, and exit with the documented *resumable* code 3 —
    never mid-write corruption, never a traceback.
    """

    def __init__(self, message: str, signal_name: str = ""):
        super().__init__(message)
        self.signal_name = signal_name


# ----------------------------------------------------------------------
# Conformance checking (repro.check)
# ----------------------------------------------------------------------
class ConformanceError(ReproError, AssertionError):
    """A differential oracle or trace invariant was violated.

    Derives from ``AssertionError`` so the pytest helpers in
    :mod:`repro.check.pytest_helpers` surface violations as ordinary
    test failures.
    """
