"""Fixed-point arithmetic helpers.

ReGraph (like ThunderGP and GraphLily, see Sec. VI-A of the paper) computes
PageRank with a fixed-point datatype on the FPGA, because floating-point
accumulation cannot reach an initiation interval of one on the Gather PEs.
This module reproduces that datatype in NumPy: properties are stored as
``int64`` raw words interpreted as Q-format numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Fractional bits of the default Q-format used by the PageRank kernels.
FIXED_FRAC_BITS = 30

#: The raw representation of 1.0 in the default format.
FIXED_ONE = 1 << FIXED_FRAC_BITS


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``frac_bits`` fractional bits.

    The hardware uses a 32-bit word; we compute in ``int64`` so that the
    Scatter-stage multiply cannot overflow before the right-shift, exactly
    like the DSP48 datapath that widens intermediates.
    """

    frac_bits: int = FIXED_FRAC_BITS

    @property
    def one(self) -> int:
        """Raw integer representation of 1.0."""
        return 1 << self.frac_bits

    @property
    def resolution(self) -> float:
        """Smallest representable positive increment."""
        return 1.0 / self.one

    def from_float(self, values):
        """Convert floats (scalar or array) to raw fixed-point words."""
        arr = np.asarray(values, dtype=np.float64)
        return np.round(arr * self.one).astype(np.int64)

    def to_float(self, raw):
        """Convert raw fixed-point words back to floats."""
        arr = np.asarray(raw, dtype=np.int64)
        return arr.astype(np.float64) / self.one

    def multiply(self, a, b):
        """Fixed-point multiply: (a * b) >> frac_bits with int64 widening."""
        prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        return prod >> self.frac_bits

    def divide(self, a, b):
        """Fixed-point divide: (a << frac_bits) // b, truncating like HLS."""
        num = np.asarray(a, dtype=np.int64) << self.frac_bits
        den = np.asarray(b, dtype=np.int64)
        return num // np.where(den == 0, 1, den)


_DEFAULT = FixedPointFormat()


def float_to_fixed(values, frac_bits: int = FIXED_FRAC_BITS):
    """Convert floats to raw fixed-point words in the default format."""
    if frac_bits == FIXED_FRAC_BITS:
        return _DEFAULT.from_float(values)
    return FixedPointFormat(frac_bits).from_float(values)


def fixed_to_float(raw, frac_bits: int = FIXED_FRAC_BITS):
    """Convert raw fixed-point words to floats in the default format."""
    if frac_bits == FIXED_FRAC_BITS:
        return _DEFAULT.to_float(raw)
    return FixedPointFormat(frac_bits).to_float(raw)
