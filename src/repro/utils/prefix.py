"""Prefix-sum math shared by the schedulers and the cycle simulators.

Two recurring problems are solved here in vectorised form:

* splitting a weighted sequence into contiguous chunks of near-equal weight
  (the intra-cluster scheduler's window cuts, Sec. IV-B), and
* resolving the recurrence ``t[i] = max(t[i-1] + c[i], r[i])`` that describes
  an in-order pipeline stage which takes ``c[i]`` cycles per item but cannot
  start item ``i`` before its operands are released at time ``r[i]``.
"""

from __future__ import annotations

import numpy as np


def balanced_chunk_bounds(weights: np.ndarray, num_chunks: int) -> np.ndarray:
    """Split ``weights`` into ``num_chunks`` contiguous chunks of ~equal sum.

    Returns an array of ``num_chunks + 1`` boundary indices suitable for
    slicing: chunk ``k`` covers ``weights[bounds[k]:bounds[k + 1]]``.
    Boundaries are placed at the ideal prefix-sum quantiles, which is the
    one-scan strategy the paper uses for its window-granularity cuts.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be > 0, got {num_chunks}")
    n = weights.size
    if n == 0:
        return np.zeros(num_chunks + 1, dtype=np.int64)
    prefix = np.concatenate(([0.0], np.cumsum(weights)))
    total = prefix[-1]
    targets = total * np.arange(1, num_chunks) / num_chunks
    cuts = np.searchsorted(prefix[1:-1], targets, side="left") + 1
    bounds = np.concatenate(([0], cuts, [n])).astype(np.int64)
    return np.maximum.accumulate(bounds)


def running_release_times(ready: np.ndarray, cost: np.ndarray) -> np.ndarray:
    """Resolve ``t[i] = max(t[i-1] + cost[i], ready[i]) `` without a loop.

    ``t[i]`` is the completion time of item ``i`` in an in-order unit where
    item ``i`` needs ``cost[i]`` cycles of service and its inputs only become
    available at time ``ready[i]``.  Expanding the recurrence gives
    ``t[i] = max_{j <= i} (ready[j] + sum(cost[j+1..i]))`` when service of the
    releasing item is already folded into ``ready``, which reduces to a
    running maximum over ``ready - cumsum(cost)``.
    """
    ready = np.asarray(ready, dtype=np.float64)
    cost = np.asarray(cost, dtype=np.float64)
    if ready.shape != cost.shape:
        raise ValueError(
            f"ready and cost must have the same shape, "
            f"got {ready.shape} vs {cost.shape}"
        )
    if ready.size == 0:
        return np.zeros(0, dtype=np.float64)
    csum = np.cumsum(cost)
    # Expanding the recurrence: t[i] = max(csum[i],
    #   max_{j<=i}(ready[j] + csum[i] - csum[j])), a running max over
    # the slack (ready[j] - csum[j]) floored at the pure-service path.
    slack = np.maximum.accumulate(ready - csum)
    return csum + np.maximum(slack, 0.0)


def running_release_times_batched(
    ready: np.ndarray, cost: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`running_release_times` over a 2-D batch.

    Each row is resolved independently along the last axis with the
    exact same operation sequence as the 1-D form — ``cumsum`` and
    ``maximum.accumulate`` reduce left-to-right per row, so row ``i`` of
    the result is bit-identical to ``running_release_times(ready[i],
    cost[i])``.  Columns past a row's true length may hold arbitrary
    padding: they only influence columns further right, never the last
    valid one.
    """
    ready = np.asarray(ready, dtype=np.float64)
    cost = np.asarray(cost, dtype=np.float64)
    if ready.shape != cost.shape:
        raise ValueError(
            f"ready and cost must have the same shape, "
            f"got {ready.shape} vs {cost.shape}"
        )
    if ready.ndim != 2:
        raise ValueError(f"expected a 2-D batch, got shape {ready.shape}")
    if ready.size == 0:
        return np.zeros(ready.shape, dtype=np.float64)
    csum = np.cumsum(cost, axis=-1)
    slack = np.maximum.accumulate(ready - csum, axis=-1)
    return csum + np.maximum(slack, 0.0)
