"""Small argument-validation helpers used across the library.

Raising early with a precise message keeps the simulator code paths free of
defensive clutter while still failing loudly on misuse.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


def check_array_1d(name: str, arr) -> np.ndarray:
    """Coerce to a 1-D ndarray, raising ``ValueError`` on higher rank."""
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    return out
