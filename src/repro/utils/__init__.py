"""Shared utilities: fixed-point arithmetic, validation helpers, prefix math."""

from repro.utils.fixed_point import (
    FIXED_FRAC_BITS,
    FIXED_ONE,
    FixedPointFormat,
    fixed_to_float,
    float_to_fixed,
)
from repro.utils.validation import (
    check_array_1d,
    check_nonnegative,
    check_positive,
    check_probability,
)
from repro.utils.prefix import balanced_chunk_bounds, running_release_times

__all__ = [
    "FIXED_FRAC_BITS",
    "FIXED_ONE",
    "FixedPointFormat",
    "fixed_to_float",
    "float_to_fixed",
    "check_array_1d",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "balanced_chunk_bounds",
    "running_release_times",
]
