"""Chaos oracles: is a run that *survived* its faults actually correct?

Three layers of scrutiny on every surviving cell:

1. **Result oracle** — the faulted run's answer against the pure-Python
   reference, with the same comparison semantics as
   :func:`repro.check.oracles.functional_oracle` (exact for BFS / SSSP /
   closeness / WCC-as-partition, fixed-point band for PageRank).  Faults
   absorbed by checkpoint-retry resume bit-exactly, and degradation
   re-plans work without touching the functional iteration, so surviving
   a fault is *never* a licence for a wrong answer.
2. **Trace invariants** — the final scheduling plan (post-degradation)
   replayed through :func:`repro.check.invariants.check_trace`: monotone
   cycles, no overlap, edge coverage, bandwidth and resource caps must
   hold for whatever topology the run ended on.
3. **Health audit** — the :class:`RunHealthReport` must be internally
   consistent: breaker state covers every channel of the original
   topology, and each re-plan names exactly one degraded pipeline.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.reference import (
    bfs_reference,
    closeness_reference,
    pagerank_reference,
    sssp_reference,
    wcc_reference,
)
from repro.arch.trace import trace_plan
from repro.check.invariants import check_trace
from repro.check.oracles import _component_canonical
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands
from repro.chaos.spec import CellSpec
from repro.graph.coo import Graph


def result_violations(
    cell: CellSpec,
    graph: Graph,
    run,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> List[str]:
    """Compare the faulted run's answer with the reference algorithm.

    ``graph`` is the graph actually executed (already symmetrized for
    WCC, already weighted for SSSP).
    """
    app = cell.app
    if app == "pagerank":
        ref = pagerank_reference(graph, iterations=run.iterations)
        atol = bands.pagerank_atol(
            graph.out_degrees().max() if graph.num_edges else 1,
            run.iterations,
        )
        err = float(np.max(np.abs(run.result - ref)))
        if err > atol:
            return [f"result: max |rank - ref| = {err:.2e} > atol {atol:.2e}"]
        return []
    if app == "bfs":
        ref = bfs_reference(graph, cell.root)
        bad = int(np.count_nonzero(run.props != ref))
        if bad:
            return [f"result: {bad} BFS level mismatch(es) "
                    f"of {graph.num_vertices}"]
        return []
    if app == "closeness":
        ref = closeness_reference(graph, cell.root)
        err = abs(float(run.result) - ref)
        if err > 1e-9:
            return [f"result: |closeness - ref| = {err:.2e} > 1e-9"]
        return []
    if app == "sssp":
        ref = sssp_reference(graph, cell.root)
        bad = int(np.count_nonzero(run.props != ref))
        if bad:
            return [f"result: {bad} SSSP distance mismatch(es) "
                    f"of {graph.num_vertices}"]
        return []
    if app == "wcc":
        ref = wcc_reference(graph)
        bad = int(np.count_nonzero(
            _component_canonical(run.props) != _component_canonical(ref)
        ))
        if bad:
            return [f"result: {bad} WCC component mismatch(es) "
                    f"of {graph.num_vertices}"]
        return []
    return [f"result: no chaos oracle for app {app!r}"]


def trace_violations(
    framework, graph: Graph, run, bands: ToleranceBands = DEFAULT_BANDS
) -> List[str]:
    """Replay the final (possibly degraded) plan through the invariant
    checker — the schedule the run converged on must itself conform."""
    plan = run.final_plan
    if plan is None:
        return ["trace: run carries no final plan to check"]
    trace = trace_plan(plan, framework.channel)
    violations = check_trace(
        trace,
        plan=plan,
        platform=framework.platform,
        channel=framework.channel,
        weighted=graph.weights is not None,
        bands=bands,
    )
    return [f"trace: {v}" for v in violations]


def health_violations(cell: CellSpec, run) -> List[str]:
    """Audit the health report's internal consistency."""
    health = run.health
    if health is None:
        return ["health: resilient run returned no health report"]
    problems = []
    expected_channels = 2 * cell.num_pipelines
    if len(health.channel_breakers) != expected_channels:
        problems.append(
            f"health: breaker state covers {len(health.channel_breakers)} "
            f"channels, expected {expected_channels}"
        )
    if health.replans != len(health.degraded_pipelines):
        problems.append(
            f"health: {health.replans} re-plans but "
            f"{len(health.degraded_pipelines)} degraded pipeline(s)"
        )
    open_states = sum(
         1 for s in health.channel_breakers.values() if s["state"] == "open"
    )
    if health.breaker_trips > 0 and open_states == 0:
        problems.append(
            f"health: {health.breaker_trips} breaker trip(s) recorded "
            f"but no channel reported open"
        )
    return problems


def validate_cell(
    cell: CellSpec,
    graph: Graph,
    framework,
    run,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> List[str]:
    """All chaos-oracle violations for one surviving cell (empty = ok)."""
    violations = result_violations(cell, graph, run, bands)
    violations += trace_violations(framework, graph, run, bands)
    violations += health_violations(cell, run)
    return violations
