"""Serving kill-restart chaos: crash the wall-clock gateway, resume.

The serving-facade counterpart of :mod:`repro.chaos.kill_restart`.
Where that cell hard-kills the virtual-clock *runtime* and recovers
from its JSONL journal, this one crashes the whole asyncio **gateway**
(:class:`~repro.serving.gateway.ServingGateway`) mid-load and recovers
from its dual durability pair — the SQLite-WAL job store and the
``regraph-traffic/v1`` bundle.  One cell:

1. runs the job stream through a plain in-memory
   :class:`~repro.serving.session.KernelSession` as the uninterrupted
   reference — its report digest is the ground truth;
2. serves the same stream through a real gateway (store + traffic
   bundle attached), submitting every job — so every job is
   *acknowledged* — and abandons the process SIGKILL-style once
   ``crash_after_results`` terminal results are durable: no drain, no
   flush, no checkpoint;
3. optionally damages one durable file between death and rebirth — a
   :class:`~repro.faults.plan.StorageFault` on the traffic bundle
   (torn write / partial fsync / bit-flip, the JSONL vocabulary) or a
   ``torn-wal`` truncation of the SQLite write-ahead log;
4. restarts with ``resume=True``: recovery merges the acceptance
   sequence from the store and the bundle (each file covers holes in
   the other) and replays it through a fresh kernel session, then
   drains gracefully;
5. checks the **oracles**: zero acknowledged jobs lost (every acked id
   has a durable terminal result), exactly-once results (recomputed
   duplicates suppressed, never re-emitted), zero replay divergences,
   and digest equality — the recovered session's report digest is
   bit-identical to the uninterrupted reference's.

The wall-clock crash point is deliberately *not* deterministic (the
worker races the poll loop) — digest equality holding anyway is the
point: the kernel outcome depends only on the acceptance sequence,
which is durable before each ack.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.chaos.fleet_soak import FleetSoakConfig, generate_jobs
from repro.errors import UserInputError
from repro.faults.plan import StorageFault
from repro.fleet.journal import apply_storage_fault
from repro.serving.config import ServingConfig, TenantSpec
from repro.serving.gateway import ServingGateway
from repro.serving.session import KernelSession
from repro.serving.traffic import read_traffic

#: Storage-fault targets a serve-kill cell understands.
SERVE_FAULT_TARGETS = ("traffic", "store-wal")


def _snapshot_store(store_path: Path) -> dict:
    """Byte-copies of the database and WAL at the moment of death."""
    snapshot = {}
    for suffix in ("", "-wal"):
        victim = Path(str(store_path) + suffix)
        if victim.exists():
            snapshot[suffix] = victim.read_bytes()
    return snapshot


def _restore_store(store_path: Path, snapshot: dict) -> None:
    """Put the crash-time bytes back; drop the stale shm index."""
    for suffix in ("", "-wal"):
        victim = Path(str(store_path) + suffix)
        if suffix in snapshot:
            victim.write_bytes(snapshot[suffix])
        elif victim.exists():
            victim.unlink()
    shm = Path(str(store_path) + "-shm")
    if shm.exists():
        shm.unlink()


def tear_wal(store_path: Union[str, Path]) -> str:
    """Truncate the SQLite WAL's tail (a torn write at rest).

    SQLite's per-frame checksums make this self-healing: the next open
    rolls back to the last intact commit instead of refusing — commits
    lost from the tail are re-derived by replay (or merged back from
    the traffic bundle).
    """
    wal = Path(str(store_path) + "-wal")
    if not wal.exists() or wal.stat().st_size == 0:
        return "no-op: WAL is empty (already checkpointed)"
    size = wal.stat().st_size
    keep = size * 2 // 3
    with open(wal, "rb+") as fh:
        fh.truncate(keep)
    return f"torn WAL: truncated {size - keep} of {size} bytes"


@dataclass(frozen=True)
class ServeKillConfig:
    """Inputs of one serving kill-restart cell."""

    #: Job stream recipe (apps/graphs/fault plans; arrival times and
    #: replica kills are ignored — the gateway sets its own clock).
    soak: FleetSoakConfig = field(
        default_factory=lambda: FleetSoakConfig(jobs=8, seed=11)
    )
    #: Terminal results that must be durable before the crash.
    crash_after_results: int = 3
    #: Damage applied between death and rebirth (``None`` = clean crash).
    storage_fault: Optional[StorageFault] = None
    #: fsync per append (the WAL contract; tests trade it for speed).
    fsync: bool = True

    def __post_init__(self):
        if self.crash_after_results < 0:
            raise UserInputError(
                "crash_after_results must be >= 0, got "
                f"{self.crash_after_results}"
            )
        if self.crash_after_results >= self.soak.jobs:
            raise UserInputError(
                f"crash_after_results ({self.crash_after_results}) must "
                f"leave work unfinished (stream has {self.soak.jobs} jobs)"
            )
        if (
            self.storage_fault is not None
            and self.storage_fault.target not in SERVE_FAULT_TARGETS
        ):
            raise UserInputError(
                f"serve-kill fault target must be one of "
                f"{SERVE_FAULT_TARGETS}, got "
                f"{self.storage_fault.target!r}"
            )

    def to_dict(self) -> dict:
        return {
            "soak": self.soak.to_dict(),
            "crash_after_results": self.crash_after_results,
            "storage_fault": (
                {
                    "kind": self.storage_fault.kind,
                    "record": self.storage_fault.record,
                    "target": self.storage_fault.target,
                }
                if self.storage_fault is not None
                else None
            ),
            "fsync": self.fsync,
        }

    @staticmethod
    def from_dict(data: dict) -> "ServeKillConfig":
        fault = data.get("storage_fault")
        return ServeKillConfig(
            soak=FleetSoakConfig.from_dict(data.get("soak", {})),
            crash_after_results=int(data.get("crash_after_results", 3)),
            storage_fault=(
                StorageFault(**fault) if fault is not None else None
            ),
            fsync=bool(data.get("fsync", True)),
        )


@dataclass
class ServeKillResult:
    """Outcome of one serving kill-restart cell (oracles itemised)."""

    config: ServeKillConfig
    reference_digest: str = ""
    final_digest: str = ""
    #: Jobs acknowledged before the crash (all of them, by design).
    acked: int = 0
    #: Durable terminal results at the moment of death.
    results_at_crash: int = 0
    storage_fault_log: str = ""
    #: Oracle: acked job ids with no durable result after recovery.
    lost_acked: List[str] = field(default_factory=list)
    #: Oracle: recomputed results that disagreed with durable copies.
    replay_divergences: int = 0
    #: Replay duplicates the store suppressed (exactly-once, visibly).
    duplicates_suppressed: int = 0
    #: Accepts the store lost and the traffic bundle restored.
    accepts_merged_from_traffic: int = 0
    #: The resumed gateway drained cleanly (traffic-end recorded).
    drained: bool = False
    #: Corrupt traffic-bundle lines skipped during recovery/verification.
    corrupt_traffic_lines: int = 0

    @property
    def equivalent(self) -> bool:
        return (
            self.reference_digest != ""
            and self.reference_digest == self.final_digest
        )

    @property
    def passed(self) -> bool:
        return (
            self.equivalent
            and not self.lost_acked
            and self.replay_divergences == 0
            and self.drained
        )

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "reference_digest": self.reference_digest,
            "final_digest": self.final_digest,
            "equivalent": self.equivalent,
            "acked": self.acked,
            "results_at_crash": self.results_at_crash,
            "storage_fault_log": self.storage_fault_log,
            "lost_acked": list(self.lost_acked),
            "replay_divergences": self.replay_divergences,
            "duplicates_suppressed": self.duplicates_suppressed,
            "accepts_merged_from_traffic": self.accepts_merged_from_traffic,
            "drained": self.drained,
            "corrupt_traffic_lines": self.corrupt_traffic_lines,
            "passed": self.passed,
        }


def _payloads(config: ServeKillConfig) -> List[dict]:
    """The cell's job stream as wire payloads, acceptance order."""
    return [job.to_dict() for job in generate_jobs(config.soak)]


def _serving_config(config: ServeKillConfig, workdir: Path) -> ServingConfig:
    return ServingConfig(
        devices=tuple(config.soak.replicas),
        buffer_vertices=config.soak.buffer_vertices,
        num_pipelines=config.soak.num_pipelines,
        tenants=(TenantSpec(name="chaos", api_key="chaos-key"),),
        store_path=str(workdir / "jobs.sqlite"),
        traffic_path=str(workdir / "traffic.jsonl"),
        fsync=config.fsync,
    )


def run_serve_kill(
    config: ServeKillConfig, workdir: Union[str, Path]
) -> ServeKillResult:
    """Execute one serving kill-restart cell (see module docstring).

    ``workdir`` receives the store (``jobs.sqlite`` + its WAL) and the
    traffic bundle (``traffic.jsonl``) — on failure they *are* the
    evidence, so CI uploads them.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    serving = _serving_config(config, workdir)
    for stale in workdir.glob("jobs.sqlite*"):
        stale.unlink()
    traffic_path = Path(serving.traffic_path)
    if traffic_path.exists():
        traffic_path.unlink()

    payloads = _payloads(config)
    result = ServeKillResult(config=config)

    # 1. Uninterrupted reference: the pure kernel, no gateway at all.
    reference = KernelSession(serving.session_spec())
    reference.replay(payloads)
    result.reference_digest = reference.digest()

    # 2. Live gateway: ack everything, die once enough results landed.
    # SIGKILL is emulated faithfully: the database and its WAL are
    # snapshotted *while the dying connection is still open* (sqlite
    # checkpoints the WAL on close — cleanup a kill never runs), then
    # the snapshot is restored over the cleanly-closed files and the
    # stale ``-shm`` index is dropped, which is exactly the disk state
    # a reboot leaves behind.
    store_path = Path(serving.store_path)

    async def live() -> None:
        gateway = ServingGateway(serving)
        try:
            for payload in payloads:
                await gateway.submit("chaos-key", payload)
            result.acked = gateway.store.job_count()
            while (
                gateway.store.result_count() < config.crash_after_results
            ):
                await asyncio.sleep(0.002)
        finally:
            result.results_at_crash = gateway.store.result_count()
            gateway.abandon()
            snapshot = _snapshot_store(store_path)
            gateway.store.close()
            _restore_store(store_path, snapshot)

    asyncio.run(live())

    # 3. Storage fault between death and rebirth.
    if config.storage_fault is not None:
        fault = config.storage_fault
        if fault.target == "store-wal":
            result.storage_fault_log = (
                f"store-wal: {tear_wal(serving.store_path)}"
            )
        else:
            result.storage_fault_log = (
                f"traffic: {apply_storage_fault(traffic_path, fault)}"
            )

    # 4. Rebirth: resume-by-replay, then a graceful drain.
    async def resumed() -> None:
        gateway = ServingGateway(serving, resume=True)
        try:
            result.replay_divergences = gateway.recovery_stats[
                "replay_divergences"
            ]
            result.duplicates_suppressed = gateway.recovery_stats[
                "duplicates_suppressed"
            ]
            result.accepts_merged_from_traffic = gateway.recovery_stats[
                "accepts_merged_from_traffic"
            ]
            # Checked against the *submitted* stream, not the store's
            # own rows: a job both files lost would otherwise vanish
            # without tripping the oracle.
            result.lost_acked = sorted(
                p["job_id"] for p in payloads
                if gateway.store.get_result(p["job_id"]) is None
            )
            if gateway.session.served_jobs:
                result.final_digest = gateway.session.digest()
            summary = await gateway.drain()
            result.drained = bool(summary["drained"])
        finally:
            gateway.close()

    asyncio.run(resumed())

    # 5. The bundle must still read end-to-end (damage skipped+counted).
    bundle = read_traffic(traffic_path)
    result.corrupt_traffic_lines = bundle.corrupt_lines
    return result
