"""Fleet soak mode: chaos campaigns against the serving runtime.

Where a plain chaos campaign executes isolated cells, the fleet soak
pushes a seeded *job stream* through a replica pool while killing
replicas mid-campaign.  One soak seed determines everything — the job
mix (apps, graphs, fault plans, priorities, deadlines, submit times)
and, when ``random_kills`` is used, which replicas die when — so a soak
outcome is a pure function of its :class:`FleetSoakConfig` and the
report digest is bit-reproducible.

The null hypothesis under test: *every admitted job reaches a terminal,
typed outcome on a surviving replica* — zero jobs lost, every completion
conformance-clean — no matter which cards die under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.chaos.generate import (
    CAMPAIGN_APPS,
    INTENSITIES,
    _fault_plan,
    _graph_spec,
)
from repro.errors import UserInputError
from repro.faults.plan import FaultPlan
from repro.fleet.job import Job
from repro.fleet.replica import Replica, make_replica
from repro.fleet.report import FleetReport
from repro.fleet.runtime import FleetPolicy, FleetRuntime, ReplicaKill


@dataclass(frozen=True)
class FleetSoakConfig:
    """Inputs that fully determine one fleet soak."""

    seed: int = 0
    jobs: int = 30
    #: Device per replica; ``r{i}`` serves ``replicas[i]``.
    replicas: Tuple[str, ...] = ("U280", "U280", "U50")
    intensity: str = "moderate"
    #: Fraction of jobs carrying an injected fault plan.
    fault_fraction: float = 0.5
    #: Fraction of jobs with a (virtual) deadline — hedging candidates.
    deadline_fraction: float = 0.33
    #: Mean virtual gap between submissions.
    submit_spacing_seconds: float = 0.0005
    #: Explicit kill schedule (wins over ``random_kills``).
    kills: Tuple[ReplicaKill, ...] = ()
    #: Seeded kills when no explicit schedule is given (capped so at
    #: least one replica survives).
    random_kills: int = 0
    buffer_vertices: int = 256
    num_pipelines: int = 4
    #: Per-job iteration cap.  Must cover convergence: the conformance
    #: oracles compare BFS/SSSP/closeness/WCC against fully-converged
    #: references, so a cap below the graph diameter reads as a wrong
    #: answer (30 matches the chaos campaign default).
    max_iterations: int = 30

    def __post_init__(self):
        if self.jobs < 1:
            raise UserInputError(f"soak needs >= 1 job, got {self.jobs}")
        if not self.replicas:
            raise UserInputError("soak needs at least one replica")
        if self.intensity not in INTENSITIES:
            raise UserInputError(
                f"unknown intensity {self.intensity!r}; expected one of "
                f"{sorted(INTENSITIES)}"
            )
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise UserInputError(
                f"fault_fraction must be in [0, 1], got {self.fault_fraction}"
            )
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise UserInputError(
                "deadline_fraction must be in [0, 1], got "
                f"{self.deadline_fraction}"
            )
        if self.random_kills < 0:
            raise UserInputError(
                f"random_kills must be >= 0, got {self.random_kills}"
            )
        if self.submit_spacing_seconds < 0:
            raise UserInputError(
                "submit_spacing_seconds must be >= 0, got "
                f"{self.submit_spacing_seconds}"
            )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "replicas": list(self.replicas),
            "intensity": self.intensity,
            "fault_fraction": self.fault_fraction,
            "deadline_fraction": self.deadline_fraction,
            "submit_spacing_seconds": self.submit_spacing_seconds,
            "kills": [k.to_dict() for k in self.kills],
            "random_kills": self.random_kills,
            "buffer_vertices": self.buffer_vertices,
            "num_pipelines": self.num_pipelines,
            "max_iterations": self.max_iterations,
        }

    @staticmethod
    def from_dict(data: dict) -> "FleetSoakConfig":
        return FleetSoakConfig(
            seed=int(data.get("seed", 0)),
            jobs=int(data.get("jobs", 30)),
            replicas=tuple(data.get("replicas", ("U280", "U280", "U50"))),
            intensity=str(data.get("intensity", "moderate")),
            fault_fraction=float(data.get("fault_fraction", 0.5)),
            deadline_fraction=float(data.get("deadline_fraction", 0.33)),
            submit_spacing_seconds=float(
                data.get("submit_spacing_seconds", 0.0005)
            ),
            kills=tuple(
                ReplicaKill.from_dict(k) for k in data.get("kills", [])
            ),
            random_kills=int(data.get("random_kills", 0)),
            buffer_vertices=int(data.get("buffer_vertices", 256)),
            num_pipelines=int(data.get("num_pipelines", 4)),
            max_iterations=int(data.get("max_iterations", 30)),
        )


def generate_jobs(config: FleetSoakConfig) -> List[Job]:
    """The soak's job stream (deterministic in the config).

    Submissions are staggered by seeded exponential gaps; roughly a
    third of the jobs (``deadline_fraction``) carry a deadline generous
    enough to be *meetable* on a healthy pool but tight enough that a
    straggler on a degraded card triggers hedging.
    """
    rng = np.random.default_rng(config.seed)
    jobs: List[Job] = []
    submit = 0.0
    for i in range(config.jobs):
        app = CAMPAIGN_APPS[int(rng.integers(len(CAMPAIGN_APPS)))]
        graph = _graph_spec(rng, app)
        if rng.uniform() < config.fault_fraction:
            plan = _fault_plan(rng, config.intensity, config.num_pipelines)
        else:
            plan = FaultPlan()
        deadline: Optional[float] = None
        if rng.uniform() < config.deadline_fraction:
            # Calibrated to the virtual scale of these graphs: a few ms
            # of modelled execution per job.
            deadline = float(rng.uniform(0.002, 0.02))
        jobs.append(Job(
            job_id=f"job{i:04d}",
            app=app,
            graph=graph,
            root=0,
            max_iterations=config.max_iterations,
            priority=int(rng.integers(0, 3)),
            deadline_seconds=deadline,
            submit_time=submit,
            fault_plan=plan,
        ))
        submit += float(rng.exponential(config.submit_spacing_seconds))
    return jobs


def build_pool(config: FleetSoakConfig) -> List[Replica]:
    """The replica pool (``r0``, ``r1``, ... with the configured devices)."""
    return [
        make_replica(
            f"r{i}",
            device,
            buffer_vertices=config.buffer_vertices,
            num_pipelines=config.num_pipelines,
        )
        for i, device in enumerate(config.replicas)
    ]


def generate_kills(config: FleetSoakConfig) -> List[ReplicaKill]:
    """The kill schedule: explicit kills, else seeded random ones.

    Random kills pick distinct replicas (at least one always survives)
    and land inside the submission window, i.e. genuinely mid-campaign.
    """
    if config.kills:
        return list(config.kills)
    if config.random_kills == 0:
        return []
    # A separate, offset stream so adding kills never reshuffles jobs.
    rng = np.random.default_rng(config.seed + 0x5EED)
    count = min(config.random_kills, len(config.replicas) - 1)
    victims = rng.choice(len(config.replicas), size=count, replace=False)
    horizon = max(config.jobs * config.submit_spacing_seconds, 1e-6)
    kills = [
        ReplicaKill(
            replica_id=f"r{int(v)}",
            at_seconds=float(rng.uniform(0.2, 0.8) * horizon),
        )
        for v in sorted(int(v) for v in victims)
    ]
    return sorted(kills, key=lambda k: (k.at_seconds, k.replica_id))


@dataclass
class FleetSoakResult:
    """Config + report of one soak (what ``repro fleet run`` serialises)."""

    config: FleetSoakConfig
    report: FleetReport
    kills: List[ReplicaKill] = field(default_factory=list)
    #: Execution-acceleration stats (worker count, prewarmed specs,
    #: simulation-cache counters).  Deliberately kept *outside*
    #: :class:`FleetReport`: the report digest certifies the served
    #: outcome, which must be identical between serial and parallel
    #: runs, while these counters describe how fast we got there.
    perf: dict = field(default_factory=dict)
    #: Durability accounting (results restored from the store, replay
    #: duplicates suppressed, divergences) — same side-channel contract
    #: as ``perf``: a journaled/recovered soak's report digest must stay
    #: bit-identical to an in-memory one, so these never enter the
    #: report.
    recovery: dict = field(default_factory=dict)
    #: Autoscaler decision trace + counters — the third side-channel:
    #: scaling changes *when* jobs run, never what they compute, so the
    #: per-job result digests stay pure while this records the pool's
    #: shape over time.
    autoscale: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {
            "soak_config": self.config.to_dict(),
            "kills": [k.to_dict() for k in self.kills],
            "report": self.report.to_dict(),
        }
        if self.perf:
            data["perf"] = dict(self.perf)
        if self.recovery:
            data["recovery"] = dict(self.recovery)
        if self.autoscale:
            data["autoscale"] = dict(self.autoscale)
        return data

    @staticmethod
    def from_dict(data: dict) -> "FleetSoakResult":
        return FleetSoakResult(
            config=FleetSoakConfig.from_dict(data["soak_config"]),
            report=FleetReport.from_dict(data["report"]),
            kills=[ReplicaKill.from_dict(k) for k in data.get("kills", [])],
            perf=dict(data.get("perf", {})),
            recovery=dict(data.get("recovery", {})),
            autoscale=dict(data.get("autoscale", {})),
        )


def run_fleet_soak(
    config: FleetSoakConfig,
    policy: Optional[FleetPolicy] = None,
    perf=None,
    journal_path=None,
    store_path=None,
    halt_after_events: Optional[int] = None,
    journal_fsync: bool = True,
    autoscale=None,
) -> FleetSoakResult:
    """Generate and serve the soak's job stream under its kill schedule.

    ``perf`` (a :class:`~repro.perf.config.PerfConfig`) configures the
    simulation cache and, with ``workers > 1``, prewarms every distinct
    (device, graph) spec on worker processes before the — inherently
    serial — event loop starts.  The report digest is unaffected.

    ``journal_path``/``store_path`` attach the durability pair (see
    ``docs/DURABILITY.md``); the digest is again unaffected.
    ``halt_after_events`` hard-kills the run mid-soak for chaos —
    :class:`~repro.errors.FleetKilledError` propagates to the caller,
    which recovers via :meth:`~repro.fleet.FleetRuntime.recover`.

    ``autoscale`` attaches an :class:`~repro.fleet.autoscale.Autoscaler`
    (or, given an :class:`~repro.fleet.autoscale.AutoscalePolicy`,
    builds one wired to the shared timing store the ``perf`` config
    attached, for warm-started spawns).  Per-job result digests are
    unaffected — scaling changes when jobs run, not what they compute.
    """
    from repro.fleet.journal import JobJournal
    from repro.fleet.store import ResultStore

    pool = build_pool(config)
    jobs = generate_jobs(config)
    kills = generate_kills(config)
    journal = (
        JobJournal(journal_path, fsync=journal_fsync)
        if journal_path is not None
        else None
    )
    store = (
        ResultStore(store_path, fsync=journal_fsync)
        if store_path is not None
        else None
    )
    scaler = autoscale
    if scaler is not None and not hasattr(scaler, "observe"):
        # An AutoscalePolicy: build the engine, warm-starting from the
        # shared store the perf config attaches (if any).
        from repro.fleet.autoscale import Autoscaler
        from repro.perf.simcache import get_cache

        if perf is not None:
            perf.apply()
        scaler = Autoscaler(scaler, store=get_cache().shared)
    runtime = FleetRuntime(
        pool, policy, journal=journal, store=store, autoscaler=scaler
    )
    prewarmed = 0
    if perf is not None:
        perf.apply()
        if perf.parallel:
            prewarmed = runtime.prewarm(jobs, perf)
    report = runtime.run(
        jobs, kills=kills, halt_after_events=halt_after_events
    )
    if journal is not None:
        journal.close()
    if store is not None:
        store.close()
    result = FleetSoakResult(config=config, report=report, kills=kills)
    if perf is not None:
        from repro.perf.simcache import get_cache

        result.perf = {
            "workers": perf.workers,
            "prewarmed_specs": prewarmed,
            "placement": dict(runtime.placement.probe_stats),
            **get_cache().stats(),
        }
    if journal is not None or store is not None:
        result.recovery = dict(runtime.recovery_stats)
    if scaler is not None:
        result.autoscale = scaler.stats()
    return result
