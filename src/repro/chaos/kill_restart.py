"""Kill-restart chaos: hard-kill the fleet mid-soak, recover, compare.

This is the campaign mode that closes the durability loop
(``docs/DURABILITY.md``).  One cell:

1. runs the soak *uninterrupted and in-memory* as the reference — its
   :class:`~repro.fleet.report.FleetReport` digest is the ground truth;
2. re-runs it journaled + stored, hard-killing the runtime
   (:class:`~repro.errors.FleetKilledError`, the modelled SIGKILL) at
   seeded crash points derived from the reference run's event count;
3. optionally damages the journal/store files between death and rebirth
   the way real storage does (:class:`~repro.faults.plan.StorageFault`:
   torn write, partial fsync, bit-flip at rest);
4. recovers with :meth:`~repro.fleet.FleetRuntime.recover` — corrupt
   records are quarantined, torn tails truncated, never fatal — and
   resumes, possibly crashing again at the next point;
5. checks the **oracles**: zero lost jobs (every submitted job has a
   durable terminal result), no duplicate results (the store holds each
   idempotency key exactly once, on disk and in memory), zero replay
   divergences, and *recovery equivalence* — the final report digest is
   bit-identical to the uninterrupted reference, modulo the recovery
   side-channel counters.

Everything is a pure function of ``(KillRestartConfig)``: the soak seed
fixes the workload and kill schedule, and the same seed (offset) fixes
the crash points, so a failing cell reproduces from its serialized
config alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.chaos.fleet_soak import (
    FleetSoakConfig,
    build_pool,
    generate_jobs,
    generate_kills,
)
from repro.errors import FleetKilledError, UserInputError
from repro.faults.plan import StorageFault
from repro.fleet.journal import JobJournal, apply_storage_fault, read_journal
from repro.fleet.runtime import FleetPolicy, FleetRuntime
from repro.fleet.store import ResultStore

#: Seed offset for the crash-point stream (kills use +0x5EED, jobs +0).
_CRASH_SEED_OFFSET = 0xC4A5


@dataclass(frozen=True)
class KillRestartConfig:
    """Inputs that fully determine one kill-restart cell."""

    soak: FleetSoakConfig = field(default_factory=FleetSoakConfig)
    #: Hard kills of the *runtime process* (distinct from the soak's
    #: replica kills, which the runtime survives by design).
    crashes: int = 2
    #: Damage applied between a crash and its recovery; fault ``i`` is
    #: applied after crash ``i`` (extras are ignored).
    storage_faults: Tuple[StorageFault, ...] = ()
    #: fsync per journal/store append (the WAL contract; tests may
    #: trade it away for speed — determinism is unaffected).
    fsync: bool = True

    def __post_init__(self):
        if self.crashes < 1:
            raise UserInputError(
                f"kill-restart needs >= 1 crash, got {self.crashes}"
            )

    def to_dict(self) -> dict:
        return {
            "soak": self.soak.to_dict(),
            "crashes": self.crashes,
            "storage_faults": [
                {"kind": f.kind, "record": f.record, "target": f.target}
                for f in self.storage_faults
            ],
            "fsync": self.fsync,
        }

    @staticmethod
    def from_dict(data: dict) -> "KillRestartConfig":
        return KillRestartConfig(
            soak=FleetSoakConfig.from_dict(data.get("soak", {})),
            crashes=int(data.get("crashes", 2)),
            storage_faults=tuple(
                StorageFault(**f) for f in data.get("storage_faults", [])
            ),
            fsync=bool(data.get("fsync", True)),
        )


@dataclass
class KillRestartResult:
    """Outcome of one kill-restart cell (all oracles individually)."""

    config: KillRestartConfig
    reference_digest: str = ""
    final_digest: str = ""
    #: Absolute event counts at which the runtime was hard-killed.
    crash_points: List[int] = field(default_factory=list)
    #: What each applied storage fault did (human-readable).
    storage_fault_log: List[str] = field(default_factory=list)
    restarts: int = 0
    #: Oracle: every submitted job has a durable terminal result.
    lost_jobs: List[str] = field(default_factory=list)
    #: Oracle: on-disk duplicate records per idempotency key (must be 0).
    duplicate_results: int = 0
    #: Oracle: recomputed results that disagreed with durable ones.
    replay_divergences: int = 0
    #: Corruption containment: records quarantined / tail bytes dropped.
    quarantined_records: int = 0
    truncated_bytes: int = 0
    quarantine_path: str = ""
    #: Results that were already durable and got suppressed on replay —
    #: the exactly-once mechanism visibly doing its job.
    duplicates_suppressed: int = 0
    results_restored: int = 0
    #: The final journal scan found an intact ``run-end`` record.
    journal_complete: bool = False

    @property
    def equivalent(self) -> bool:
        """The recovery-equivalence oracle (digest bit-equality)."""
        return (
            self.reference_digest != ""
            and self.reference_digest == self.final_digest
        )

    @property
    def passed(self) -> bool:
        return (
            self.equivalent
            and not self.lost_jobs
            and self.duplicate_results == 0
            and self.replay_divergences == 0
            and self.journal_complete
        )

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "reference_digest": self.reference_digest,
            "final_digest": self.final_digest,
            "equivalent": self.equivalent,
            "crash_points": list(self.crash_points),
            "storage_fault_log": list(self.storage_fault_log),
            "restarts": self.restarts,
            "lost_jobs": list(self.lost_jobs),
            "duplicate_results": self.duplicate_results,
            "replay_divergences": self.replay_divergences,
            "quarantined_records": self.quarantined_records,
            "truncated_bytes": self.truncated_bytes,
            "quarantine_path": self.quarantine_path,
            "duplicates_suppressed": self.duplicates_suppressed,
            "results_restored": self.results_restored,
            "journal_complete": self.journal_complete,
            "passed": self.passed,
        }


def plan_crash_points(
    total_events: int, crashes: int, seed: int
) -> List[int]:
    """Seeded, strictly increasing crash points inside the run.

    Points are *absolute* event counts (a resumed run replays from
    event 0, so point ``p2 > p1`` crashes the second incarnation later
    in the same deterministic event sequence).  At least one event is
    always left after the last crash so the final resume has work to do.
    """
    if total_events < 2:
        raise UserInputError(
            f"run too short to crash: {total_events} event(s)"
        )
    crashes = min(crashes, total_events - 1)
    rng = np.random.default_rng(seed + _CRASH_SEED_OFFSET)
    points = rng.choice(
        np.arange(1, total_events), size=crashes, replace=False
    )
    return sorted(int(p) for p in points)


def run_kill_restart(
    config: KillRestartConfig,
    workdir: Union[str, Path],
    policy: Optional[FleetPolicy] = None,
) -> KillRestartResult:
    """Execute one kill-restart cell end to end (see module docstring).

    ``workdir`` receives the journal (``fleet.journal``), the result
    store (``results.jsonl``) and — when corruption was injected or
    found — the quarantine bundle under ``quarantine/``.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal_path = workdir / "fleet.journal"
    store_path = workdir / "results.jsonl"
    quarantine_dir = workdir / "quarantine"
    for stale in (journal_path, store_path):
        if stale.exists():
            stale.unlink()

    policy = policy or FleetPolicy()
    jobs = generate_jobs(config.soak)
    kills = generate_kills(config.soak)
    result = KillRestartResult(config=config)

    # 1. The uninterrupted in-memory reference: ground-truth digest and
    # the event count the crash points are planned against.
    reference = FleetRuntime(build_pool(config.soak), policy)
    ref_report = reference.run(jobs, kills)
    result.reference_digest = ref_report.digest()
    result.crash_points = plan_crash_points(
        reference.events_processed, config.crashes, config.soak.seed
    )

    # 2. First incarnation: journaled, stored, killed at the first point.
    runtime = FleetRuntime(
        build_pool(config.soak),
        policy,
        journal=JobJournal(journal_path, fsync=config.fsync),
        store=ResultStore(store_path, fsync=config.fsync),
    )
    final = runtime
    final_report = None
    halts = result.crash_points[1:] + [None]
    try:
        final_report = runtime.run(
            jobs, kills, halt_after_events=result.crash_points[0]
        )
    except FleetKilledError:
        pass

    # 3-4. Crash -> damage -> recover -> resume, until a resume survives.
    crash_index = 0
    while final_report is None:
        if crash_index < len(config.storage_faults):
            fault = config.storage_faults[crash_index]
            victim = journal_path if fault.target == "journal" else store_path
            result.storage_fault_log.append(
                f"{fault.target}: {apply_storage_fault(victim, fault)}"
            )
        recovered = FleetRuntime.recover(
            journal_path, store_path, quarantine_dir=quarantine_dir
        )
        result.quarantined_records += recovered.repair.quarantined
        result.truncated_bytes += recovered.repair.truncated_bytes
        if recovered.repair.quarantine_path:
            result.quarantine_path = recovered.repair.quarantine_path
        result.restarts += 1
        halt = halts[crash_index]
        crash_index += 1
        try:
            final_report = recovered.resume(
                halt_after_events=halt, fsync=config.fsync
            )
        except FleetKilledError:
            continue
        final = recovered.runtime

    # 5. Oracles.
    result.final_digest = final_report.digest()
    result.duplicates_suppressed = final.recovery_stats[
        "duplicates_suppressed"
    ]
    result.results_restored = final.recovery_stats["results_restored"]
    result.replay_divergences = final.recovery_stats["replay_divergences"]
    with ResultStore(store_path, fsync=False) as durable:
        result.lost_jobs = sorted(
            j.job_id for j in jobs if j.job_id not in durable
        )
        result.duplicate_results = durable.duplicates_suppressed
    # The journal must end replayable: a final scan may still see
    # quarantined mid-file records (they are evidence, left in place)
    # but the completed run must have landed its run-end record.
    scan = read_journal(journal_path)
    result.journal_complete = any(
        r.type == "run-end" for r in scan.records
    )
    return result
