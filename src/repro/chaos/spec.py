"""Declarative cell descriptions for chaos campaigns.

A campaign is a matrix of **cells**; each cell pins one
``{device, app, graph, fault plan}`` combination.  Both
:class:`GraphSpec` and :class:`CellSpec` are value objects with exact
dict round-trips, so a cell (and therefore a failure) is fully
describable by a JSON blob — the property the repro bundles rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import UserInputError
from repro.faults.plan import FaultPlan
from repro.graph.coo import Graph

#: Generator families a cell may draw its graph from.
GRAPH_KINDS = ("rmat", "powerlaw", "uniform")


@dataclass(frozen=True)
class GraphSpec:
    """A graph described by its generator inputs, not its edges.

    ``build()`` is deterministic: the same spec always yields the same
    COO arrays, which is what makes a repro bundle self-contained — it
    ships the recipe, not megabytes of edge list.
    """

    kind: str
    vertices: int
    edges: int
    seed: int
    exponent: float = 1.8
    weighted: bool = False

    def __post_init__(self):
        if self.kind not in GRAPH_KINDS:
            raise UserInputError(
                f"unknown graph kind {self.kind!r}; expected one of "
                f"{GRAPH_KINDS}"
            )
        if self.vertices < 2 or self.edges < 1:
            raise UserInputError(
                f"degenerate graph spec: {self.vertices} vertices, "
                f"{self.edges} edges"
            )

    @property
    def name(self) -> str:
        return f"{self.kind}{self.vertices}s{self.seed}"

    def build(self) -> Graph:
        """Materialise the graph (deterministic in the spec)."""
        from repro.check.runner import with_random_weights
        from repro.graph.generators import (
            erdos_renyi_graph,
            power_law_graph,
            rmat_graph,
        )

        if self.kind == "rmat":
            scale = max((self.vertices - 1).bit_length(), 2)
            factor = max(self.edges // (1 << scale), 1)
            graph = rmat_graph(scale, factor, seed=self.seed, name=self.name)
        elif self.kind == "powerlaw":
            graph = power_law_graph(
                self.vertices, self.edges, exponent=self.exponent,
                seed=self.seed, name=self.name,
            )
        else:
            graph = erdos_renyi_graph(
                self.vertices, self.edges, seed=self.seed, name=self.name
            )
        if self.weighted:
            graph = with_random_weights(graph, seed=self.seed)
        return graph

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "vertices": self.vertices,
            "edges": self.edges,
            "seed": self.seed,
            "exponent": self.exponent,
            "weighted": self.weighted,
        }

    @staticmethod
    def from_dict(data: dict) -> "GraphSpec":
        return GraphSpec(
            kind=str(data["kind"]),
            vertices=int(data["vertices"]),
            edges=int(data["edges"]),
            seed=int(data["seed"]),
            exponent=float(data.get("exponent", 1.8)),
            weighted=bool(data.get("weighted", False)),
        )


@dataclass(frozen=True)
class CellSpec:
    """One campaign cell: everything needed to re-execute it exactly."""

    cell_id: str
    device: str
    app: str
    graph: GraphSpec
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    root: int = 0
    max_iterations: Optional[int] = 30
    buffer_vertices: int = 256
    num_pipelines: int = 4

    def with_plan(self, plan: FaultPlan) -> "CellSpec":
        """The same cell under a different fault plan (used by shrinking)."""
        return CellSpec(
            cell_id=self.cell_id,
            device=self.device,
            app=self.app,
            graph=self.graph,
            fault_plan=plan,
            root=self.root,
            max_iterations=self.max_iterations,
            buffer_vertices=self.buffer_vertices,
            num_pipelines=self.num_pipelines,
        )

    def to_dict(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "device": self.device,
            "app": self.app,
            "graph": self.graph.to_dict(),
            "fault_plan": self.fault_plan.to_dict(),
            "root": self.root,
            "max_iterations": self.max_iterations,
            "buffer_vertices": self.buffer_vertices,
            "num_pipelines": self.num_pipelines,
        }

    @staticmethod
    def from_dict(data: dict) -> "CellSpec":
        max_iterations = data.get("max_iterations", 30)
        return CellSpec(
            cell_id=str(data["cell_id"]),
            device=str(data["device"]),
            app=str(data["app"]),
            graph=GraphSpec.from_dict(data["graph"]),
            fault_plan=FaultPlan.from_dict(data.get("fault_plan", {})),
            root=int(data.get("root", 0)),
            max_iterations=(
                None if max_iterations is None else int(max_iterations)
            ),
            buffer_vertices=int(data.get("buffer_vertices", 256)),
            num_pipelines=int(data.get("num_pipelines", 4)),
        )
