"""The campaign engine: execute cells, classify outcomes, digest failures.

``run_cell`` is the single execution primitive everything else reuses —
the soak loop, the delta-debugging predicate, and bundle replay all call
it, which is what makes "replays to the identical failure digest" a
meaningful guarantee: there is exactly one code path from a cell spec to
an outcome.

Outcome classification:

* ``ok``          — the run survived and every chaos oracle passed;
* ``conformance`` — the run survived but an oracle failed (wrong answer,
  invariant violation, inconsistent health report);
* ``crash``       — the resilient executor gave up
  (:class:`~repro.errors.ReproError` escaped: watchdog exhaustion,
  unrecoverable fault, scheduling failure).

Every outcome carries a **failure digest**: SHA-256 over the canonical
JSON of ``{status, category, detail, result digest}``.  Cells are
deterministic in their spec, so replaying a cell must reproduce its
digest bit-for-bit — the repro-bundle contract.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.errors import ReproError, UserInputError
from repro.faults.resilience import ResiliencePolicy
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands
from repro.chaos.oracles import validate_cell
from repro.chaos.spec import CellSpec
from repro.perf.config import PerfConfig
from repro.perf.parallel import parallel_map

#: Campaign default: breakers trip fast (threshold 3) so soak runs
#: exercise them, while retry-only faults (detectable flips) get enough
#: attempts that survivable schedules never exhaust by bad luck.
DEFAULT_CHAOS_POLICY = ResiliencePolicy(max_retries=6, breaker_threshold=3)


def result_digest(run) -> str:
    """SHA-256 over the run's property array (dtype + shape + bytes)."""
    if run is None or run.props is None:
        return ""
    array = np.ascontiguousarray(run.props)
    h = hashlib.sha256()
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())
    return h.hexdigest()


def failure_digest(
    status: str, category: str, detail: str, result: str
) -> str:
    """Canonical digest of one cell outcome."""
    payload = json.dumps(
        {
            "status": status,
            "category": category,
            "detail": detail,
            "result": result,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CellResult:
    """Outcome of one cell execution."""

    cell_id: str
    status: str
    category: str = ""
    detail: str = ""
    digest: str = ""
    violations: List[str] = field(default_factory=list)
    health: dict = field(default_factory=dict)
    iterations: int = 0
    total_cycles: float = 0.0

    @property
    def survived(self) -> bool:
        return self.status == "ok"

    @property
    def signature(self) -> Tuple[str, str]:
        """What shrinking matches on: the *kind* of failure, not its
        cycle-exact detail (removing fault events shifts cycle counts)."""
        return (self.status, self.category)

    def to_dict(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "status": self.status,
            "category": self.category,
            "detail": self.detail,
            "digest": self.digest,
            "violations": list(self.violations),
            "health": dict(self.health),
            "iterations": self.iterations,
            "total_cycles": self.total_cycles,
        }

    @staticmethod
    def from_dict(data: dict) -> "CellResult":
        return CellResult(
            cell_id=str(data["cell_id"]),
            status=str(data["status"]),
            category=str(data.get("category", "")),
            detail=str(data.get("detail", "")),
            digest=str(data.get("digest", "")),
            violations=list(data.get("violations", [])),
            health=dict(data.get("health", {})),
            iterations=int(data.get("iterations", 0)),
            total_cycles=float(data.get("total_cycles", 0.0)),
        )


def _framework(cell: CellSpec) -> ReGraph:
    return ReGraph(
        cell.device,
        pipeline=PipelineConfig(
            gather_buffer_vertices=cell.buffer_vertices
        ),
        num_pipelines=cell.num_pipelines,
    )


def _execute(cell: CellSpec, framework: ReGraph, graph, policy):
    """Dispatch the cell's app through the resilient execution layer."""
    kwargs = dict(
        max_iterations=cell.max_iterations,
        fault_plan=cell.fault_plan,
        resilience=policy,
    )
    if cell.app == "pagerank":
        return framework.run_pagerank(graph, **kwargs)
    if cell.app == "bfs":
        return framework.run_bfs(graph, root=cell.root, **kwargs)
    if cell.app == "closeness":
        return framework.run_closeness(graph, root=cell.root, **kwargs)
    if cell.app == "sssp":
        from repro.apps.sssp import SingleSourceShortestPaths

        pre = framework.preprocess(graph)
        internal_root = pre.to_internal_vertex(cell.root)
        return framework.run(
            pre,
            lambda g: SingleSourceShortestPaths(g, root=internal_root),
            **kwargs,
        )
    if cell.app == "wcc":
        from repro.apps.wcc import WeaklyConnectedComponents

        return framework.run(graph, WeaklyConnectedComponents, **kwargs)
    raise UserInputError(f"no chaos dispatch for app {cell.app!r}")


def run_cell(
    cell: CellSpec,
    policy: Optional[ResiliencePolicy] = None,
    bands: ToleranceBands = DEFAULT_BANDS,
) -> CellResult:
    """Execute one cell and classify its outcome (deterministic)."""
    policy = policy if policy is not None else DEFAULT_CHAOS_POLICY
    graph = cell.graph.build()
    if cell.app == "wcc":
        from repro.apps.wcc import symmetrized

        graph = symmetrized(graph)
    framework = _framework(cell)
    try:
        run = _execute(cell, framework, graph, policy)
    except ReproError as exc:
        category = exc.__class__.__name__
        detail = str(exc)
        return CellResult(
            cell_id=cell.cell_id,
            status="crash",
            category=category,
            detail=detail,
            digest=failure_digest("crash", category, detail, ""),
        )
    violations = validate_cell(cell, graph, framework, run, bands)
    status = "ok" if not violations else "conformance"
    category = "" if not violations else violations[0].split(":", 1)[0]
    detail = "" if not violations else "; ".join(violations)
    return CellResult(
        cell_id=cell.cell_id,
        status=status,
        category=category,
        detail=detail,
        digest=failure_digest(status, category, detail, result_digest(run)),
        violations=violations,
        health=run.health.to_dict() if run.health is not None else {},
        iterations=run.iterations,
        total_cycles=run.total_cycles,
    )


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign."""

    config: dict
    cells: List[dict] = field(default_factory=list)
    results: List[CellResult] = field(default_factory=list)
    bundles: List[str] = field(default_factory=list)

    @property
    def survived(self) -> int:
        return sum(r.survived for r in self.results)

    @property
    def failed(self) -> int:
        return len(self.results) - self.survived

    @property
    def passed(self) -> bool:
        return self.failed == 0

    def fault_counts(self) -> dict:
        """Faults absorbed across surviving cells, by category."""
        counts: dict = {}
        for result in self.results:
            for fault in result.health.get("faults", []):
                category = fault.get("category", "?")
                counts[category] = counts.get(category, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "cells": self.cells,
            "results": [r.to_dict() for r in self.results],
            "bundles": list(self.bundles),
        }

    @staticmethod
    def from_dict(data: dict) -> "CampaignReport":
        return CampaignReport(
            config=dict(data.get("config", {})),
            cells=list(data.get("cells", [])),
            results=[
                CellResult.from_dict(r) for r in data.get("results", [])
            ],
            bundles=list(data.get("bundles", [])),
        )


def run_campaign(
    config,
    policy: Optional[ResiliencePolicy] = None,
    bands: ToleranceBands = DEFAULT_BANDS,
    bundle_dir: Optional[str] = None,
    shrink_failures: bool = True,
    max_probes: int = 48,
    progress=None,
    perf: Optional[PerfConfig] = None,
) -> CampaignReport:
    """Run every cell of a campaign; shrink + bundle each failure.

    ``progress`` is an optional ``(index, total, CellResult) -> None``
    callback (the CLI uses it for per-cell lines).

    ``perf`` fans the cells out over worker processes
    (:func:`~repro.perf.parallel.parallel_map`).  Each cell is already a
    deterministic pure function of its spec, so the report is
    bit-identical to a serial run: results are merged in cell order,
    and shrinking/bundling of failures stays in the parent (also in
    cell order).  With workers > 1 the ``progress`` callback fires
    after the batch completes rather than live.
    """
    from repro.chaos.generate import generate_cells

    policy = policy if policy is not None else DEFAULT_CHAOS_POLICY
    workers = 1
    if perf is not None:
        perf.apply()
        workers = perf.workers
    cells = generate_cells(config)
    report = CampaignReport(
        config=config.to_dict(), cells=[c.to_dict() for c in cells]
    )
    runner = functools.partial(run_cell, policy=policy, bands=bands)
    results = parallel_map(runner, cells, workers=workers, perf=perf)
    for index, (cell, result) in enumerate(zip(cells, results)):
        report.results.append(result)
        if progress is not None:
            progress(index, len(cells), result)
        if not result.survived and bundle_dir is not None:
            from repro.chaos.bundle import write_bundle
            from repro.chaos.shrink import shrink_cell

            if shrink_failures:
                shrunk = shrink_cell(
                    cell, result, policy=policy, bands=bands,
                    max_probes=max_probes,
                )
            else:
                shrunk = None
            path = write_bundle(
                bundle_dir, cell, result, policy, shrunk=shrunk
            )
            report.bundles.append(path)
    return report
