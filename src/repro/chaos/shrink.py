"""Fault-plan shrinking: ddmin over the plan's fault events.

When a cell fails, the raw fault plan usually mixes the one event that
matters with noise that doesn't.  We run Zeller-style delta debugging
(*ddmin*: try chunks, then complements, double granularity when stuck)
over the flattened event list, keeping the plan's seed fixed so the
injector draws the same random stream for whatever events remain.

The predicate matches on the failure **signature** ``(status,
category)`` rather than the full digest: removing events shifts cycle
counts embedded in failure details, but the *kind* of failure is what
the minimal plan must preserve.  A probe budget bounds worst-case cost —
once exhausted, the current (still-failing) plan is returned and the
bundle records ``exhausted: true``.

An empty plan is probed first: if the failure reproduces with no faults
at all, the bug is in the runtime, not the fault schedule, and the
shrink reports zero events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.chaos.campaign import CellResult, run_cell
from repro.chaos.spec import CellSpec

#: FaultPlan tuple fields, in flattening order.
PLAN_FIELDS = ("dead_channels", "latency_spikes", "bit_flips", "stalls")

#: A flattened fault event: (plan field, fault dataclass).
Event = Tuple[str, object]


def flatten_plan(plan: FaultPlan) -> List[Event]:
    """The plan's events as one flat, order-stable list."""
    return [
        (name, fault)
        for name in PLAN_FIELDS
        for fault in getattr(plan, name)
    ]


def rebuild_plan(seed: int, events: List[Event]) -> FaultPlan:
    """Reassemble a plan (same seed) from a subset of flattened events."""
    groups = {name: [] for name in PLAN_FIELDS}
    for name, fault in events:
        groups[name].append(fault)
    return FaultPlan(
        seed=seed,
        **{name: tuple(faults) for name, faults in groups.items()},
    )


def _chunks(events: List[Event], n: int) -> List[List[Event]]:
    size = -(-len(events) // n)
    return [events[i:i + size] for i in range(0, len(events), size)]


def ddmin(
    events: List[Event], fails: Callable[[List[Event]], bool]
) -> List[Event]:
    """Minimise ``events`` while ``fails`` holds (1-minimal up to the
    predicate's probe budget)."""
    n = 2
    while len(events) >= 2:
        chunks = _chunks(events, n)
        reduced = False
        for chunk in chunks:
            if fails(chunk):
                events = chunk
                n = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(chunks)):
                complement = [
                    e for j, c in enumerate(chunks) if j != i for e in c
                ]
                if fails(complement):
                    events = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), 2 * n)
    return events


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing cell."""

    plan: FaultPlan
    result: CellResult
    probes: int
    original_events: int
    shrunk_events: int
    exhausted: bool = False

    def stats(self) -> dict:
        return {
            "probes": self.probes,
            "original_events": self.original_events,
            "shrunk_events": self.shrunk_events,
            "exhausted": self.exhausted,
        }


def shrink_cell(
    cell: CellSpec,
    failure: CellResult,
    policy: Optional[ResiliencePolicy] = None,
    bands: ToleranceBands = DEFAULT_BANDS,
    max_probes: int = 48,
) -> ShrinkResult:
    """Delta-debug ``cell``'s fault plan down to a minimal failing plan."""
    signature = failure.signature
    seed = cell.fault_plan.seed
    state = {"probes": 0, "exhausted": False}

    def fails(events: List[Event]) -> bool:
        if state["probes"] >= max_probes:
            state["exhausted"] = True
            return False
        state["probes"] += 1
        trial = cell.with_plan(rebuild_plan(seed, events))
        return run_cell(trial, policy=policy, bands=bands).signature \
            == signature

    events = flatten_plan(cell.fault_plan)
    if fails([]):
        # The failure is not fault-induced: a no-fault run reproduces it.
        events = []
    else:
        events = ddmin(events, fails)
    shrunk_plan = rebuild_plan(seed, events)
    shrunk_result = run_cell(
        cell.with_plan(shrunk_plan), policy=policy, bands=bands
    )
    return ShrinkResult(
        plan=shrunk_plan,
        result=shrunk_result,
        probes=state["probes"],
        original_events=len(flatten_plan(cell.fault_plan)),
        shrunk_events=len(events),
        exhausted=state["exhausted"],
    )
