"""Seeded generation of randomized campaign cells.

One campaign seed determines every cell exactly: which device, app and
graph each cell gets, and the fault schedule injected into it.  Faults
are drawn from the **survivable** envelope by default — detectable
bit-flips, pinned stalls, bounded latency spikes, at most one dead
channel — because the campaign's null hypothesis is *the runtime absorbs
everything the resilience layer was built for*.  Anything the runtime is
not expected to survive (silent flips, unpinned stalls) is reserved for
deliberate regression fixtures, not the random soak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import UserInputError
from repro.faults.plan import (
    BitFlipFault,
    DeadChannelFault,
    FaultPlan,
    LatencySpikeFault,
    PipelineStallFault,
)
from repro.chaos.spec import GRAPH_KINDS, CellSpec, GraphSpec

#: Apps the campaign can validate (must all have chaos oracles).
CAMPAIGN_APPS = ("pagerank", "bfs", "closeness", "sssp", "wcc")

#: (min events, max events, dead-channel probability) per intensity.
INTENSITIES = {
    "light": (1, 2, 0.1),
    "moderate": (1, 3, 0.3),
    "heavy": (2, 5, 0.6),
}


@dataclass(frozen=True)
class CampaignConfig:
    """Inputs that fully determine a campaign's cell matrix."""

    seed: int = 0
    cells: int = 50
    devices: Tuple[str, ...] = ("U280", "U50")
    apps: Tuple[str, ...] = CAMPAIGN_APPS
    intensity: str = "moderate"
    buffer_vertices: int = 256
    num_pipelines: int = 4
    max_iterations: int = 30

    def __post_init__(self):
        if self.cells < 1:
            raise UserInputError(f"campaign needs >= 1 cell, got {self.cells}")
        if self.intensity not in INTENSITIES:
            raise UserInputError(
                f"unknown intensity {self.intensity!r}; expected one of "
                f"{sorted(INTENSITIES)}"
            )
        if not self.devices:
            raise UserInputError("campaign needs at least one device")
        unknown = [a for a in self.apps if a not in CAMPAIGN_APPS]
        if unknown:
            raise UserInputError(
                f"apps without chaos oracles: {unknown}; "
                f"available: {CAMPAIGN_APPS}"
            )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cells": self.cells,
            "devices": list(self.devices),
            "apps": list(self.apps),
            "intensity": self.intensity,
            "buffer_vertices": self.buffer_vertices,
            "num_pipelines": self.num_pipelines,
            "max_iterations": self.max_iterations,
        }

    @staticmethod
    def from_dict(data: dict) -> "CampaignConfig":
        return CampaignConfig(
            seed=int(data.get("seed", 0)),
            cells=int(data.get("cells", 50)),
            devices=tuple(data.get("devices", ("U280", "U50"))),
            apps=tuple(data.get("apps", CAMPAIGN_APPS)),
            intensity=str(data.get("intensity", "moderate")),
            buffer_vertices=int(data.get("buffer_vertices", 256)),
            num_pipelines=int(data.get("num_pipelines", 4)),
            max_iterations=int(data.get("max_iterations", 30)),
        )


def _graph_spec(rng: np.random.Generator, app: str) -> GraphSpec:
    kind = GRAPH_KINDS[int(rng.integers(len(GRAPH_KINDS)))]
    vertices = int(rng.integers(256, 1025))
    edges = vertices * int(rng.integers(4, 11))
    return GraphSpec(
        kind=kind,
        vertices=vertices,
        edges=edges,
        seed=int(rng.integers(1, 1_000_000)),
        exponent=float(rng.uniform(1.6, 2.0)),
        weighted=(app == "sssp"),
    )


def _fault_plan(
    rng: np.random.Generator, intensity: str, num_pipelines: int
) -> FaultPlan:
    lo, hi, p_dead = INTENSITIES[intensity]
    num_events = int(rng.integers(lo, hi + 1))
    num_channels = 2 * num_pipelines
    dead: List[DeadChannelFault] = []
    spikes: List[LatencySpikeFault] = []
    flips: List[BitFlipFault] = []
    stalls: List[PipelineStallFault] = []
    for _ in range(num_events):
        kind = rng.uniform()
        if kind < p_dead * 0.5 and not dead:
            # At most one dead channel per cell: each one permanently
            # retires a pipeline, and stacking several would shrink the
            # topology below what small graphs schedule sensibly onto.
            dead.append(DeadChannelFault(
                channel=int(rng.integers(num_channels)),
                onset_cycle=float(rng.uniform(0, 5_000)),
            ))
        elif kind < 0.45:
            spikes.append(LatencySpikeFault(
                channel=int(rng.integers(num_channels)),
                onset_cycle=float(rng.uniform(0, 5_000)),
                duration_cycles=float(rng.uniform(10_000, 80_000)),
                multiplier=float(rng.uniform(4.0, 16.0)),
            ))
        elif kind < 0.7:
            # Detectable flips are retry-only (no channel to blame), so
            # the rate is kept low enough that exhausting max_retries
            # consecutive attempts stays vanishingly unlikely.
            flips.append(BitFlipFault(
                probability=float(rng.uniform(0.002, 0.01)),
                detectable=True,
                onset_cycle=0.0,
            ))
        else:
            stalls.append(PipelineStallFault(
                probability=float(rng.uniform(0.05, 0.25)),
                pipeline=int(rng.integers(num_pipelines)),
                onset_cycle=0.0,
            ))
    return FaultPlan(
        seed=int(rng.integers(1, 1_000_000)),
        dead_channels=tuple(dead),
        latency_spikes=tuple(spikes),
        bit_flips=tuple(flips),
        stalls=tuple(stalls),
    )


def generate_cells(config: CampaignConfig) -> List[CellSpec]:
    """The cell matrix of a campaign (deterministic in ``config``)."""
    rng = np.random.default_rng(config.seed)
    apps: Sequence[str] = config.apps
    cells = []
    for i in range(config.cells):
        device = config.devices[i % len(config.devices)]
        app = apps[int(rng.integers(len(apps)))]
        graph = _graph_spec(rng, app)
        plan = _fault_plan(rng, config.intensity, config.num_pipelines)
        cells.append(CellSpec(
            cell_id=f"c{config.seed:04d}-{i:04d}",
            device=device,
            app=app,
            graph=graph,
            fault_plan=plan,
            root=0,
            max_iterations=config.max_iterations,
            buffer_vertices=config.buffer_vertices,
            num_pipelines=config.num_pipelines,
        ))
    return cells
