"""Cache-poison chaos: corrupt the shared timing store, prove containment.

The shared cache (:mod:`repro.perf.sharedcache`) sits on real storage,
so it inherits real storage's failure modes: bit rot, torn writes, a
kill -9 between staging and publish, and *staleness* — perfectly intact
entries written by an incompatible configuration.  This cell proves the
containment contract for all of them:

1. **Cold reference** — the seeded workload runs with no shared store;
   its combined result digest is the ground truth.
2. **Seed** — the same workload runs against a fresh store, populating
   it write-through.  Digest must equal the reference (the store is an
   optimisation, never an observable).
3. **Warm** — a third run with an empty L1 but the populated store must
   serve tier-2 hits *and* still match the reference digest.
4. **Poison** — entry files are damaged in place
   (:func:`~repro.fleet.journal.apply_storage_fault`: bit-flip,
   torn-write), one entry is forged with a wrong config digest (stale),
   a junk file is dropped into the store, and a leftover ``.tmp-``
   staging file fakes a kill -9 mid-sync.
5. **Poisoned rerun** — the workload runs again over the damaged store.
   **Oracles**: the digest is still bit-identical to the cold reference
   (poisoned entries were *never served*); every damaged/stale victim
   ends in a ``regraph-cache-quarantine/v1`` bundle; a final
   :meth:`~repro.perf.sharedcache.SharedTimingStore.verify` scrub
   sweeps the orphaned staging file (the only thing a kill -9 may
   lose) and quarantines the junk file.

Everything is a pure function of :class:`CachePoisonConfig` — cells,
victim selection and damage are all seeded — so a failing cell
reproduces from its serialized config alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import List, Optional, Set, Tuple, Union

import numpy as np

from repro.chaos.campaign import run_cell
from repro.chaos.spec import CellSpec, GraphSpec
from repro.errors import UserInputError
from repro.faults.plan import StorageFault
from repro.fleet.journal import apply_storage_fault
from repro.perf.sharedcache import SharedTimingStore, encode_entry
from repro.perf.simcache import configure_cache, get_cache

#: Victim-selection seed offset (jobs use the config seed itself).
_POISON_SEED_OFFSET = 0xCA5E


@dataclass(frozen=True)
class CachePoisonConfig:
    """Inputs that fully determine one cache-poison cell."""

    apps: Tuple[str, ...] = ("pagerank", "bfs")
    #: Seeded graphs per app (seeds ``seed .. seed+graphs-1``).
    graphs: int = 3
    vertices: int = 192
    edges: int = 768
    seed: int = 0
    max_iterations: int = 5
    #: Damage mix applied in the poison phase (clamped to the number of
    #: published entries).
    bit_flips: int = 2
    torn_writes: int = 2
    stale_entries: int = 1

    def __post_init__(self):
        if not self.apps:
            raise UserInputError("cache-poison needs at least one app")
        if self.graphs < 1:
            raise UserInputError(
                f"cache-poison needs >= 1 graph, got {self.graphs}"
            )
        if min(self.bit_flips, self.torn_writes, self.stale_entries) < 0:
            raise UserInputError("damage counts must be non-negative")
        if self.bit_flips + self.torn_writes + self.stale_entries < 1:
            raise UserInputError("cache-poison needs >= 1 damaged entry")

    def to_dict(self) -> dict:
        return {
            "apps": list(self.apps),
            "graphs": self.graphs,
            "vertices": self.vertices,
            "edges": self.edges,
            "seed": self.seed,
            "max_iterations": self.max_iterations,
            "bit_flips": self.bit_flips,
            "torn_writes": self.torn_writes,
            "stale_entries": self.stale_entries,
        }

    @staticmethod
    def from_dict(data: dict) -> "CachePoisonConfig":
        data = dict(data)
        apps = data.pop("apps", None)
        return CachePoisonConfig(
            **data,
            **({"apps": tuple(apps)} if apps is not None else {}),
        )


@dataclass
class CachePoisonResult:
    """Outcome of one cache-poison cell (all oracles individually)."""

    config: CachePoisonConfig
    reference_digest: str = ""
    seeded_digest: str = ""
    warm_digest: str = ""
    poisoned_digest: str = ""
    #: Entries the seed run published into the store.
    entries_seeded: int = 0
    #: Tier-2 hits the warm run served (must be > 0 to prove tiering).
    tier2_hits_warm: int = 0
    #: What the poison phase did, per victim (human-readable).
    poison_log: List[str] = field(default_factory=list)
    #: Keys damaged (bit-flip/torn) or forged stale.
    poisoned_keys: List[str] = field(default_factory=list)
    #: Victims the rerun/scrub pulled into quarantine bundles.
    quarantined_keys: List[str] = field(default_factory=list)
    stale_served: int = 0
    #: Final verify() scrub accounting.
    swept_tmp: int = 0
    scrub_quarantined: int = 0

    @property
    def digests_equal(self) -> bool:
        """Every phase reproduced the cold reference bit-for-bit."""
        return self.reference_digest != "" and (
            self.reference_digest
            == self.seeded_digest
            == self.warm_digest
            == self.poisoned_digest
        )

    @property
    def all_victims_quarantined(self) -> bool:
        quarantined = set(self.quarantined_keys)
        return all(k in quarantined for k in self.poisoned_keys)

    @property
    def passed(self) -> bool:
        return (
            self.digests_equal
            and self.entries_seeded > 0
            and self.tier2_hits_warm > 0
            and bool(self.poisoned_keys)
            and self.all_victims_quarantined
            and self.stale_served == 0
            and self.swept_tmp >= 1
            and self.scrub_quarantined >= 1
        )

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "reference_digest": self.reference_digest,
            "seeded_digest": self.seeded_digest,
            "warm_digest": self.warm_digest,
            "poisoned_digest": self.poisoned_digest,
            "digests_equal": self.digests_equal,
            "entries_seeded": self.entries_seeded,
            "tier2_hits_warm": self.tier2_hits_warm,
            "poison_log": list(self.poison_log),
            "poisoned_keys": list(self.poisoned_keys),
            "quarantined_keys": list(self.quarantined_keys),
            "all_victims_quarantined": self.all_victims_quarantined,
            "stale_served": self.stale_served,
            "swept_tmp": self.swept_tmp,
            "scrub_quarantined": self.scrub_quarantined,
            "passed": self.passed,
        }


def _cells(config: CachePoisonConfig) -> List[CellSpec]:
    """The deterministic workload: clean cells over seeded graphs."""
    cells = []
    for app in config.apps:
        for offset in range(config.graphs):
            cells.append(CellSpec(
                cell_id=f"poison-{app}-{offset}",
                device="U50",
                app=app,
                graph=GraphSpec(
                    kind="uniform",
                    vertices=config.vertices,
                    edges=config.edges,
                    seed=config.seed + offset,
                ),
                max_iterations=config.max_iterations,
            ))
    return cells


def _run_workload(
    config: CachePoisonConfig,
    shared_dir: Optional[Path],
    track_reads: Optional[Set[str]] = None,
) -> str:
    """Run every cell on an empty L1 (shared tier as given); combined
    digest over the per-cell outcome digests.

    ``track_reads`` collects every key the run looks up in the shared
    tier — the read-reachable set stale forgery must target, since
    staleness (unlike byte damage) is only detectable at a digest-
    carrying lookup, never by the digest-less scrub.
    """
    cache = configure_cache(enabled=True, shared_dir=shared_dir)
    cache.clear()
    if track_reads is not None and cache.shared is not None:
        store_get = cache.shared.get

        def tracked_get(key, config_digest=None):
            track_reads.add(key)
            return store_get(key, config_digest)

        cache.shared.get = tracked_get
    digest = sha256()
    for cell in _cells(config):
        outcome = run_cell(cell)
        digest.update(outcome.digest.encode())
    return digest.hexdigest()


def _pick_victims(
    store: SharedTimingStore,
    config: CachePoisonConfig,
    read_keys: Set[str],
) -> Tuple[List[str], List[str], List[str]]:
    """Seeded, disjoint victim keys for (bit-flip, torn, stale).

    Stale victims come from the *read-reachable* keys only: byte damage
    is caught by checksums wherever it hides (the scrub included), but
    a wrong config digest is only ever compared at a real lookup, so
    forging an unread entry would prove nothing.
    """
    keys = store.keys()
    rng = np.random.default_rng(config.seed + _POISON_SEED_OFFSET)
    readable = sorted(set(read_keys) & set(keys))
    stale_count = min(config.stale_entries, len(readable))
    stale = sorted(
        readable[i]
        for i in rng.choice(
            len(readable), size=stale_count, replace=False
        )
    ) if stale_count else []
    remaining = [k for k in keys if k not in set(stale)]
    wanted = config.bit_flips + config.torn_writes
    count = min(wanted, len(remaining))
    chosen = [
        remaining[i]
        for i in rng.choice(len(remaining), size=count, replace=False)
    ]
    flips = chosen[: config.bit_flips]
    torn = chosen[config.bit_flips:]
    return flips, torn, stale


def run_cache_poison(
    config: CachePoisonConfig,
    workdir: Union[str, Path],
) -> CachePoisonResult:
    """Execute one cache-poison cell end to end (see module docstring).

    ``workdir`` receives the shared store under ``shared-cache/``
    (quarantine bundles end up in ``shared-cache/quarantine/``).
    Restores the process-global cache configuration on exit.
    """
    workdir = Path(workdir)
    store_dir = workdir / "shared-cache"
    store_dir.mkdir(parents=True, exist_ok=True)
    result = CachePoisonResult(config=config)

    cache = get_cache()
    saved = (cache.enabled, cache.max_entries, cache.shared)
    try:
        # 1. Cold reference: no shared tier anywhere near the run.
        result.reference_digest = _run_workload(config, None)

        # 2. Seed the store write-through; digest must not move.
        result.seeded_digest = _run_workload(config, store_dir)
        store = get_cache().shared
        result.entries_seeded = store.writes

        # 3. Warm: empty L1, populated store — tier-2 must serve.
        read_keys: Set[str] = set()
        result.warm_digest = _run_workload(
            config, store_dir, track_reads=read_keys
        )
        result.tier2_hits_warm = get_cache().tier2_hits

        # 4. Poison.
        flips, torn, stale = _pick_victims(store, config, read_keys)
        for key in flips:
            note = apply_storage_fault(
                store.entry_path(key),
                StorageFault(kind="bit-flip", target="shared-cache"),
            )
            result.poison_log.append(f"bit-flip {key[:12]}...: {note}")
        for key in torn:
            note = apply_storage_fault(
                store.entry_path(key),
                StorageFault(kind="torn-write", target="shared-cache"),
            )
            result.poison_log.append(f"torn-write {key[:12]}...: {note}")
        for key in stale:
            timing = store.get(key)  # digest-agnostic read of the victim
            if timing is None:
                continue
            store.entry_path(key).write_text(
                encode_entry(key, timing, config_digest="0" * 64)
            )
            result.poison_log.append(
                f"forged stale config digest on {key[:12]}..."
            )
        result.poisoned_keys = sorted(flips + torn + stale)
        # A kill -9 between staging and publish: an orphaned tmp file.
        orphan = store_dir / (
            "f" * 64 + ".json.tmp-99999-deadbeef"
        )
        orphan.write_text('{"schema":"regraph-simcache/v1","key":"torn')
        # Foreign junk in the store directory.
        junk = store_dir / ("junk-" + "0" * 59 + ".json")
        junk.write_text("not a cache entry\n")

        # 5. Poisoned rerun: bit-identical or the cell fails.
        stale_before = store.stale
        result.poisoned_digest = _run_workload(config, store_dir)
        rerun_store = get_cache().shared
        # Served-stale would require get() to return a mismatched entry;
        # the counter tracks detections, the digest equality above is
        # what proves none leaked into results.
        result.stale_served = 0 if rerun_store.stale >= stale_before else 1

        # 6. Scrub: sweep the orphan, quarantine the junk.
        scrub = rerun_store.verify()
        result.swept_tmp = scrub["swept_tmp"]
        result.scrub_quarantined = scrub["quarantined"]
        result.quarantined_keys = sorted(
            b.name[: -len(".quarantine.json")]
            for b in rerun_store.quarantine_bundles()
        )
    finally:
        cache = get_cache()
        cache.enabled, cache.max_entries, cache.shared = saved
        cache.clear()
    return result
