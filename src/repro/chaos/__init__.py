"""Chaos campaigns: randomized fault soak testing with oracles.

The subsystem that drives PR 1 (fault injection + resilient execution)
and PR 2 (conformance oracles + trace invariants) *together* at scale:

* :mod:`repro.chaos.spec`     — cell/graph value objects (JSON round-trip);
* :mod:`repro.chaos.generate` — seeded randomized cell matrices;
* :mod:`repro.chaos.campaign` — the execution engine + failure digests;
* :mod:`repro.chaos.oracles`  — correctness checks on surviving runs;
* :mod:`repro.chaos.shrink`   — ddmin fault-plan minimisation;
* :mod:`repro.chaos.bundle`   — replayable repro bundles;
* :mod:`repro.chaos.fleet_soak` — seeded job streams against the fleet;
* :mod:`repro.chaos.kill_restart` — hard-kill the fleet mid-soak,
  recover from the write-ahead journal, assert recovery equivalence;
* :mod:`repro.chaos.serve_kill` — crash the wall-clock serving gateway
  mid-load, recover from its SQLite store + traffic bundle.
"""

from repro.chaos.bundle import (
    BUNDLE_SCHEMA,
    ReplayResult,
    load_bundle,
    make_bundle,
    replay_bundle,
    write_bundle,
)
from repro.chaos.campaign import (
    DEFAULT_CHAOS_POLICY,
    CampaignReport,
    CellResult,
    failure_digest,
    result_digest,
    run_campaign,
    run_cell,
)
from repro.chaos.generate import (
    CAMPAIGN_APPS,
    INTENSITIES,
    CampaignConfig,
    generate_cells,
)

from repro.chaos.shrink import (
    ShrinkResult,
    ddmin,
    flatten_plan,
    rebuild_plan,
    shrink_cell,
)
from repro.chaos.spec import GRAPH_KINDS, CellSpec, GraphSpec

#: Lazy (PEP 562) exports: kill_restart pulls in the fleet package,
#: which itself imports repro.chaos.generate — an eager import here
#: would close that cycle during package init.  fleet_soak stays out of
#: the eager list for the same reason.
_LAZY_EXPORTS = {
    "KillRestartConfig": "repro.chaos.kill_restart",
    "KillRestartResult": "repro.chaos.kill_restart",
    "plan_crash_points": "repro.chaos.kill_restart",
    "run_kill_restart": "repro.chaos.kill_restart",
    "ServeKillConfig": "repro.chaos.serve_kill",
    "ServeKillResult": "repro.chaos.serve_kill",
    "run_serve_kill": "repro.chaos.serve_kill",
}


def __getattr__(name):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.chaos' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)

__all__ = [
    "BUNDLE_SCHEMA",
    "CAMPAIGN_APPS",
    "CampaignConfig",
    "CampaignReport",
    "CellResult",
    "CellSpec",
    "DEFAULT_CHAOS_POLICY",
    "GRAPH_KINDS",
    "GraphSpec",
    "INTENSITIES",
    "KillRestartConfig",
    "KillRestartResult",
    "ReplayResult",
    "ServeKillConfig",
    "ServeKillResult",
    "ShrinkResult",
    "ddmin",
    "failure_digest",
    "flatten_plan",
    "generate_cells",
    "load_bundle",
    "make_bundle",
    "plan_crash_points",
    "rebuild_plan",
    "replay_bundle",
    "result_digest",
    "run_campaign",
    "run_cell",
    "run_serve_kill",
    "shrink_cell",
    "write_bundle",
]
