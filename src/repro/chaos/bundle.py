"""Replayable repro bundles: a failure as a single JSON file.

A bundle carries everything needed to re-execute a failing cell with no
access to the campaign that found it: the cell spec (device, app, graph
*recipe*, original fault plan), the resilience policy, the shrunk
minimal plan, and the failure digest the replay must reproduce.  Replay
goes through the same :func:`repro.chaos.campaign.run_cell` primitive
the campaign used, so a digest match means the failure — not merely *a*
failure — was reproduced bit-for-bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import UserInputError
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.check.tolerances import DEFAULT_BANDS, ToleranceBands
from repro.chaos.campaign import CellResult, run_cell
from repro.chaos.shrink import ShrinkResult
from repro.chaos.spec import CellSpec

#: Bundle schema identifier; bump on incompatible layout changes.
BUNDLE_SCHEMA = "regraph-chaos-repro/v1"


def _failure_dict(result: CellResult) -> dict:
    return {
        "status": result.status,
        "category": result.category,
        "detail": result.detail,
        "digest": result.digest,
    }


def make_bundle(
    cell: CellSpec,
    result: CellResult,
    policy: ResiliencePolicy,
    shrunk: Optional[ShrinkResult] = None,
) -> dict:
    """The bundle dict for one failing cell.

    ``failure`` is the outcome the replay must reproduce: the shrunk
    plan's outcome when shrinking ran, the original otherwise.
    """
    replay_failure = shrunk.result if shrunk is not None else result
    return {
        "schema": BUNDLE_SCHEMA,
        "cell": cell.to_dict(),
        "policy": policy.to_dict(),
        "shrunk_plan": (
            shrunk.plan.to_dict() if shrunk is not None else None
        ),
        "failure": _failure_dict(replay_failure),
        "original_failure": _failure_dict(result),
        "shrink": shrunk.stats() if shrunk is not None else None,
    }


def write_bundle(
    bundle_dir: str,
    cell: CellSpec,
    result: CellResult,
    policy: ResiliencePolicy,
    shrunk: Optional[ShrinkResult] = None,
) -> str:
    """Write the bundle to ``bundle_dir/<cell_id>.repro.json``."""
    os.makedirs(bundle_dir, exist_ok=True)
    path = os.path.join(bundle_dir, f"{cell.cell_id}.repro.json")
    with open(path, "w") as fh:
        json.dump(make_bundle(cell, result, policy, shrunk), fh, indent=2)
        fh.write("\n")
    return path


def load_bundle(path: str) -> dict:
    """Read and schema-check a bundle file."""
    with open(path) as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema != BUNDLE_SCHEMA:
        raise UserInputError(
            f"{path}: unsupported bundle schema {schema!r} "
            f"(expected {BUNDLE_SCHEMA})"
        )
    return data


@dataclass
class ReplayResult:
    """Outcome of replaying one bundle."""

    reproduced: bool
    expected_digest: str
    actual_digest: str
    result: CellResult


def replay_bundle(
    bundle, bands: ToleranceBands = DEFAULT_BANDS
) -> ReplayResult:
    """Re-execute a bundle (dict or path) and compare failure digests."""
    if isinstance(bundle, str):
        bundle = load_bundle(bundle)
    cell = CellSpec.from_dict(bundle["cell"])
    if bundle.get("shrunk_plan") is not None:
        cell = cell.with_plan(FaultPlan.from_dict(bundle["shrunk_plan"]))
    policy = ResiliencePolicy.from_dict(bundle.get("policy", {}))
    result = run_cell(cell, policy=policy, bands=bands)
    expected = bundle["failure"]["digest"]
    return ReplayResult(
        reproduced=(result.digest == expected),
        expected_digest=expected,
        actual_digest=result.digest,
        result=result,
    )
