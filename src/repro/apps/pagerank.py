"""PageRank in fixed-point arithmetic (the paper's PR benchmark).

Matches Listing 1: the stored vertex property is the *pre-divided* score
``rank / out_degree``; scatter pushes it unchanged, gather accumulates by
addition, and apply computes ``(base + d * acc) / out_degree``.  Like
ThunderGP and GraphLily (Sec. VI-A), all arithmetic uses a fixed-point
datatype so Gather PEs sustain II = 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph
from repro.utils.fixed_point import FixedPointFormat


class PageRank(GasApp):
    """Fixed-point PageRank over the GAS interface."""

    prop_dtype = np.int64
    gather_identity = 0
    max_iterations = 20

    def __init__(
        self,
        graph: Graph,
        damping: float = 0.85,
        tolerance: float = 1e-6,
        fmt: FixedPointFormat = FixedPointFormat(),
    ):
        super().__init__(graph)
        self.fmt = fmt
        self.damping_fx = int(fmt.from_float(damping))
        self.base_fx = int(fmt.from_float((1.0 - damping) / graph.num_vertices))
        self.tolerance_fx = max(int(fmt.from_float(tolerance)), 1)
        # Zero-out-degree vertices divide by one, the ThunderGP convention.
        self.divisor = np.maximum(graph.out_degrees(), 1)

    # -- UDFs ----------------------------------------------------------
    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """accScatter: push the pre-divided score (Listing 1, lines 2-3)."""
        return src_props

    def gather(self, buffered, values):
        """accGather: sum of incoming scores (Listing 1, lines 5-6)."""
        return buffered + values

    def gather_at(self, buffer, idx, values):
        """Indexed accumulate with unbuffered semantics."""
        np.add.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """accApply: damp, add base rank, pre-divide by out-degree."""
        new_rank = self.base_fx + self.fmt.multiply(
            self.damping_fx, accumulated
        )
        return new_rank // self.divisor

    # -- run loop ------------------------------------------------------
    def init_props(self) -> np.ndarray:
        """Uniform rank ``1/V``, pre-divided by out-degree."""
        rank = self.fmt.from_float(
            np.full(self.graph.num_vertices, 1.0 / self.graph.num_vertices)
        )
        return rank // self.divisor

    def has_converged(self, old_props, new_props, iteration) -> bool:
        """L-inf distance of pre-divided scores under tolerance."""
        return bool(
            np.max(np.abs(new_props - old_props)) <= self.tolerance_fx
        )

    def finalize(self, props: np.ndarray) -> np.ndarray:
        """Recover float ranks from the pre-divided fixed-point scores."""
        return self.fmt.to_float(props * self.divisor)
