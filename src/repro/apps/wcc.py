"""Weakly Connected Components — an extension app.

Label propagation over the GAS interface: every vertex starts with its own
ID as label; edges propagate the minimum label until a fixpoint.  On a
directed graph this computes components of the *directed reachability
closure* per sweep direction; run it on ``graph + graph.reversed()`` (or
an undirected dataset) for true weak components — the helper
:func:`symmetrized` does that.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph


def symmetrized(graph: Graph) -> Graph:
    """Union of the graph and its transpose, for weak-component runs."""
    return Graph(
        graph.num_vertices,
        np.concatenate((graph.src, graph.dst)),
        np.concatenate((graph.dst, graph.src)),
        name=f"{graph.name}-sym",
    )


class WeaklyConnectedComponents(GasApp):
    """Min-label propagation over the GAS interface."""

    prop_dtype = np.int64
    gather_identity = np.int64(2**31 - 1)
    max_iterations = 1000

    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Propagate the source's current label."""
        return src_props

    def gather(self, buffered, values):
        """Keep the smallest label."""
        return np.minimum(buffered, values)

    def gather_at(self, buffer, idx, values):
        """Indexed minimum with unbuffered semantics."""
        np.minimum.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """Labels only ever decrease."""
        return np.minimum(old_props, accumulated)

    def init_props(self) -> np.ndarray:
        """Every vertex starts in its own component."""
        return np.arange(self.graph.num_vertices, dtype=np.int64)
