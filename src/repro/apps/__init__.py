"""Graph applications on the GAS programming interface (Sec. V-B).

Users implement ``accScatter`` / ``accGather`` / ``accApply``; the three
benchmark applications of the paper (PageRank, BFS, Closeness Centrality)
are provided, plus extension apps demonstrating the interface's range:
WCC, SSSP, SpMV (GraphLily's primitive), multi-source-BFS radii
estimation and incremental (delta) PageRank.  Reference implementations
validate functional results; ``repro.apps.registry`` maps names to
factories for the CLI and host runtime.
"""

from repro.apps.gas import GasApp
from repro.apps.pagerank import PageRank
from repro.apps.delta_pagerank import DeltaPageRank
from repro.apps.bfs import BreadthFirstSearch
from repro.apps.closeness import ClosenessCentrality
from repro.apps.wcc import WeaklyConnectedComponents
from repro.apps.sssp import SingleSourceShortestPaths
from repro.apps.spmv import SpMV, spmv_reference
from repro.apps.radii import RadiiEstimation, radii_reference
from repro.apps.reference import (
    bfs_reference,
    closeness_reference,
    pagerank_reference,
    sssp_reference,
    wcc_reference,
)

__all__ = [
    "GasApp",
    "PageRank",
    "DeltaPageRank",
    "BreadthFirstSearch",
    "ClosenessCentrality",
    "WeaklyConnectedComponents",
    "SingleSourceShortestPaths",
    "SpMV",
    "spmv_reference",
    "RadiiEstimation",
    "radii_reference",
    "bfs_reference",
    "closeness_reference",
    "pagerank_reference",
    "sssp_reference",
    "wcc_reference",
]
