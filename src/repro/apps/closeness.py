"""Closeness Centrality (the paper's CC benchmark).

Computed BFS-style, as graph accelerators do: a full BFS from the source
vertex yields every vertex's hop distance, and the source's closeness is
``(reached - 1) / sum(distances)``.  The GAS kernel is identical to BFS —
which is why Table V's CC rows track the BFS rows so closely — only the
finalisation differs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.bfs import UNVISITED, BreadthFirstSearch
from repro.graph.coo import Graph


class ClosenessCentrality(BreadthFirstSearch):
    """Closeness centrality of ``root`` via a GAS BFS sweep."""

    def __init__(self, graph: Graph, root: int = 0):
        super().__init__(graph, root=root)

    def finalize(self, props: np.ndarray) -> float:
        """``(reached - 1) / sum of distances`` from the root.

        Returns 0.0 when the root reaches nothing (isolated vertex).
        """
        reached = props < UNVISITED
        num_reached = int(reached.sum())
        if num_reached <= 1:
            return 0.0
        total_distance = float(props[reached].sum())
        if total_distance == 0.0:
            return 0.0
        return (num_reached - 1) / total_distance
