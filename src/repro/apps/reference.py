"""Reference algorithm implementations for functional validation.

Plain NumPy/CSR algorithms, written independently of the GAS machinery, so
tests can check that the simulated accelerator computes the same answers
(up to fixed-point resolution for PageRank).
"""

from __future__ import annotations

import numpy as np

from repro.graph.coo import Graph
from repro.graph.csr import CsrGraph


def pagerank_reference(
    graph: Graph,
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 0.0,
) -> np.ndarray:
    """Power-iteration PageRank in float64 (dangling mass dropped,
    matching the accelerator's pre-divide-by-out-degree kernel)."""
    n = graph.num_vertices
    out_deg = np.maximum(graph.out_degrees(), 1)
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    for _ in range(iterations):
        contrib = rank / out_deg
        acc = np.zeros(n)
        np.add.at(acc, graph.dst, contrib[graph.src])
        new_rank = base + damping * acc
        if tolerance and np.max(np.abs(new_rank - rank)) <= tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def bfs_reference(graph: Graph, root: int = 0) -> np.ndarray:
    """Frontier BFS over out-CSR; unvisited vertices get 2**31 - 1."""
    csr = CsrGraph.from_coo(graph)
    levels = np.full(graph.num_vertices, 2**31 - 1, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        nxt = []
        for v in frontier:
            for u in csr.neighbors(int(v)):
                if levels[u] > depth:
                    levels[u] = depth
                    nxt.append(u)
        frontier = np.array(nxt, dtype=np.int64)
    return levels


def closeness_reference(graph: Graph, root: int = 0) -> float:
    """Closeness centrality of ``root`` from reference BFS levels."""
    levels = bfs_reference(graph, root)
    reached = levels < 2**31 - 1
    num_reached = int(reached.sum())
    if num_reached <= 1:
        return 0.0
    total = float(levels[reached].sum())
    return (num_reached - 1) / total if total else 0.0


def wcc_reference(graph: Graph) -> np.ndarray:
    """Union-find weak components; labels are each component's min ID."""
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s, d in zip(graph.src, graph.dst):
        rs, rd = find(int(s)), find(int(d))
        if rs != rd:
            parent[max(rs, rd)] = min(rs, rd)
    labels = np.array(
        [find(i) for i in range(graph.num_vertices)], dtype=np.int64
    )
    return labels


def sssp_reference(graph: Graph, root: int = 0) -> np.ndarray:
    """Bellman-Ford over the edge list; unreachable gets 2**40."""
    if graph.weights is None:
        raise ValueError("sssp_reference needs a weighted graph")
    inf = np.int64(2**40)
    dist = np.full(graph.num_vertices, inf, dtype=np.int64)
    dist[root] = 0
    weights = np.asarray(graph.weights, dtype=np.int64)
    for _ in range(graph.num_vertices):
        proposal = np.where(
            dist[graph.src] < inf, dist[graph.src] + weights, inf
        )
        new_dist = dist.copy()
        np.minimum.at(new_dist, graph.dst, proposal)
        if np.array_equal(new_dist, dist):
            break
        dist = new_dist
    return dist
