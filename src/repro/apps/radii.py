"""Graph radii estimation via multi-source BFS bitmasks.

A Ligra-lineage application (the CPU baseline's flagship beyond BFS/PR):
run BFS from ``k <= 64`` sample sources simultaneously, packing "visited
by source j" into one 64-bit property word per vertex.  The gather UDF is
bitwise OR — associative and II=1-friendly — and a vertex's eccentricity
estimate is the last iteration at which its bitmask grew.  The graph
radius estimate is the maximum over vertices.

Demonstrates a GAS app whose property is a *bitset*, exercising integer
UDFs beyond min/plus semirings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph


class RadiiEstimation(GasApp):
    """Multi-source BFS with 64-wide bit-parallel frontiers."""

    prop_dtype = np.int64
    gather_identity = 0
    max_iterations = 512

    def __init__(self, graph: Graph, num_sources: int = 64, seed: int = 0):
        super().__init__(graph)
        if not 1 <= num_sources <= 64:
            raise ValueError("num_sources must be in [1, 64]")
        rng = np.random.default_rng(seed)
        count = min(num_sources, graph.num_vertices)
        self.sources = rng.choice(graph.num_vertices, count, replace=False)
        self._round = 0
        self.eccentricity = np.zeros(graph.num_vertices, dtype=np.int64)

    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Propagate the source's visited-by bitmask."""
        return src_props

    def gather(self, buffered, values):
        """Union of visited-by sets."""
        return buffered | values

    def gather_at(self, buffer, idx, values):
        np.bitwise_or.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """Union with the previous mask; track growth for eccentricity."""
        new_props = old_props | accumulated
        self._round += 1
        grew = new_props != old_props
        self.eccentricity[grew] = self._round
        return new_props

    def init_props(self) -> np.ndarray:
        props = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for j, source in enumerate(self.sources):
            props[source] |= np.int64(1) << j
        return props

    def finalize(self, props: np.ndarray) -> dict:
        """Radius/diameter estimates over the sampled sources."""
        reached = props != 0
        return {
            "eccentricity": self.eccentricity,
            "radius_estimate": int(
                self.eccentricity[reached].min() if reached.any() else 0
            ),
            "diameter_estimate": int(self.eccentricity.max()),
            "reached": int(reached.sum()),
        }


def radii_reference(graph: Graph, sources: np.ndarray) -> int:
    """Diameter lower bound from per-source BFS (reference)."""
    from repro.apps.reference import bfs_reference

    worst = 0
    for source in sources:
        levels = bfs_reference(graph, int(source))
        finite = levels[levels < 2**31 - 1]
        worst = max(worst, int(finite.max()) if finite.size else 0)
    return worst
