"""Breadth-First Search (the paper's BFS benchmark).

Edge-centric BFS in the GAS model: the property is the vertex's BFS level
(a large sentinel when unvisited); scatter proposes ``level + 1`` across
each edge, gather keeps the minimum, and apply takes the min of the old
level and the proposal.  The run loop converges when no level changes —
each iteration is one full edge sweep, the execution style of ThunderGP
whose TEPS figures Table V compares against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph

#: Sentinel level for unvisited vertices (fits a 32-bit property word).
UNVISITED = np.int64(2**31 - 1)


class BreadthFirstSearch(GasApp):
    """Level-synchronous BFS over the GAS interface."""

    prop_dtype = np.int64
    gather_identity = UNVISITED
    max_iterations = 1000

    def __init__(self, graph: Graph, root: int = 0):
        super().__init__(graph)
        if not 0 <= root < graph.num_vertices:
            raise ValueError(f"root {root} out of range")
        self.root = root

    # -- UDFs ----------------------------------------------------------
    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Propose ``level + 1``; unvisited sources propose the sentinel."""
        return np.where(src_props < UNVISITED, src_props + 1, UNVISITED)

    def gather(self, buffered, values):
        """Keep the smallest proposed level."""
        return np.minimum(buffered, values)

    def gather_at(self, buffer, idx, values):
        """Indexed minimum with unbuffered semantics."""
        np.minimum.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """A vertex's level only ever decreases."""
        return np.minimum(old_props, accumulated)

    # -- run loop ------------------------------------------------------
    def init_props(self) -> np.ndarray:
        """Root at level 0, everything else unvisited."""
        props = np.full(self.graph.num_vertices, UNVISITED, dtype=np.int64)
        props[self.root] = 0
        return props

    def finalize(self, props: np.ndarray) -> np.ndarray:
        """BFS levels; unvisited vertices keep the sentinel."""
        return props
