"""Sparse matrix-vector multiplication over the GAS interface.

GraphLily — one of the paper's baselines — expresses all graph algorithms
through SpMV/SpMSpV primitives.  Implementing SpMV as a ReGraph app shows
the GAS interface subsumes the overlay's primitive: ``y = A @ x`` where
``A`` is the (weighted) adjacency matrix in COO and ``x`` the current
property vector.  One iteration per multiply; chaining iterations gives
power-method style kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph
from repro.utils.fixed_point import FixedPointFormat


class SpMV(GasApp):
    """One ``y = A @ x`` per iteration, fixed-point like the hardware."""

    prop_dtype = np.int64
    gather_identity = 0
    max_iterations = 1

    def __init__(self, graph: Graph, x: np.ndarray,
                 fmt: FixedPointFormat = FixedPointFormat()):
        super().__init__(graph)
        if x.shape != (graph.num_vertices,):
            raise ValueError(
                f"x must have one entry per vertex, got shape {x.shape}"
            )
        self.fmt = fmt
        self._x0 = fmt.from_float(np.asarray(x, dtype=np.float64))

    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Multiply ``x[src]`` by the edge's matrix entry (1 if none)."""
        if weights is None:
            return src_props
        return self.fmt.multiply(src_props, self.fmt.from_float(weights))

    def gather(self, buffered, values):
        """Row dot-product accumulation."""
        return buffered + values

    def gather_at(self, buffer, idx, values):
        np.add.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """The new vector is the accumulated product."""
        return accumulated

    def init_props(self) -> np.ndarray:
        return self._x0.copy()

    def has_converged(self, old_props, new_props, iteration) -> bool:
        """SpMV is a single sweep; run exactly ``max_iterations``."""
        return iteration >= self.max_iterations

    def finalize(self, props: np.ndarray) -> np.ndarray:
        return self.fmt.to_float(props)


def spmv_reference(graph: Graph, x: np.ndarray) -> np.ndarray:
    """Dense reference ``y = A @ x`` over the COO edges."""
    y = np.zeros(graph.num_vertices)
    contrib = x[graph.src]
    if graph.weights is not None:
        contrib = contrib * graph.weights
    np.add.at(y, graph.dst, contrib)
    return y
