"""Application registry: name -> factory.

One place mapping user-facing application names to GAS app constructors,
shared by the CLI and the host runtime so both expose the same surface.
Root-taking apps receive the root in *relabelled* (post-DBG) vertex IDs;
the framework's convenience wrappers handle the mapping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.apps.bfs import BreadthFirstSearch
from repro.apps.closeness import ClosenessCentrality
from repro.apps.delta_pagerank import DeltaPageRank
from repro.apps.pagerank import PageRank
from repro.apps.radii import RadiiEstimation
from repro.apps.sssp import SingleSourceShortestPaths
from repro.apps.wcc import WeaklyConnectedComponents
from repro.graph.coo import Graph


class AppSpec:
    """Metadata + factory for one registered application."""

    def __init__(
        self,
        name: str,
        factory: Callable,
        takes_root: bool,
        needs_weights: bool,
        description: str,
    ):
        self.name = name
        self.factory = factory
        self.takes_root = takes_root
        self.needs_weights = needs_weights
        self.description = description

    def build(self, graph: Graph, root: Optional[int] = None):
        """Instantiate the app for a (relabelled) graph."""
        if self.needs_weights and graph.weights is None:
            raise ValueError(f"{self.name} needs a weighted graph")
        if self.takes_root:
            return self.factory(graph, root=root or 0)
        return self.factory(graph)


_REGISTRY: Dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        AppSpec(
            "pagerank", PageRank, takes_root=False, needs_weights=False,
            description="fixed-point PageRank (Listing 1)",
        ),
        AppSpec(
            "delta-pagerank", DeltaPageRank, takes_root=False,
            needs_weights=False,
            description="incremental PageRank propagating only deltas",
        ),
        AppSpec(
            "bfs", BreadthFirstSearch, takes_root=True, needs_weights=False,
            description="level-synchronous breadth-first search",
        ),
        AppSpec(
            "closeness", ClosenessCentrality, takes_root=True,
            needs_weights=False,
            description="closeness centrality of one vertex (BFS-based)",
        ),
        AppSpec(
            "wcc", WeaklyConnectedComponents, takes_root=False,
            needs_weights=False,
            description="min-label connected components",
        ),
        AppSpec(
            "sssp", SingleSourceShortestPaths, takes_root=True,
            needs_weights=True,
            description="single-source shortest paths (weighted)",
        ),
        AppSpec(
            "radii", RadiiEstimation, takes_root=False, needs_weights=False,
            description="graph radii estimation (64-way multi-source BFS)",
        ),
    ]
}


def available_apps() -> List[str]:
    """Registered application names."""
    return sorted(_REGISTRY)


def get_app_spec(name: str) -> AppSpec:
    """Look up an application by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown app {name!r}; available: {available_apps()}"
        )
    return _REGISTRY[key]
