"""Single-Source Shortest Paths — an extension app using edge weights.

Bellman-Ford-style relaxation over the GAS interface: scatter proposes
``dist(src) + weight``, gather and apply keep minima.  Demonstrates the
weighted-edge path of the programming interface (the optional third word
of the COO edge record, Fig. 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph

#: Sentinel distance for unreachable vertices.
UNREACHED = np.int64(2**40)


class SingleSourceShortestPaths(GasApp):
    """SSSP with non-negative integer weights over the GAS interface."""

    prop_dtype = np.int64
    gather_identity = UNREACHED
    uses_weights = True
    max_iterations = 10_000

    def __init__(self, graph: Graph, root: int = 0):
        super().__init__(graph)
        if graph.weights is None:
            raise ValueError("SSSP needs a weighted graph")
        if np.any(np.asarray(graph.weights) < 0):
            raise ValueError("SSSP needs non-negative weights")
        if not 0 <= root < graph.num_vertices:
            raise ValueError(f"root {root} out of range")
        self.root = root

    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Relax: propose ``dist + weight`` across each edge."""
        if weights is None:
            raise ValueError("SSSP scatter needs edge weights")
        return np.where(
            src_props < UNREACHED,
            src_props + weights.astype(np.int64),
            UNREACHED,
        )

    def gather(self, buffered, values):
        """Keep the shortest proposal."""
        return np.minimum(buffered, values)

    def gather_at(self, buffer, idx, values):
        """Indexed minimum with unbuffered semantics."""
        np.minimum.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """Distances only ever decrease."""
        return np.minimum(old_props, accumulated)

    def init_props(self) -> np.ndarray:
        """Root at distance 0, everything else unreached."""
        props = np.full(self.graph.num_vertices, UNREACHED, dtype=np.int64)
        props[self.root] = 0
        return props
