"""The Gather-Apply-Scatter programming interface (Sec. V-B, Listing 1).

An application defines three UDFs over 32-bit vertex properties:

* ``scatter(src_prop, edge_prop)`` — the update value an edge carries;
* ``gather(buffered, value)`` — an associative, commutative combiner the
  Gather PEs fold at II = 1;
* ``apply(old_prop, accumulated)`` — the per-vertex property update run
  by the Apply module between iterations.

Implementations are NumPy-vectorised: UDFs receive arrays and return
arrays, which is how the simulator executes millions of edges while still
running the *user's* logic on every edge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.graph.coo import Graph


class GasApp(ABC):
    """Base class for GAS applications."""

    #: dtype of the vertex property word (int64 raw for fixed point).
    prop_dtype: np.dtype = np.int64

    #: identity element of the gather combiner (0 for +, INF for min).
    gather_identity = 0

    #: whether the scatter UDF consumes edge weights.
    uses_weights: bool = False

    #: default iteration cap for the run loop.
    max_iterations: int = 100

    def __init__(self, graph: Graph):
        self.graph = graph

    # ------------------------------------------------------------------
    # The three UDFs
    # ------------------------------------------------------------------
    @abstractmethod
    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """accScatter: update value per edge (vectorised)."""

    @abstractmethod
    def gather(self, buffered: np.ndarray, values: np.ndarray):
        """accGather: combine two accumulation arrays (vectorised)."""

    @abstractmethod
    def gather_at(self, buffer: np.ndarray, idx: np.ndarray, values: np.ndarray):
        """In-place indexed gather: fold ``values`` into ``buffer[idx]``.

        Must be the unbuffered ``ufunc.at`` form so repeated destinations
        combine correctly, exactly like the hardware's read-modify-write
        with shift-register hazard resolution (Sec. V-C).
        """

    @abstractmethod
    def apply(self, old_props: np.ndarray, accumulated: np.ndarray):
        """accApply: new property per vertex (vectorised)."""

    # ------------------------------------------------------------------
    # Run-loop hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def init_props(self) -> np.ndarray:
        """Initial vertex property array."""

    def has_converged(
        self, old_props: np.ndarray, new_props: np.ndarray, iteration: int
    ) -> bool:
        """Stop when an iteration leaves every property unchanged."""
        return bool(np.array_equal(old_props, new_props))

    def finalize(self, props: np.ndarray):
        """Post-process the final property array into the app's result."""
        return props

    @property
    def name(self) -> str:
        """Short application name used in reports."""
        return type(self).__name__
