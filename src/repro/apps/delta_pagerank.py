"""Incremental (delta) PageRank.

Instead of re-propagating full scores every sweep, only the *change*
since the last iteration travels along edges: scatter pushes
``delta / out_degree``, gather sums incoming deltas, and apply folds the
damped delta into the rank while emitting the next delta.  On graphs
where most mass converges early this moves far less update traffic —
the same fixed-point datapath, a different algorithmic contract.

Convergence is the natural one: stop when the largest outstanding delta
falls under tolerance.  Final ranks match classic PageRank's fixpoint.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.gas import GasApp
from repro.graph.coo import Graph
from repro.utils.fixed_point import FixedPointFormat


class DeltaPageRank(GasApp):
    """Delta-propagating PageRank over the GAS interface.

    The 32-bit property word carries the *pre-divided pending delta*
    (``delta / out_degree``); ranks accumulate in an app-side array the
    Apply stage owns, mirroring how the hardware keeps the rank vector
    in the Apply module's memory region.
    """

    prop_dtype = np.int64
    gather_identity = 0
    max_iterations = 100

    def __init__(
        self,
        graph: Graph,
        damping: float = 0.85,
        tolerance: float = 1e-7,
        fmt: FixedPointFormat = FixedPointFormat(),
    ):
        super().__init__(graph)
        self.fmt = fmt
        self.damping_fx = int(fmt.from_float(damping))
        self.tolerance_fx = max(int(fmt.from_float(tolerance)), 1)
        self.divisor = np.maximum(graph.out_degrees(), 1)
        base = (1.0 - damping) / graph.num_vertices
        # Fixpoint = sum_k (d P)^k base: rank starts at the teleport term
        # and the teleport term is also the first delta to propagate.
        self.rank_fx = fmt.from_float(np.full(graph.num_vertices, base))
        self._initial_delta = self.rank_fx.copy()

    # -- UDFs ----------------------------------------------------------
    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Push the pre-divided pending delta."""
        return src_props

    def gather(self, buffered, values):
        """Sum incoming deltas."""
        return buffered + values

    def gather_at(self, buffer, idx, values):
        np.add.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """Fold the damped delta into the rank; emit the next delta."""
        damped = self.fmt.multiply(self.damping_fx, accumulated)
        self.rank_fx = self.rank_fx + damped
        return damped // self.divisor

    # -- run loop ------------------------------------------------------
    def init_props(self) -> np.ndarray:
        """First sweep propagates the teleport mass (already in rank)."""
        return self._initial_delta // self.divisor

    def has_converged(self, old_props, new_props, iteration) -> bool:
        """Stop when every pending (pre-divided) delta is tiny."""
        pending = np.abs(new_props) * self.divisor
        return bool(pending.max() <= self.tolerance_fx)

    def finalize(self, props: np.ndarray) -> np.ndarray:
        """Converged ranks in float.

        Pending deltas (bounded by the tolerance) belong to *neighbours'*
        future inflow, so they are simply truncated — the same epsilon
        any tolerance-terminated PageRank leaves on the table.
        """
        return self.fmt.to_float(self.rank_fx)

    def traffic_fraction(self, props: np.ndarray) -> float:
        """Fraction of vertices still carrying a non-zero delta —
        the update traffic an incremental sweep actually moves."""
        return float(np.count_nonzero(props)) / self.graph.num_vertices
