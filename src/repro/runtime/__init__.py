"""Host runtime emulation (Sec. V-B).

ReGraph wraps the Xilinx OpenCL host flow in a handful of encapsulated
APIs (``initAccelerator()`` etc.).  This package reproduces that host
surface against the simulator: device discovery, accelerator program
loading, buffer management at HBM-channel granularity, kernel argument
binding and blocking execution — so host-side application code ports
over with the same call structure.
"""

from repro.runtime.host import (
    AcceleratorHandle,
    DeviceBuffer,
    init_accelerator,
    list_devices,
)

__all__ = [
    "AcceleratorHandle",
    "DeviceBuffer",
    "init_accelerator",
    "list_devices",
]
