"""OpenCL-style host API over the simulated accelerator.

The call sequence mirrors a Vitis host program:

    devices = list_devices()
    handle = init_accelerator("U280")          # context + xclbin load
    handle.load_graph(graph)                   # preprocess + buffers
    result = handle.execute("pagerank")        # enqueue + wait
    handle.release()

Under the hood, ``load_graph`` runs the offline phase (DBG, partitioning,
scheduling) and ``execute`` drives the full-system simulator, charging a
modelled bitstream-programming and buffer-migration overhead so host-side
timing accounting resembles the real flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


from repro.arch.platform import PLATFORMS, FpgaPlatform, get_platform
from repro.core.framework import PreprocessResult, ReGraph
from repro.core.system import RunReport
from repro.errors import (
    AcceleratorReleasedError,
    DeviceOutOfMemoryError,
    NoGraphLoadedError,
    UserInputError,
)
from repro.graph.coo import Graph
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES

#: Modelled one-time xclbin programming latency (seconds).
PROGRAMMING_SECONDS = 2.5

#: Modelled host->HBM transfer bandwidth over PCIe Gen3 x16 (bytes/s).
PCIE_BYTES_PER_SECOND = 12e9


def list_devices() -> List[str]:
    """Names of the available (simulated) accelerator cards."""
    return sorted(PLATFORMS)


@dataclass
class DeviceBuffer:
    """A host-visible handle to a region resident in HBM channels."""

    name: str
    num_bytes: int
    channels: List[int]

    @property
    def per_channel_bytes(self) -> int:
        """Bytes striped to each backing channel."""
        return -(-self.num_bytes // max(len(self.channels), 1))

    def fits(self) -> bool:
        """Whether the striping respects per-channel capacity."""
        return self.per_channel_bytes <= CHANNEL_CAPACITY_BYTES


@dataclass
class AcceleratorHandle:
    """An initialised accelerator context (device + programmed design)."""

    platform: FpgaPlatform
    framework: ReGraph
    programmed: bool = True
    migration_seconds: float = 0.0
    buffers: Dict[str, DeviceBuffer] = field(default_factory=dict)
    _pre: Optional[PreprocessResult] = None
    #: Per-channel circuit breakers shared across ``execute`` calls on
    #: this handle: a channel that keeps faulting stays open (and its
    #: pipeline degraded) for the lifetime of the context, like a real
    #: host runtime blacklisting a flaky HBM channel.  Created lazily on
    #: the first resilient ``execute``.
    breakers: Optional[object] = None

    # -- buffer management --------------------------------------------
    def allocate(self, name: str, num_bytes: int, channels: List[int]):
        """Allocate a named buffer striped over the given channels."""
        if not self.programmed:
            raise AcceleratorReleasedError("accelerator released")
        buffer = DeviceBuffer(name=name, num_bytes=num_bytes, channels=channels)
        if not buffer.fits():
            raise DeviceOutOfMemoryError(
                f"buffer {name!r} needs {buffer.per_channel_bytes} B per "
                f"channel, capacity is {CHANNEL_CAPACITY_BYTES}"
            )
        self.buffers[name] = buffer
        return buffer

    def _migrate(self, num_bytes: int) -> None:
        """Charge host->device transfer time for ``num_bytes``."""
        self.migration_seconds += num_bytes / PCIE_BYTES_PER_SECOND

    # -- graph loading --------------------------------------------------
    def load_graph(self, graph: Graph) -> PreprocessResult:
        """Preprocess and 'migrate' a graph onto the device."""
        if not self.programmed:
            raise AcceleratorReleasedError("accelerator released")
        self._pre = self.framework.preprocess(graph)
        num_pipes = self._pre.plan.accelerator.total_pipelines
        self.allocate(
            "edges", graph.num_edges * graph.edge_bytes,
            channels=list(range(0, 2 * num_pipes, 2)),
        )
        self.allocate(
            "props", graph.num_vertices * 4 * num_pipes,
            channels=list(range(1, 2 * num_pipes, 2)),
        )
        self._migrate(graph.num_edges * graph.edge_bytes)
        self._migrate(graph.num_vertices * 4)
        return self._pre

    # -- execution -------------------------------------------------------
    def execute(
        self,
        app: str,
        root: int = 0,
        max_iterations: Optional[int] = None,
        fault_plan=None,
        resilience=None,
    ) -> RunReport:
        """Enqueue an application and block until completion.

        ``app`` is any registry name (pagerank, bfs, closeness, wcc,
        sssp, radii); ``root`` is an input-graph vertex ID for the apps
        that take one.  ``fault_plan`` / ``resilience`` route the run
        through the resilient execution layer (see
        :meth:`repro.core.framework.ReGraph.run`).
        """
        from repro.apps.registry import get_app_spec

        if self._pre is None:
            raise NoGraphLoadedError(
                "no graph loaded; call load_graph() first"
            )
        try:
            spec = get_app_spec(app)
        except KeyError as exc:
            raise UserInputError(str(exc)) from exc
        internal_root = (
            self._pre.to_internal_vertex(root) if spec.takes_root else None
        )
        if fault_plan is not None or resilience is not None:
            if self.breakers is None:
                from repro.faults.resilience import (
                    CircuitBreakerBank,
                    ResiliencePolicy,
                )

                policy = resilience or ResiliencePolicy()
                self.breakers = CircuitBreakerBank(policy.breaker_threshold)
        return self.framework.run(
            self._pre,
            lambda g: spec.build(g, root=internal_root),
            max_iterations=max_iterations,
            fault_plan=fault_plan,
            resilience=resilience,
            breakers=self.breakers,
        )

    def total_offload_seconds(self, run: RunReport) -> float:
        """End-to-end host view: programming + migration + execution."""
        return PROGRAMMING_SECONDS + self.migration_seconds + run.total_seconds

    def release(self) -> None:
        """Free the context; further calls raise."""
        self.programmed = False
        self.buffers.clear()
        self._pre = None
        self.breakers = None


def init_accelerator(
    platform: str = "U280",
    pipeline=None,
    num_pipelines: Optional[int] = None,
) -> AcceleratorHandle:
    """``initAccelerator()``: create a programmed accelerator context."""
    fw = ReGraph(platform, pipeline=pipeline, num_pipelines=num_pipelines)
    return AcceleratorHandle(platform=get_platform(platform), framework=fw)
