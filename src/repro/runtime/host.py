"""OpenCL-style host API over the simulated accelerator.

The call sequence mirrors a Vitis host program:

    devices = list_devices()
    handle = init_accelerator("U280")          # context + xclbin load
    handle.load_graph(graph)                   # preprocess + buffers
    result = handle.execute("pagerank")        # enqueue + wait
    handle.release()

Under the hood, ``load_graph`` runs the offline phase (DBG, partitioning,
scheduling) and ``execute`` drives the full-system simulator, charging a
modelled bitstream-programming and buffer-migration overhead so host-side
timing accounting resembles the real flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


from repro.arch.platform import PLATFORMS, FpgaPlatform, get_platform
from repro.core.framework import PreprocessResult, ReGraph
from repro.core.system import RunReport
from repro.errors import (
    AcceleratorDrainingError,
    AcceleratorReleasedError,
    DeviceOutOfMemoryError,
    NoGraphLoadedError,
    UserInputError,
)
from repro.graph.coo import Graph
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES

#: Modelled one-time xclbin programming latency (seconds).
PROGRAMMING_SECONDS = 2.5

#: Modelled host->HBM transfer bandwidth over PCIe Gen3 x16 (bytes/s).
PCIE_BYTES_PER_SECOND = 12e9


@dataclass(frozen=True)
class HostTimingConfig:
    """Per-handle host-side timing knobs.

    Historically :data:`PROGRAMMING_SECONDS` and
    :data:`PCIE_BYTES_PER_SECOND` were module constants, which forced
    fleet tests and benchmarks to monkeypatch them; the module constants
    remain as the defaults, but every :class:`AcceleratorHandle` now
    carries its own instance.
    """

    programming_seconds: float = PROGRAMMING_SECONDS
    pcie_bytes_per_second: float = PCIE_BYTES_PER_SECOND

    def __post_init__(self):
        if (
            not math.isfinite(self.programming_seconds)
            or self.programming_seconds < 0
        ):
            raise UserInputError(
                "programming_seconds must be a non-negative finite time, "
                f"got {self.programming_seconds}"
            )
        if math.isnan(self.pcie_bytes_per_second) or (
            self.pcie_bytes_per_second <= 0
        ):
            raise UserInputError(
                "pcie_bytes_per_second must be positive, got "
                f"{self.pcie_bytes_per_second}"
            )

    @staticmethod
    def instant() -> "HostTimingConfig":
        """Zero modelled host overhead (fleet tests and benchmarks)."""
        return HostTimingConfig(
            programming_seconds=0.0, pcie_bytes_per_second=float("inf")
        )

    def to_dict(self) -> dict:
        return {
            "programming_seconds": self.programming_seconds,
            "pcie_bytes_per_second": self.pcie_bytes_per_second,
        }

    @staticmethod
    def from_dict(data: dict) -> "HostTimingConfig":
        return HostTimingConfig(
            programming_seconds=float(
                data.get("programming_seconds", PROGRAMMING_SECONDS)
            ),
            pcie_bytes_per_second=float(
                data.get("pcie_bytes_per_second", PCIE_BYTES_PER_SECOND)
            ),
        )


class VirtualClock:
    """Deterministic monotone clock the fleet runtime schedules against.

    All fleet timing is *modelled* (simulated seconds, like
    :attr:`RunReport.total_seconds`), never wall clock, which is what
    makes a fleet run bit-reproducible from its seed.
    """

    def __init__(self, start: float = 0.0):
        if not math.isfinite(start):
            raise UserInputError(f"clock start must be finite, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (>= 0); returns the new time."""
        if not math.isfinite(seconds) or seconds < 0:
            raise UserInputError(
                f"clock can only advance by a finite non-negative amount, "
                f"got {seconds}"
            )
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move forward to absolute time ``when`` (never backwards)."""
        if not math.isfinite(when):
            raise UserInputError(f"clock target must be finite, got {when}")
        if when > self._now:
            self._now = when
        return self._now


def list_devices() -> List[str]:
    """Names of the available (simulated) accelerator cards."""
    return sorted(PLATFORMS)


@dataclass
class DeviceBuffer:
    """A host-visible handle to a region resident in HBM channels."""

    name: str
    num_bytes: int
    channels: List[int]

    @property
    def per_channel_bytes(self) -> int:
        """Bytes striped to each backing channel."""
        return -(-self.num_bytes // max(len(self.channels), 1))

    def fits(self) -> bool:
        """Whether the striping respects per-channel capacity."""
        return self.per_channel_bytes <= CHANNEL_CAPACITY_BYTES


@dataclass
class AcceleratorHandle:
    """An initialised accelerator context (device + programmed design)."""

    platform: FpgaPlatform
    framework: ReGraph
    programmed: bool = True
    migration_seconds: float = 0.0
    buffers: Dict[str, DeviceBuffer] = field(default_factory=dict)
    #: Host-side timing knobs of this context (instance-level so fleets
    #: can model zero programming latency without monkeypatching).
    timing: HostTimingConfig = field(default_factory=HostTimingConfig)
    #: Draining contexts finish in-flight work but accept nothing new.
    draining: bool = False
    _pre: Optional[PreprocessResult] = None
    #: Health report of the most recent resilient ``execute`` (fleet
    #: placement reads this without re-running anything).
    last_health: Optional[object] = None
    #: Per-channel circuit breakers shared across ``execute`` calls on
    #: this handle: a channel that keeps faulting stays open (and its
    #: pipeline degraded) for the lifetime of the context, like a real
    #: host runtime blacklisting a flaky HBM channel.  Created lazily on
    #: the first resilient ``execute``.
    breakers: Optional[object] = None

    # -- buffer management --------------------------------------------
    def allocate(self, name: str, num_bytes: int, channels: List[int]):
        """Allocate a named buffer striped over the given channels."""
        if not self.programmed:
            raise AcceleratorReleasedError("accelerator released")
        buffer = DeviceBuffer(name=name, num_bytes=num_bytes, channels=channels)
        if not buffer.fits():
            raise DeviceOutOfMemoryError(
                f"buffer {name!r} needs {buffer.per_channel_bytes} B per "
                f"channel, capacity is {CHANNEL_CAPACITY_BYTES}"
            )
        self.buffers[name] = buffer
        return buffer

    def _migrate(self, num_bytes: int) -> None:
        """Charge host->device transfer time for ``num_bytes``."""
        self.migration_seconds += num_bytes / self.timing.pcie_bytes_per_second

    # -- graph loading --------------------------------------------------
    def load_graph(
        self, graph: Graph, pre: Optional[PreprocessResult] = None
    ) -> PreprocessResult:
        """Preprocess and 'migrate' a graph onto the device.

        ``pre`` optionally reuses an existing preprocess of the *same*
        graph (fleet placement preprocesses once per device type to
        score replicas, then hands the result to the chosen one).
        """
        if not self.programmed:
            raise AcceleratorReleasedError("accelerator released")
        if self.draining:
            raise AcceleratorDrainingError(
                "accelerator is draining; no new graphs accepted"
            )
        self._pre = pre if pre is not None else self.framework.preprocess(graph)
        num_pipes = self._pre.plan.accelerator.total_pipelines
        self.allocate(
            "edges", graph.num_edges * graph.edge_bytes,
            channels=list(range(0, 2 * num_pipes, 2)),
        )
        self.allocate(
            "props", graph.num_vertices * 4 * num_pipes,
            channels=list(range(1, 2 * num_pipes, 2)),
        )
        self._migrate(graph.num_edges * graph.edge_bytes)
        self._migrate(graph.num_vertices * 4)
        return self._pre

    # -- execution -------------------------------------------------------
    def execute(
        self,
        app: str,
        root: int = 0,
        max_iterations: Optional[int] = None,
        fault_plan=None,
        resilience=None,
    ) -> RunReport:
        """Enqueue an application and block until completion.

        ``app`` is any registry name (pagerank, bfs, closeness, wcc,
        sssp, radii); ``root`` is an input-graph vertex ID for the apps
        that take one.  ``fault_plan`` / ``resilience`` route the run
        through the resilient execution layer (see
        :meth:`repro.core.framework.ReGraph.run`).
        """
        from repro.apps.registry import get_app_spec

        if not self.programmed:
            raise AcceleratorReleasedError("accelerator released")
        if self.draining:
            raise AcceleratorDrainingError(
                "accelerator is draining; no new work accepted"
            )
        if self._pre is None:
            raise NoGraphLoadedError(
                "no graph loaded; call load_graph() first"
            )
        try:
            spec = get_app_spec(app)
        except KeyError as exc:
            raise UserInputError(str(exc)) from exc
        internal_root = (
            self._pre.to_internal_vertex(root) if spec.takes_root else None
        )
        if fault_plan is not None or resilience is not None:
            if self.breakers is None:
                from repro.faults.resilience import (
                    CircuitBreakerBank,
                    ResiliencePolicy,
                )

                policy = resilience or ResiliencePolicy()
                self.breakers = CircuitBreakerBank(policy.breaker_threshold)
        run = self.framework.run(
            self._pre,
            lambda g: spec.build(g, root=internal_root),
            max_iterations=max_iterations,
            fault_plan=fault_plan,
            resilience=resilience,
            breakers=self.breakers,
        )
        if run.health is not None:
            self.last_health = run.health
        return run

    def total_offload_seconds(self, run: RunReport) -> float:
        """End-to-end host view: programming + migration + execution."""
        return (
            self.timing.programming_seconds
            + self.migration_seconds
            + run.total_seconds
        )

    # -- fleet lifecycle hooks -----------------------------------------
    def drain(self) -> None:
        """Stop accepting new work (in-flight work may still finish)."""
        self.draining = True

    def resume(self) -> None:
        """Accept work again (quarantine canary probes use this)."""
        self.draining = False

    # -- fleet health hooks --------------------------------------------
    def open_breaker_count(self) -> int:
        """Channels this context has blacklisted (placement signal)."""
        if self.breakers is None:
            return 0
        return len(self.breakers.open_channels())

    def breaker_snapshot(self) -> Dict[str, dict]:
        """Per-channel breaker state, empty before any resilient run."""
        if self.breakers is None:
            return {}
        return self.breakers.snapshot()

    def hbm_bytes_used(self) -> int:
        """Bytes currently resident across this context's buffers."""
        return sum(buffer.num_bytes for buffer in self.buffers.values())

    def hbm_bytes_total(self) -> int:
        """Modelled HBM capacity of the card."""
        return self.platform.num_channels * CHANNEL_CAPACITY_BYTES

    def hbm_bytes_free(self) -> int:
        """Remaining modelled HBM capacity (placement signal)."""
        return max(self.hbm_bytes_total() - self.hbm_bytes_used(), 0)

    # -- perf introspection --------------------------------------------
    def cache_stats(self) -> dict:
        """Simulation-cache counters (hits/misses/bypasses/entries).

        The cache is process-global (executions on any handle share
        it), surfaced here because the host handle is where callers
        already look for run accounting.
        """
        from repro.perf.simcache import get_cache

        return get_cache().stats()

    def compiled_stats(self) -> dict:
        """Compiled-core counters (plans/nodes compiled, evaluations,
        memo hits), process-global like :meth:`cache_stats`."""
        from repro.compiled import compiled_enabled, compiled_stats

        stats = compiled_stats()
        stats["enabled"] = compiled_enabled()
        return stats

    def release(self) -> None:
        """Free the context; further calls raise."""
        self.programmed = False
        self.draining = False
        self.buffers.clear()
        self._pre = None
        self.last_health = None
        self.breakers = None


def init_accelerator(
    platform: str = "U280",
    pipeline=None,
    num_pipelines: Optional[int] = None,
    timing: Optional[HostTimingConfig] = None,
    perf=None,
) -> AcceleratorHandle:
    """``initAccelerator()``: create a programmed accelerator context.

    ``perf`` (a :class:`~repro.perf.config.PerfConfig`) configures the
    process-global simulation cache this context's executions use.
    """
    if isinstance(platform, str) and platform.upper() not in PLATFORMS:
        raise UserInputError(
            f"unknown device {platform!r}; valid devices: "
            f"{', '.join(list_devices())}"
        )
    if perf is not None:
        perf.apply()
    fw = ReGraph(platform, pipeline=pipeline, num_pipelines=num_pipelines)
    return AcceleratorHandle(
        platform=get_platform(platform),
        framework=fw,
        timing=timing or HostTimingConfig(),
    )
