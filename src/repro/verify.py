"""Installation self-check: a small correctness matrix.

``verify_installation()`` runs every registered application on small
synthetic graphs through the full simulated system and compares results
against the independent reference implementations — the function a user
runs once after installing to confirm the stack computes correct answers
on their machine.  Exposed on the CLI as ``python -m repro selfcheck``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.reference import (
    bfs_reference,
    closeness_reference,
    pagerank_reference,
    sssp_reference,
    wcc_reference,
)
from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.graph.generators import power_law_graph, rmat_graph


@dataclass(frozen=True)
class CheckResult:
    """One matrix cell's outcome."""

    name: str
    passed: bool
    detail: str


def _check(name: str, condition: bool, detail: str = "") -> CheckResult:
    return CheckResult(name=name, passed=bool(condition), detail=detail)


def _same_partition(labels_a: np.ndarray, labels_b: np.ndarray) -> bool:
    """Whether two labelings induce the same partition into groups."""
    if labels_a.shape != labels_b.shape:
        return False
    _, canon_a = np.unique(labels_a, return_inverse=True)
    _, canon_b = np.unique(labels_b, return_inverse=True)
    # Two partitions match iff the pairing of canonical IDs is bijective.
    pairs = set(zip(canon_a.tolist(), canon_b.tolist()))
    return (
        len(pairs) == len(set(a for a, _ in pairs))
        and len(pairs) == len(set(b for _, b in pairs))
    )


def verify_installation(verbose: bool = False) -> List[CheckResult]:
    """Run the correctness matrix; returns per-check results."""
    results: List[CheckResult] = []
    rng = np.random.default_rng(99)
    graphs = {
        "rmat": rmat_graph(10, 8, seed=2, name="selfcheck-rmat"),
        "powerlaw": power_law_graph(
            1500, 12_000, exponent=1.8, seed=3, name="selfcheck-pl"
        ),
    }

    for gname, graph in graphs.items():
        framework = ReGraph(
            "U280",
            pipeline=PipelineConfig(gather_buffer_vertices=256),
            num_pipelines=4,
        )
        pre = framework.preprocess(graph)
        try:
            pre.plan.validate(expected_edges=graph.num_edges)
            results.append(_check(f"{gname}/plan", True))
        except ValueError as exc:
            results.append(_check(f"{gname}/plan", False, str(exc)))
            continue

        pr = framework.run_pagerank(pre, max_iterations=8)
        ref = pagerank_reference(graph, iterations=pr.iterations)
        err = float(np.max(np.abs(pr.result - ref)))
        results.append(
            _check(f"{gname}/pagerank", err < 1e-3, f"max err {err:.2e}")
        )

        bfs = framework.run_bfs(pre, root=0)
        ok = np.array_equal(bfs.props, bfs_reference(graph, 0))
        results.append(_check(f"{gname}/bfs", ok))

        close = framework.run_closeness(pre, root=0)
        expected = closeness_reference(graph, 0)
        results.append(
            _check(
                f"{gname}/closeness",
                abs(close.result - expected) < 1e-9,
                f"{close.result:.4f} vs {expected:.4f}",
            )
        )

        from repro.apps.wcc import WeaklyConnectedComponents, symmetrized

        sym = symmetrized(graph)
        pre_sym = framework.preprocess(sym)
        wcc = framework.run(pre_sym, WeaklyConnectedComponents)
        # Label values are relabelled vertex IDs, so compare the
        # *partition into components*, not the representative choices.
        ok = _same_partition(wcc.props, wcc_reference(sym))
        results.append(_check(f"{gname}/wcc", ok))

        from repro.apps.sssp import SingleSourceShortestPaths

        weighted = graph.with_weights(
            rng.integers(1, 32, graph.num_edges)
        )
        pre_w = framework.preprocess(weighted)
        root_internal = pre_w.to_internal_vertex(0)
        sssp = framework.run(
            pre_w, lambda g: SingleSourceShortestPaths(g, root=root_internal)
        )
        ok = np.array_equal(sssp.props, sssp_reference(weighted, 0))
        results.append(_check(f"{gname}/sssp", ok))

    if verbose:
        for r in results:
            status = "ok " if r.passed else "FAIL"
            print(f"[{status}] {r.name} {r.detail}")
    return results


def all_passed(results: List[CheckResult]) -> bool:
    """Whether every check in the matrix passed."""
    return all(r.passed for r in results)
