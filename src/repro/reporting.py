"""Plain-text table rendering for benchmark reports.

Every benchmark regenerates its paper table/figure as an aligned text
table, printed to stdout and persisted under ``benchmarks/results/`` so
the artifacts survive a captured pytest run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def write_report(name: str, text: str, directory=None) -> Path:
    """Print the report and persist it under ``benchmarks/results``."""
    print()
    print(text)
    base = Path(directory) if directory else Path(__file__).resolve()
    if directory is None:
        # Repo layout: src/repro/reporting.py -> <repo>/benchmarks/results
        base = base.parent.parent.parent / "benchmarks" / "results"
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"{name}.txt"
    path.write_text(text + "\n")
    return path
