"""Order-preserving process-parallel map with a serial fallback.

Determinism contract: the result list is collected **by submission
index, never by completion order**, so a parallel run merges into
byte-identical reports with a serial one — the caller's loop sees the
same results in the same positions either way.

Failure semantics split two worlds apart:

* *Pool infrastructure* failures — a broken worker pool, fork/pickle
  trouble — degrade to the plain serial loop.  The work item set is
  identical, so the outcome is too, just slower.
* *Task* exceptions (anything ``fn`` raises) propagate unchanged, as
  they would from a serial loop.  A worker pool is an optimisation,
  never an error-swallowing boundary.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Callable, Iterable, List, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Exceptions that mean "the pool broke", not "the task failed".
_POOL_FAILURES = (BrokenProcessPool, PicklingError, OSError)


def _crosses_process_boundary(fn: Callable) -> bool:
    """Whether ``fn`` can be shipped to a worker at all.

    Probed up front because CPython reports an unpicklable callable
    lazily from the future, and as ``AttributeError``/``TypeError``
    rather than ``PicklingError`` — catching those around the pool
    would misread genuine task failures as infrastructure ones.
    """
    try:
        pickle.dumps(fn)
    except (PicklingError, AttributeError, TypeError):
        return False
    return True


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items`` on up to ``workers`` processes.

    Runs serially when ``workers <= 1`` or there are fewer than two
    items (a pool would only add fork latency).  ``fn`` and the items
    must be picklable for the parallel path; anything unpicklable is
    caught as an infrastructure failure and executed serially instead.
    """
    items = list(items)
    if workers <= 1 or len(items) < 2 or not _crosses_process_boundary(fn):
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items))
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]
    except _POOL_FAILURES:
        return [fn(item) for item in items]
