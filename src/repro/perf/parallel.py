"""Order-preserving process-parallel map with a serial fallback.

Determinism contract: the result list is collected **by submission
index, never by completion order**, so a parallel run merges into
byte-identical reports with a serial one — the caller's loop sees the
same results in the same positions either way.

Failure semantics split two worlds apart:

* *Pool infrastructure* failures — a broken worker pool, fork/pickle
  trouble — degrade to the plain serial loop.  The work item set is
  identical, so the outcome is too, just slower.
* *Task* exceptions (anything ``fn`` raises) propagate unchanged, as
  they would from a serial loop.  A worker pool is an optimisation,
  never an error-swallowing boundary.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Exceptions that mean "the pool broke", not "the task failed".
_POOL_FAILURES = (BrokenProcessPool, PicklingError, OSError)


def _apply_perf_in_worker(perf_dict: dict) -> None:
    """Pool initializer: re-apply the caller's PerfConfig in the worker.

    Without this, workers run on whatever process-global cache/compiled
    state they inherited (fork) or the defaults (spawn) — so
    ``--no-sim-cache``/``--cache-entries``/``--shared-cache`` silently
    stopped applying inside pools.  The config travels as its
    ``to_dict()`` payload (plain primitives, picklable everywhere).
    """
    from repro.perf.config import PerfConfig

    PerfConfig.from_dict(perf_dict).apply()


def _crosses_process_boundary(fn: Callable) -> bool:
    """Whether ``fn`` can be shipped to a worker at all.

    Probed up front because CPython reports an unpicklable callable
    lazily from the future, and as ``AttributeError``/``TypeError``
    rather than ``PicklingError`` — catching those around the pool
    would misread genuine task failures as infrastructure ones.
    """
    try:
        pickle.dumps(fn)
    except (PicklingError, AttributeError, TypeError):
        return False
    return True


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 1,
    perf=None,
) -> List[R]:
    """Map ``fn`` over ``items`` on up to ``workers`` processes.

    Runs serially when ``workers <= 1`` or there are fewer than two
    items (a pool would only add fork latency).  ``fn`` and the items
    must be picklable for the parallel path; anything unpicklable is
    caught as an infrastructure failure and executed serially instead.

    ``perf`` (a :class:`~repro.perf.config.PerfConfig`) is re-applied
    in every worker via a pool initializer, so cache and compiled-core
    settings hold inside the pool regardless of start method.  The
    serial paths skip it — the parent already applied its own config.
    """
    items = list(items)
    if workers <= 1 or len(items) < 2 or not _crosses_process_boundary(fn):
        return [fn(item) for item in items]
    initializer: Optional[Callable] = None
    initargs: tuple = ()
    if perf is not None:
        initializer = _apply_perf_in_worker
        initargs = (perf.to_dict(),)
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]
    except _POOL_FAILURES:
        return [fn(item) for item in items]
