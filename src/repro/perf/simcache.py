"""Content-addressed cache of partition-timing results.

A :class:`~repro.arch.timing.PartitionTiming` is a *pure function* of

* the pipeline kind and its frozen :class:`~repro.arch.config.PipelineConfig`,
* the frozen :class:`~repro.hbm.channel.HbmTimingParams` of the channel,
* the edge record width (8 B plain / 12 B weighted), and
* the edge content handed to the datapath (merged sources, and for the
  Big pipeline the per-edge lane assignment and lane count),

so the cache keys on a SHA-256 over exactly those inputs and nothing
else.  Dann et al. (arXiv:2104.07776) make the underlying observation —
the per-partition memory access pattern is determined by the partition's
edge structure — and LightningSimV2 (arXiv:2404.09471) demonstrates the
speedup model: simulate the invariant structure once, reuse it
everywhere.  Identical executions recur constantly here: every
functional iteration re-times the same partitions, retries replay them,
sweeps and chaos cells regenerate the same seeded graphs, and fleet
replicas of one device type serve the same plans.

**Fault bypass.**  An active timing fault (latency spike, stall, dead
channel degradation) makes the result depend on injector state, not
content.  Such calls *bypass* the cache — they neither read nor write —
mirroring the iteration-cache rule in
:meth:`repro.core.system.SystemSimulator._timing_pass`.  A fault plan
that is merely *attached* but has no timing fault active produces
fault-free numbers, so those calls cache normally and share entries
with clean runs.

The process-global instance (:func:`get_cache`) is what the pipeline
simulators consult; :func:`configure_cache` (usually via
:meth:`repro.perf.config.PerfConfig.apply`) bounds or disables it.
Persistence uses the same crash-safe pattern as
:class:`~repro.faults.resilience.CheckpointStore`: stage to a
per-process temporary name (pid + random suffix, so concurrent workers
can never race on one ``os.replace`` target), fsync, rename.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from repro.arch.timing import PartitionTiming
from repro.errors import UserInputError

#: Default LRU bound; at ~100 B per entry this is a few hundred KB.
DEFAULT_CACHE_ENTRIES = 4096

#: Format tag of the persisted cache file.
CACHE_SCHEMA = "regraph-simcache/v1"


def config_digest_prefix(kind: str, config, params) -> bytes:
    """Digest prefix binding a cache key to one simulator configuration.

    ``config`` and ``params`` are frozen dataclasses, whose ``repr``
    deterministically spells every field — any config change (PE counts,
    buffer sizes, latency constants) changes the prefix and therefore
    every key derived from it.
    """
    return repr((kind, config, params)).encode()


def config_digest(prefix: bytes) -> str:
    """SHA-256 hexdigest of a :func:`config_digest_prefix`.

    This is the tag a two-tier cache stores alongside each persisted
    entry: a shared-store entry whose recorded digest differs from the
    requester's is *stale* (written by an incompatible configuration or
    software revision) and is quarantined instead of served.
    """
    return hashlib.sha256(prefix).hexdigest()


def timing_key(
    prefix: bytes,
    edge_bytes: int,
    arrays: Iterable[np.ndarray],
    extra: Tuple = (),
) -> str:
    """SHA-256 key over one execution's content.

    ``arrays`` is the edge content (dtype + shape + bytes are all
    hashed, so an int32/int64 relabel can never alias); ``extra`` holds
    scalar identity not captured by the arrays (e.g. the Big pipeline's
    lane count).
    """
    h = hashlib.sha256()
    h.update(prefix)
    h.update(repr((int(edge_bytes),) + tuple(extra)).encode())
    for array in arrays:
        array = np.ascontiguousarray(array)
        h.update(str(array.dtype).encode())
        h.update(str(array.shape).encode())
        h.update(array.tobytes())
    return h.hexdigest()


class SimulationCache:
    """Bounded LRU of ``key -> PartitionTiming`` with usage counters.

    Optionally **two-tier**: attach a
    :class:`~repro.perf.sharedcache.SharedTimingStore` (tier 2, shared
    on disk across processes) and L1 misses read through to it while L1
    inserts write through.  Tier-2 hits are promoted into L1 and
    counted separately; a damaged or stale tier-2 entry is quarantined
    by the store and reads as a plain miss here.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        enabled: bool = True,
        shared=None,
    ):
        if max_entries < 1:
            raise UserInputError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.enabled = bool(enabled)
        #: Tier-2 :class:`~repro.perf.sharedcache.SharedTimingStore`
        #: (``None`` = single-tier, the default).
        self.shared = shared
        self._entries: "OrderedDict[str, PartitionTiming]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.tier2_hits = 0
        self.tier2_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- core ----------------------------------------------------------
    def get(
        self, key: str, config_digest: Optional[str] = None
    ) -> Optional[PartitionTiming]:
        """Cached timing for ``key``, or ``None`` (counted as a miss).

        ``config_digest`` is forwarded to the tier-2 staleness check
        when a shared store is attached (an entry persisted under a
        different configuration digest is quarantined, never served).
        """
        if not self.enabled:
            return None
        timing = self._entries.get(key)
        if timing is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return timing
        if self.shared is not None:
            timing = self.shared.get(key, config_digest)
            if timing is not None:
                self.tier2_hits += 1
                self._insert(key, timing)
                return timing
            self.tier2_misses += 1
        self.misses += 1
        return None

    def _insert(self, key: str, timing: PartitionTiming) -> None:
        self._entries[key] = timing
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def put(
        self,
        key: str,
        timing: PartitionTiming,
        config_digest: str = "",
    ) -> None:
        """Insert/refresh an entry, evicting least-recently-used ones.

        With a shared store attached the entry is also written through
        (crash-safe, first-write-wins), tagged with ``config_digest``
        for the staleness rule.
        """
        if not self.enabled:
            return
        self._insert(key, timing)
        if self.shared is not None:
            self.shared.put(key, timing, config_digest)

    def contains(self, key: str) -> bool:
        """Presence probe that counts as neither hit nor miss.

        Used by the compiled evaluator to avoid re-publishing entries it
        already seeded without distorting the hit-rate counters real
        lookups produce.
        """
        return self.enabled and key in self._entries

    def note_bypass(self) -> None:
        """Record one call that skipped the cache (active timing fault)."""
        self.bypasses += 1

    def clear(self) -> None:
        """Drop all L1 entries and reset every counter.

        The shared tier (if attached) keeps its files — it is durable
        state owned by every process sharing it, not this one.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.tier2_hits = 0
        self.tier2_misses = 0

    # -- bulk transfer (worker -> parent merges) -----------------------
    def entries(self) -> Dict[str, PartitionTiming]:
        """Snapshot of the current entries (LRU order preserved)."""
        return dict(self._entries)

    def merge(self, entries: Mapping[str, PartitionTiming]) -> int:
        """Adopt entries produced elsewhere (e.g. by a prewarm worker).

        Existing keys win — both sides computed the same pure function,
        so the values are interchangeable.  Returns entries adopted.
        """
        if not self.enabled:
            return 0
        adopted = 0
        for key, timing in entries.items():
            if key not in self._entries:
                self.put(key, timing)
                adopted += 1
        return adopted

    # -- reporting -----------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Hits (either tier) over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.tier2_hits + self.misses
        return (self.hits + self.tier2_hits) / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counter snapshot for CLI/report surfaces."""
        stats = {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "tier2_hits": self.tier2_hits,
            "tier2_misses": self.tier2_misses,
        }
        if self.shared is not None:
            stats["shared"] = self.shared.stats()
        return stats

    # -- persistence ---------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the entries crash-safely (atomic rename).

        The staging name carries the pid *and* a random suffix so any
        number of concurrent workers can save toward the same final
        path without racing on one temporary file.
        """
        final = Path(path)
        tmp = final.with_name(
            final.name + f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        payload = {
            "schema": CACHE_SCHEMA,
            "entries": {
                key: [
                    timing.compute_cycles,
                    timing.store_cycles,
                    timing.switch_cycles,
                    timing.num_edges,
                    timing.num_sets,
                ]
                for key, timing in self._entries.items()
            },
        }
        try:
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        return final

    def load(self, path: Union[str, Path], strict: bool = True) -> int:
        """Merge a persisted cache back in; returns entries adopted.

        With ``strict=False`` a missing, torn or mismatched file adopts
        nothing instead of raising (the load-if-present pattern).
        """
        try:
            with open(Path(path)) as fh:
                payload = json.load(fh)
            if payload.get("schema") != CACHE_SCHEMA:
                raise UserInputError(
                    f"{path}: not a {CACHE_SCHEMA} file "
                    f"(schema {payload.get('schema')!r})"
                )
            entries = {
                key: PartitionTiming(
                    compute_cycles=float(fields[0]),
                    store_cycles=float(fields[1]),
                    switch_cycles=float(fields[2]),
                    num_edges=int(fields[3]),
                    num_sets=int(fields[4]),
                )
                for key, fields in payload["entries"].items()
            }
        except (OSError, ValueError, KeyError, IndexError, TypeError):
            if strict:
                raise
            return 0
        return self.merge(entries)


#: Process-global instance the pipeline simulators consult.  Worker
#: processes forked by :func:`repro.perf.parallel.parallel_map` inherit
#: the parent's entries at fork time for free.
_GLOBAL = SimulationCache()


def get_cache() -> SimulationCache:
    """The process-global simulation cache."""
    return _GLOBAL


#: Sentinel: "leave the shared tier as it is" (``None`` means detach).
_KEEP_SHARED = object()


def configure_cache(
    enabled: Optional[bool] = None,
    max_entries: Optional[int] = None,
    shared_dir=_KEEP_SHARED,
) -> SimulationCache:
    """Reconfigure the global cache in place; returns it.

    Shrinking ``max_entries`` evicts down to the new bound immediately.
    ``shared_dir`` attaches (a path) or detaches (``None``) the tier-2
    :class:`~repro.perf.sharedcache.SharedTimingStore`; omit it to
    leave the current attachment untouched.
    """
    cache = _GLOBAL
    if enabled is not None:
        cache.enabled = bool(enabled)
        if not cache.enabled:
            cache._entries.clear()
    if shared_dir is not _KEEP_SHARED:
        if shared_dir is None:
            cache.shared = None
        else:
            from repro.perf.sharedcache import SharedTimingStore

            current = cache.shared
            if current is None or str(current.root) != str(shared_dir):
                cache.shared = SharedTimingStore(shared_dir)
    if max_entries is not None:
        if max_entries < 1:
            raise UserInputError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        cache.max_entries = int(max_entries)
        while len(cache._entries) > cache.max_entries:
            cache._entries.popitem(last=False)
            cache.evictions += 1
    return cache
