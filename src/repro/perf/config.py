"""The performance-knob record every accelerated entry point accepts.

One frozen :class:`PerfConfig` travels from the CLI (``--jobs``,
``--no-sim-cache``, ``--cache-entries``) into
:func:`repro.chaos.campaign.run_campaign`,
:func:`repro.chaos.fleet_soak.run_fleet_soak`,
:func:`repro.model.sweep.sweep_parameter` and
:func:`repro.runtime.host.init_accelerator`, so parallelism and caching
are configured the same way everywhere.  The default is the safe
identity: one worker (fully serial) with the cache on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import UserInputError
from repro.perf.simcache import DEFAULT_CACHE_ENTRIES, configure_cache


@dataclass(frozen=True)
class PerfConfig:
    """Workers + cache knobs of one accelerated invocation."""

    #: Worker processes for :func:`repro.perf.parallel.parallel_map`;
    #: 1 means strictly serial (no pool is ever created).
    workers: int = 1
    #: Whether the content-addressed simulation cache is consulted.
    cache_enabled: bool = True
    #: LRU bound of the simulation cache.
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    #: Whether fault-free timing passes use the compiled simulation
    #: core (bit-identical to the interpreted path; ``--no-compiled``
    #: is the escape hatch back to the reference oracle).
    compiled: bool = True
    #: Directory of the shared tier-2 timing store
    #: (:class:`~repro.perf.sharedcache.SharedTimingStore`); ``None``
    #: keeps the cache single-tier and in-process.
    shared_cache_dir: Optional[str] = None

    def __post_init__(self):
        if self.workers < 1:
            raise UserInputError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.cache_entries < 1:
            raise UserInputError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )

    @property
    def parallel(self) -> bool:
        """True when a worker pool would actually be used."""
        return self.workers > 1

    def apply(self) -> None:
        """Configure the process-global cache and compiled switch."""
        # Imported lazily: repro.compiled pulls in the arch simulators,
        # which import this package right back.
        from repro.compiled import configure_compiled

        configure_cache(
            enabled=self.cache_enabled,
            max_entries=self.cache_entries,
            shared_dir=self.shared_cache_dir,
        )
        configure_compiled(self.compiled)

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "cache_enabled": self.cache_enabled,
            "cache_entries": self.cache_entries,
            "compiled": self.compiled,
            "shared_cache_dir": self.shared_cache_dir,
        }

    @staticmethod
    def from_dict(data: dict) -> "PerfConfig":
        shared = data.get("shared_cache_dir")
        return PerfConfig(
            workers=int(data.get("workers", 1)),
            cache_enabled=bool(data.get("cache_enabled", True)),
            cache_entries=int(
                data.get("cache_entries", DEFAULT_CACHE_ENTRIES)
            ),
            compiled=bool(data.get("compiled", True)),
            shared_cache_dir=str(shared) if shared is not None else None,
        )
