"""Fleet prewarm: out-of-process preprocessing and timing warm-up.

The fleet event loop itself is inherently serial — it is a virtual-time
discrete-event simulation whose bit-reproducible report depends on one
global event order.  What *is* parallel is the expensive pure work the
loop keeps stopping for: preprocessing each distinct (device config,
graph) pair and timing its partitions for the first time.

:func:`prewarm_spec` is the picklable worker unit: it rebuilds one
spec's framework, preprocesses the graph, runs one timing iteration so
the content-addressed cache fills with every partition of the plan, and
ships back ``(placement key, PreprocessResult, cache entries)``.  The
parent merges the artefacts into :class:`~repro.fleet.placement
.PlacementEngine` and the global :mod:`~repro.perf.simcache` *before*
starting the event loop, which then finds every expensive step already
answered.  Both artefacts are pure functions of the spec, so the
warmed run's report digest is identical to a cold serial run's.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.core.system import SystemSimulator
from repro.errors import ReproError
from repro.fleet.placement import preprocess_cache_key
from repro.perf.simcache import configure_cache, get_cache


def prewarm_spec(task: tuple) -> Optional[Tuple[tuple, object, dict]]:
    """Warm one (device, buffer, pipelines, graph spec, symmetrize) spec.

    Returns ``(placement cache key, PreprocessResult, timing-cache
    entries)``, or ``None`` when the spec cannot be preprocessed (the
    event loop will then handle it — and its typed failure — exactly as
    it would have without prewarming).
    """
    (device, buffer_vertices, num_pipelines, graph_spec, symmetrize,
     cache_entries) = task
    # The worker's own (forked) global cache is cleared first so the
    # entries shipped back belong to exactly this spec.
    cache = configure_cache(enabled=True, max_entries=cache_entries)
    cache.clear()
    try:
        graph = graph_spec.build()
        if symmetrize:
            from repro.apps.wcc import symmetrized

            graph = symmetrized(graph)
        framework = ReGraph(
            device,
            pipeline=PipelineConfig(
                gather_buffer_vertices=buffer_vertices
            ),
            num_pipelines=num_pipelines,
        )
        pre = framework.preprocess(graph)
        sim = SystemSimulator(pre.plan, framework.platform, framework.channel)
        sim.iteration_timing(graph.num_vertices)
    except ReproError:
        return None
    key = preprocess_cache_key(
        device, buffer_vertices, num_pipelines, graph_spec, symmetrize
    )
    return key, pre, cache.entries()


def distinct_specs(replicas, jobs, cache_entries: int) -> dict:
    """The deduplicated prewarm work-list for a pool and job stream.

    Keyed by placement cache key (insertion order = deterministic job
    order), valued by the picklable :func:`prewarm_spec` task tuple.
    """
    configs = []
    seen = set()
    for replica in replicas:
        fw = replica.handle.framework
        config = (
            replica.device,
            fw.pipeline.gather_buffer_vertices,
            fw.num_pipelines,
        )
        if config not in seen:
            seen.add(config)
            configs.append(config)
    specs = {}
    for job in jobs:
        for device, buffer_vertices, num_pipelines in configs:
            key = preprocess_cache_key(
                device, buffer_vertices, num_pipelines,
                job.graph, job.app == "wcc",
            )
            if key not in specs:
                specs[key] = (
                    device, buffer_vertices, num_pipelines,
                    job.graph, job.app == "wcc", cache_entries,
                )
    return specs
