"""Execution acceleration layer: cache, parallel map, perf config.

The cycle-level simulator is the inner loop of every subsystem — the
conformance oracles, the chaos campaigns, the fleet serving runtime all
call it per partition per iteration.  This package makes those calls
fast without changing a single simulated number:

* :mod:`repro.perf.simcache` — a content-addressed memo of
  :class:`~repro.arch.timing.PartitionTiming`: partition timing is a
  pure function of (edge content, pipeline config, channel params, edge
  width), so identical executions across iterations, retries, sweeps,
  chaos cells and fleet jobs share one cached result.
* :mod:`repro.perf.parallel` — an order-preserving
  ``ProcessPoolExecutor`` map with a serial fallback, used to fan out
  chaos cells, sweep points and fleet prewarm work across cores while
  keeping reports bit-identical to a serial run.
* :mod:`repro.perf.sharedcache` — :class:`SharedTimingStore`, the
  crash-safe on-disk tier 2 under the in-process LRU: one checksummed
  file per content-addressed key, shared across processes and replicas,
  with quarantine-on-damage instead of serving corruption.
* :mod:`repro.perf.config` — :class:`PerfConfig`, the single knob
  record (``--jobs``, cache size, shared-cache dir, enable flags) the
  CLI and library entry points thread through.
"""

from repro.perf.config import PerfConfig
from repro.perf.parallel import parallel_map
from repro.perf.sharedcache import (
    CACHE_QUARANTINE_SCHEMA,
    SHARED_CACHE_SCHEMA,
    SharedTimingStore,
)
from repro.perf.simcache import (
    DEFAULT_CACHE_ENTRIES,
    SimulationCache,
    configure_cache,
    get_cache,
)

__all__ = [
    "CACHE_QUARANTINE_SCHEMA",
    "DEFAULT_CACHE_ENTRIES",
    "PerfConfig",
    "SHARED_CACHE_SCHEMA",
    "SharedTimingStore",
    "SimulationCache",
    "configure_cache",
    "get_cache",
    "parallel_map",
]
