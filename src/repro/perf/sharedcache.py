"""Tier 2 of the simulation cache: a shared on-disk timing store.

The in-process :class:`~repro.perf.simcache.SimulationCache` dies with
its process, so every replica, pool worker and CLI invocation re-misses
the same content-addressed keys.  :class:`SharedTimingStore` is the
durable tier underneath it: a content-addressed directory of one file
per SHA-256 key, shared by any number of concurrent processes.

The design goals are robustness-first:

* **Crash-safe writes** — every entry is staged to a per-process
  temporary name (pid + random suffix), fsync'd, then published with
  one atomic ``os.replace``.  A kill -9 mid-sync loses at most the
  in-flight entry; it can never tear a published one.
* **First-write-wins** — a key that already exists is never replaced.
  Both writers computed the same pure function, so the values are
  interchangeable; skipping the replace keeps published bytes
  immutable, which is what makes concurrent readers safe.
* **Damage-tolerant loads** — every entry carries a CRC32 over its
  canonical record *and* a SHA-256 over the timing payload.  A torn,
  bit-flipped, or otherwise unreadable entry is **quarantined** into a
  ``regraph-cache-quarantine/v1`` bundle (evidence, out of the serving
  path) instead of raising — the caller simply recomputes, exactly as
  on a miss.  A poisoned entry is therefore *detected, never served*.
* **Staleness rules** — each entry records the config digest it was
  produced under (the SHA-256 of the pipeline's
  :func:`~repro.perf.simcache.config_digest_prefix`, or a
  :meth:`~repro.compiled.spec.CompiledSpec.digest`).  A lookup that
  presents a different digest treats the entry as stale: quarantined,
  recomputed, never served across a config/schema change.

The tiering itself lives in :class:`~repro.perf.simcache
.SimulationCache`: attach a store via :func:`~repro.perf.simcache
.configure_cache` (``shared_dir=...``) and L1 misses read through to
the store while L1 inserts write through to it.
"""

from __future__ import annotations

import json
import os
import uuid
import zlib
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.arch.timing import PartitionTiming
from repro.errors import UserInputError

#: Per-entry file format (one file per sha256 key under the store root).
SHARED_CACHE_SCHEMA = "regraph-simcache/v1"

#: Quarantine-bundle schema for poisoned/torn/stale entries.
CACHE_QUARANTINE_SCHEMA = "regraph-cache-quarantine/v1"

#: Subdirectory (inside the store root) quarantine bundles land in.
QUARANTINE_DIRNAME = "quarantine"

_KEY_HEX_LEN = 64
_RAW_LIMIT = 512


def _is_key(name: str) -> bool:
    if len(name) != _KEY_HEX_LEN:
        return False
    return all(c in "0123456789abcdef" for c in name)


def _timing_fields(timing: PartitionTiming) -> List[float]:
    return [
        timing.compute_cycles,
        timing.store_cycles,
        timing.switch_cycles,
        timing.num_edges,
        timing.num_sets,
    ]


def _payload_sha(key: str, config_digest: str, fields: List[float]) -> str:
    canonical = json.dumps(
        {"config_digest": config_digest, "key": key, "timing": fields},
        sort_keys=True,
        separators=(",", ":"),
    )
    return sha256(canonical.encode()).hexdigest()


def _record_crc(record: dict) -> str:
    body = {k: v for k, v in record.items() if k != "crc"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode()) & 0xFFFFFFFF, "08x")


def encode_entry(
    key: str, timing: PartitionTiming, config_digest: str = ""
) -> str:
    """The on-disk JSON encoding of one entry (checksums included)."""
    fields = _timing_fields(timing)
    record = {
        "schema": SHARED_CACHE_SCHEMA,
        "key": key,
        "config_digest": config_digest,
        "timing": fields,
        "payload_sha": _payload_sha(key, config_digest, fields),
    }
    record["crc"] = _record_crc(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


class SharedTimingStore:
    """Content-addressed ``key -> PartitionTiming`` directory store."""

    def __init__(self, root: Union[str, Path], fsync: bool = True):
        self.root = Path(root)
        self.fsync = bool(fsync)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.root / QUARANTINE_DIRNAME
        #: Counters (per attached process; the files are the shared state).
        self.loads = 0
        self.load_misses = 0
        self.writes = 0
        #: First-write-wins: puts skipped because the key already existed.
        self.write_conflicts = 0
        self.quarantined = 0
        self.stale = 0

    # -- paths ----------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def keys(self) -> List[str]:
        """Published keys, sorted (staging and quarantine files ignored)."""
        keys = []
        for path in self.root.iterdir():
            name = path.name
            if not name.endswith(".json") or ".tmp-" in name:
                continue
            stem = name[: -len(".json")]
            if _is_key(stem):
                keys.append(stem)
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.keys())

    # -- quarantine -----------------------------------------------------
    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Pull a damaged/stale entry out of the serving path.

        The entry file is replaced by a quarantine bundle holding the
        (truncated) raw bytes as evidence; the store then behaves as if
        the key had never been written.  Crash-safe like every other
        write here: stage, fsync, ``os.replace``.
        """
        try:
            raw = path.read_bytes()[:_RAW_LIMIT].decode(
                "utf-8", errors="replace"
            )
        except OSError:
            raw = ""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        bundle = {
            "schema": CACHE_QUARANTINE_SCHEMA,
            "store": str(self.root),
            "key": key,
            "reason": reason,
            "raw": raw,
        }
        final = self.quarantine_dir / f"{key}.quarantine.json"
        tmp = final.with_name(
            final.name + f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        with open(tmp, "w") as fh:
            json.dump(bundle, fh, indent=2)
            fh.write("\n")
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, final)
        try:
            path.unlink()
        except OSError:
            pass  # a concurrent reader may have quarantined it first
        self.quarantined += 1

    def quarantine_bundles(self) -> List[Path]:
        """Bundle files written so far (evidence, never served)."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(self.quarantine_dir.glob("*.quarantine.json"))

    # -- core -----------------------------------------------------------
    def get(
        self, key: str, config_digest: Optional[str] = None
    ) -> Optional[PartitionTiming]:
        """Verified load, or ``None`` (missing, damaged, or stale).

        Damage and staleness quarantine the entry and read as a miss —
        the caller recomputes, so corruption can cost time but never
        correctness.
        """
        path = self.entry_path(key)
        self.loads += 1
        try:
            raw = path.read_text()
        except OSError:
            self.load_misses += 1
            return None
        try:
            record = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path, key, "unparseable JSON")
            return None
        if not isinstance(record, dict):
            self._quarantine(path, key, "record is not an object")
            return None
        if record.get("schema") != SHARED_CACHE_SCHEMA:
            self._quarantine(
                path, key,
                f"schema mismatch (stored {record.get('schema')!r})",
            )
            return None
        if record.get("crc") != _record_crc(record):
            self._quarantine(
                path, key,
                f"checksum mismatch (stored {record.get('crc')!r})",
            )
            return None
        if record.get("key") != key:
            self._quarantine(
                path, key,
                f"key mismatch (stored {record.get('key')!r})",
            )
            return None
        raw_fields = record.get("timing")
        stored_digest = record.get("config_digest", "")
        if (
            not isinstance(raw_fields, list)
            or len(raw_fields) != 5
            or not all(
                isinstance(f, (int, float)) and not isinstance(f, bool)
                for f in raw_fields
            )
        ):
            self._quarantine(path, key, "bad timing payload")
            return None
        # Hashed over the list exactly as persisted (int vs float spelling
        # matters to JSON), before any normalisation.
        if record.get("payload_sha") != _payload_sha(
            key, stored_digest, raw_fields
        ):
            self._quarantine(path, key, "payload checksum mismatch")
            return None
        fields = [float(f) for f in raw_fields]
        if config_digest is not None and stored_digest != config_digest:
            # Valid bytes from an incompatible configuration: stale.
            self.stale += 1
            self._quarantine(
                path, key,
                f"stale config digest (stored {stored_digest[:16]}..., "
                f"expected {config_digest[:16]}...)",
            )
            return None
        return PartitionTiming(
            compute_cycles=fields[0],
            store_cycles=fields[1],
            switch_cycles=fields[2],
            num_edges=int(fields[3]),
            num_sets=int(fields[4]),
        )

    def put(
        self, key: str, timing: PartitionTiming, config_digest: str = ""
    ) -> bool:
        """Publish an entry atomically; returns True when it was written.

        First-write-wins: an existing key is left untouched (the values
        are interchangeable — both sides computed the same pure
        function) and the call counts as a ``write_conflict``.  Two
        racers that both pass the existence check both ``os.replace``
        atomically; last-replace-wins is then equally safe because the
        encoded bytes are identical for identical inputs.
        """
        if not _is_key(key):
            raise UserInputError(
                f"shared-cache keys are 64-hex sha256 digests, got {key!r}"
            )
        final = self.entry_path(key)
        if final.exists():
            self.write_conflicts += 1
            return False
        tmp = final.with_name(
            final.name + f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            with open(tmp, "w") as fh:
                fh.write(encode_entry(key, timing, config_digest))
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            if final.exists():
                # Lost the race after staging: first write wins.
                self.write_conflicts += 1
                return False
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.writes += 1
        return True

    # -- maintenance ----------------------------------------------------
    def verify(self, config_digest: Optional[str] = None) -> dict:
        """Scrub every entry: quarantine damage, drop orphaned staging.

        Leftover ``.tmp-`` files are what a kill -9 mid-sync leaves
        behind — in-flight entries that were never published.  They are
        removed here (and ignored everywhere else), which is exactly the
        "loses at most in-flight entries" contract.
        """
        before = self.quarantined
        swept_tmp = 0
        for path in sorted(self.root.iterdir()):
            if ".tmp-" in path.name and path.is_file():
                try:
                    path.unlink()
                    swept_tmp += 1
                except OSError:
                    pass
                continue
            if not path.name.endswith(".json") or not path.is_file():
                continue
            stem = path.name[: -len(".json")]
            if not _is_key(stem):
                self._quarantine(
                    path, stem[:_KEY_HEX_LEN],
                    "foreign file in store (not a sha256 key)",
                )
                continue
            self.get(stem, config_digest)
        return {
            "entries": len(self),
            "quarantined": self.quarantined - before,
            "swept_tmp": swept_tmp,
        }

    def warm(self, cache, limit: Optional[int] = None) -> int:
        """Adopt verified entries into an in-process L1 (warm start).

        Deterministic (sorted key order) and bounded by ``limit`` (the
        L1 capacity by default).  Damaged entries quarantine exactly as
        on a read-through; returns the number adopted.
        """
        bound = limit if limit is not None else cache.max_entries
        adopted = 0
        for key in self.keys():
            if adopted >= bound:
                break
            timing = self.get(key)
            if timing is None:
                continue
            if not cache.contains(key):
                cache.put(key, timing)
                adopted += 1
        return adopted

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "entries": len(self),
            "loads": self.loads,
            "load_misses": self.load_misses,
            "writes": self.writes,
            "write_conflicts": self.write_conflicts,
            "quarantined": self.quarantined,
            "stale": self.stale,
        }


def entry_paths(root: Union[str, Path]) -> Dict[str, Path]:
    """``key -> entry file`` map of a store directory (chaos targeting)."""
    store = SharedTimingStore(root)
    return {key: store.entry_path(key) for key in store.keys()}
