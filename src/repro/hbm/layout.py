"""Data layout inside one HBM channel (Fig. 4).

Each pipeline's channel holds, in order: the partition edge lists assigned
to that pipeline, the source-vertex property array, and the temporary
destination property region the Writer refreshes between iterations.
Offsets are block-aligned (512-bit) because every access is block-granular.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.coo import VERTEX_WORD_BYTES
from repro.hbm.channel import BLOCK_BYTES


def _align_block(offset: int) -> int:
    """Round ``offset`` up to the next 512-bit block boundary."""
    return -(-offset // BLOCK_BYTES) * BLOCK_BYTES


@dataclass(frozen=True)
class ChannelLayout:
    """Byte offsets of the regions stored in one channel."""

    edges_offset: int
    edges_bytes: int
    src_prop_offset: int
    src_prop_bytes: int
    dst_prop_offset: int
    dst_prop_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total footprint of the channel's contents."""
        return self.dst_prop_offset + self.dst_prop_bytes

    def fits(self, capacity_bytes: int) -> bool:
        """Whether the layout fits in a channel of the given capacity."""
        return self.total_bytes <= capacity_bytes

    def vertex_block_index(self, vertex_id: int) -> int:
        """Block index holding ``vertex_id``'s property (Fig. 5, step 1).

        With 32-bit properties this is ``floor(vid * 32 / 512)`` offset by
        the property region's base block.
        """
        byte = self.src_prop_offset + vertex_id * VERTEX_WORD_BYTES
        return byte // BLOCK_BYTES

    def vertex_block_offset(self, vertex_id: int) -> int:
        """Byte offset of the property within its block (Fig. 5, step 1)."""
        return (vertex_id * VERTEX_WORD_BYTES) % BLOCK_BYTES


def build_channel_layout(
    num_edges: int,
    num_vertices: int,
    edge_bytes: int = 8,
    prop_bytes: int = VERTEX_WORD_BYTES,
) -> ChannelLayout:
    """Lay out the given edge count and vertex arrays in one channel."""
    edges_offset = 0
    edges_bytes = num_edges * edge_bytes
    src_off = _align_block(edges_offset + edges_bytes)
    src_bytes = num_vertices * prop_bytes
    dst_off = _align_block(src_off + src_bytes)
    dst_bytes = num_vertices * prop_bytes
    return ChannelLayout(
        edges_offset=edges_offset,
        edges_bytes=edges_bytes,
        src_prop_offset=src_off,
        src_prop_bytes=src_bytes,
        dst_prop_offset=dst_off,
        dst_prop_bytes=dst_bytes,
    )
