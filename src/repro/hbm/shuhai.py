"""Extended Shuhai-style HBM microbenchmark suite.

Shuhai [18] characterises FPGA HBM with sequential, strided and random
access sweeps; the paper consumes only the latency-vs-stride fit (Eq. 4),
but the fuller characterisation is useful for validating the channel
model and for users porting the simulator to other memory parts.  This
module sweeps the simulated channel the way Shuhai sweeps silicon and
produces a structured report: effective bandwidth per pattern, latency
percentiles, and the stride knee where the row-buffer stops helping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.hbm.channel import BLOCK_BYTES, HbmChannelModel


@dataclass(frozen=True)
class PatternResult:
    """One access pattern's measured characteristics."""

    pattern: str
    stride_bytes: int
    cycles_per_block: float
    effective_bandwidth_fraction: float
    latency_cycles: float


@dataclass(frozen=True)
class ShuhaiReport:
    """Full characterisation of one channel."""

    results: List[PatternResult]
    knee_stride_bytes: int

    def by_pattern(self) -> Dict[str, List[PatternResult]]:
        """Results grouped by pattern name."""
        out: Dict[str, List[PatternResult]] = {}
        for r in self.results:
            out.setdefault(r.pattern, []).append(r)
        return out

    def sequential_bandwidth_fraction(self) -> float:
        """Fraction of peak achieved by the pure sequential sweep."""
        seq = [r for r in self.results if r.pattern == "sequential"]
        return seq[0].effective_bandwidth_fraction if seq else 0.0


def _strided_cycles_per_block(
    channel: HbmChannelModel, stride_bytes: int, num_requests: int = 4096
) -> float:
    """Average service cycles per block for a fixed-stride stream."""
    strides = np.full(num_requests, float(stride_bytes))
    eff = channel.effective_request_cycles(strides)
    return float(eff.mean())


def run_shuhai_suite(
    channel: HbmChannelModel,
    strides: List[int] = None,
    seed: int = 3,
) -> ShuhaiReport:
    """Characterise a channel across sequential/strided/random patterns."""
    if strides is None:
        strides = [64, 128, 256, 512, 1024, 4096, 16384]
    results = []

    # Sequential burst: the channel's native streaming rate.
    seq_cycles = 1.0 / channel.params.burst_blocks_per_cycle
    results.append(
        PatternResult(
            pattern="sequential",
            stride_bytes=BLOCK_BYTES,
            cycles_per_block=seq_cycles,
            effective_bandwidth_fraction=1.0 / seq_cycles,
            latency_cycles=channel.params.min_latency,
        )
    )

    # Fixed-stride sweeps.
    for stride in strides:
        cycles = _strided_cycles_per_block(channel, stride)
        results.append(
            PatternResult(
                pattern="strided",
                stride_bytes=stride,
                cycles_per_block=cycles,
                effective_bandwidth_fraction=1.0 / cycles,
                latency_cycles=float(channel.request_latency(stride)),
            )
        )

    # Random access: strides drawn uniformly over a 64 MB window.
    rng = np.random.default_rng(seed)
    random_strides = rng.integers(0, 64 * 1024 * 1024, 4096).astype(float)
    eff = channel.effective_request_cycles(random_strides)
    results.append(
        PatternResult(
            pattern="random",
            stride_bytes=0,
            cycles_per_block=float(eff.mean()),
            effective_bandwidth_fraction=float(1.0 / eff.mean()),
            latency_cycles=float(
                channel.request_latency(random_strides).mean()
            ),
        )
    )

    knee = _find_knee(channel, strides)
    return ShuhaiReport(results=results, knee_stride_bytes=knee)


def _find_knee(channel: HbmChannelModel, strides: List[int]) -> int:
    """First stride whose latency reaches 95% of the worst case."""
    p = channel.params
    threshold = p.min_latency + 0.95 * (p.max_latency - p.min_latency)
    for stride in sorted(strides):
        if channel.request_latency(stride) >= threshold:
            return stride
    return sorted(strides)[-1]
