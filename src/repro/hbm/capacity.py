"""HBM capacity accounting.

"As one HBM channel only provides 256 MB capacity, when the number of HBM
channels is small, some graphs are out of memory" (Sec. VI-E).  The Fig. 12
scalability bench uses these helpers to mark OoM points, and Sec. VIII notes
the overall 8 GB device limit.
"""

from __future__ import annotations

from repro.graph.coo import Graph

#: Capacity of one HBM pseudo-channel on U280/U50.
CHANNEL_CAPACITY_BYTES = 256 * 1024 * 1024


def channel_capacity_bytes(num_channels: int) -> int:
    """Aggregate capacity of ``num_channels`` HBM channels."""
    if num_channels < 0:
        raise ValueError(f"num_channels must be >= 0, got {num_channels}")
    return num_channels * CHANNEL_CAPACITY_BYTES


def fits_in_channels(graph: Graph, num_channels: int) -> bool:
    """Whether the graph's working set fits the given channel count.

    The working set is the replicated vertex-property arrays (one copy per
    channel so each pipeline reads locally, as in Fig. 4) plus the edge
    lists striped across channels.
    """
    per_channel_props = 2 * graph.num_vertices * 4
    striped_edges = graph.num_edges * graph.edge_bytes / max(num_channels, 1)
    per_channel = per_channel_props + striped_edges
    return per_channel <= CHANNEL_CAPACITY_BYTES
