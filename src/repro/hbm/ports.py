"""Memory-port management (Sec. V-C).

HBM-enabled Xilinx platforms expose a limited number of AXI memory ports
(32 on U280, 28 on U50) which — not logic — bounds how many pipelines fit.
ReGraph's port wrappers bundle the Apply module's write port with a
pipeline's vertex-property read port, cutting each pipeline's cost from
three ports to two, so ``N_pip = min(N_ch, (N_port - N_res) / 2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Memory ports reserved for the Apply/Writer datapath.
DEFAULT_RESERVED_PORTS = 4

#: Ports one pipeline consumes with the HBM port wrapper applied.
PORTS_PER_PIPELINE_WRAPPED = 2

#: Ports one pipeline would consume without the wrapper optimisation.
PORTS_PER_PIPELINE_UNWRAPPED = 3


def max_pipelines(
    num_channels: int,
    num_ports: int,
    reserved_ports: int = DEFAULT_RESERVED_PORTS,
    use_port_wrapper: bool = True,
) -> int:
    """Maximum pipeline count a platform supports (Sec. V-D).

    With the wrapper on U280 (32 ports, 4 reserved) this gives 14 pipelines
    and on U50 (28 ports) 12 pipelines — the counts of Sec. VI-A.
    """
    per_pipe = (
        PORTS_PER_PIPELINE_WRAPPED
        if use_port_wrapper
        else PORTS_PER_PIPELINE_UNWRAPPED
    )
    by_ports = (num_ports - reserved_ports) // per_pipe
    return max(min(num_channels, by_ports), 0)


@dataclass
class PortBinding:
    """Assignment of physical ports to pipeline roles."""

    #: pipeline index -> [edge-read port, wrapped vertex-read/write port]
    pipeline_ports: Dict[int, List[int]] = field(default_factory=dict)
    #: ports reserved for the Apply module's vertex-property traffic
    apply_ports: List[int] = field(default_factory=list)

    @property
    def total_ports_used(self) -> int:
        """Ports consumed by the binding."""
        used = sum(len(v) for v in self.pipeline_ports.values())
        return used + len(self.apply_ports)


def bind_ports(
    num_pipelines: int,
    num_ports: int,
    reserved_ports: int = DEFAULT_RESERVED_PORTS,
) -> PortBinding:
    """Produce a concrete port assignment for ``num_pipelines`` pipelines.

    Raises ``ValueError`` when the platform cannot host that many pipelines
    — the constraint ReGraph's generator enumerates around.
    """
    needed = num_pipelines * PORTS_PER_PIPELINE_WRAPPED + reserved_ports
    if needed > num_ports:
        raise ValueError(
            f"{num_pipelines} pipelines need {needed} ports but only "
            f"{num_ports} are available"
        )
    binding = PortBinding()
    port = 0
    for pipe in range(num_pipelines):
        binding.pipeline_ports[pipe] = [port, port + 1]
        port += 2
    binding.apply_ports = list(range(port, port + reserved_ports))
    return binding
