"""HBM memory-subsystem model.

Stands in for the physical HBM2 stacks of the Alveo U280/U50: per-channel
timing (latency vs access stride, burst throughput), the in-channel data
layout of Fig. 4, channel capacity accounting for the out-of-memory check of
Fig. 12, and the memory-port management of Sec. V-C.
"""

from repro.hbm.channel import HbmChannelModel, HbmTimingParams
from repro.hbm.latency import (
    LatencyFit,
    calibrate_channel,
    fit_linear_latency,
    run_latency_benchmark,
)
from repro.hbm.shuhai import ShuhaiReport, run_shuhai_suite
from repro.hbm.tiered import (
    SsdTierConfig,
    estimate_tiered_iteration,
    estimate_tiered_plan,
    graph_needs_tiering,
)
from repro.hbm.layout import ChannelLayout, build_channel_layout
from repro.hbm.capacity import channel_capacity_bytes, fits_in_channels
from repro.hbm.ports import PortBinding, bind_ports, max_pipelines

__all__ = [
    "HbmChannelModel",
    "HbmTimingParams",
    "LatencyFit",
    "calibrate_channel",
    "fit_linear_latency",
    "run_latency_benchmark",
    "ShuhaiReport",
    "run_shuhai_suite",
    "SsdTierConfig",
    "estimate_tiered_iteration",
    "estimate_tiered_plan",
    "graph_needs_tiering",
    "ChannelLayout",
    "build_channel_layout",
    "channel_capacity_bytes",
    "fits_in_channels",
    "PortBinding",
    "bind_ports",
    "max_pipelines",
]
