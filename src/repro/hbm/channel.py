"""Per-channel HBM timing model.

The simulator charges memory time in units of kernel-clock cycles at 512-bit
block granularity (Sec. III-A: "all accesses to the global memory are in
granularity of a block (with 512-bit)").  Two behaviours matter:

* **Sequential bursts** stream one block per cycle — an AXI master running
  at kernel frequency saturates one pseudo-channel.
* **Strided/random reads** pay a latency that grows with the stride between
  consecutive addresses, because larger strides cross DRAM rows and banks.
  Shuhai [18] measured this on real silicon; the paper fits a bounded linear
  function to it (Eq. 4) and so do we.

Latency is partially hidden by the outstanding-request window of the AXI
read master: with ``max_outstanding`` in-flight requests, a stream of
requests with per-request latency ``L`` sustains one response every
``max(1, L / max_outstanding)`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per 512-bit global-memory block.
BLOCK_BYTES = 64


@dataclass(frozen=True)
class HbmTimingParams:
    """Timing constants of one HBM pseudo-channel (kernel-clock cycles)."""

    #: Best-case read latency (row-buffer hit), cycles.
    min_latency: float = 24.0
    #: Worst-case read latency (row miss + bank conflict), cycles.
    max_latency: float = 56.0
    #: Extra cycles of latency per byte of stride between requests.
    latency_per_stride_byte: float = 0.004
    #: In-flight read requests the AXI master supports.
    max_outstanding: int = 16
    #: Blocks deliverable per cycle on a sequential burst.
    burst_blocks_per_cycle: float = 1.0


class HbmChannelModel:
    """Timing oracle for one pseudo-channel.

    ``fault_site`` is the injection hook of :mod:`repro.faults`: when set
    (resilient runs only), every latency figure the channel charges is
    passed through ``fault_site.scale_latency`` so latency-spike faults
    inflate it while their window is active.  The default ``None`` keeps
    the fault-free code path untouched.
    """

    def __init__(
        self,
        params: HbmTimingParams = HbmTimingParams(),
        fault_site=None,
    ):
        if params.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if params.max_latency < params.min_latency:
            raise ValueError("max_latency must be >= min_latency")
        self.params = params
        self.fault_site = fault_site

    def request_latency(self, stride_bytes) -> np.ndarray:
        """Latency (cycles) of a read whose address is ``stride_bytes``
        past the previous request, clamped to the [min, max] band.

        This is the ground truth the Shuhai-style benchmark samples and
        the bounded linear function of Eq. 4 approximates.
        """
        stride = np.abs(np.asarray(stride_bytes, dtype=np.float64))
        p = self.params
        lat = p.min_latency + p.latency_per_stride_byte * stride
        lat = np.clip(lat, p.min_latency, p.max_latency)
        if self.fault_site is not None:
            lat = self.fault_site.scale_latency(lat)
        return lat

    def base_latency(self) -> float:
        """Best-case latency as currently observed at the channel.

        Equals ``params.min_latency`` on a healthy channel; an active
        latency-spike fault inflates it like every other latency figure.
        The component simulators charge their fixed fill/drain latencies
        through this accessor so faults reach them uniformly.
        """
        lat = self.params.min_latency
        if self.fault_site is not None:
            lat = float(self.fault_site.scale_latency(lat))
        return lat

    def effective_request_cycles(self, stride_bytes) -> np.ndarray:
        """Steady-state cycles per request once the outstanding window
        pipelines the latency: ``max(1, latency / max_outstanding)``."""
        lat = self.request_latency(stride_bytes)
        return np.maximum(1.0, lat / self.params.max_outstanding)

    def burst_cycles(self, num_blocks: int) -> float:
        """Cycles for a sequential burst of ``num_blocks`` blocks,
        including one initial full latency to open the stream."""
        if num_blocks <= 0:
            return 0.0
        p = self.params
        cycles = p.min_latency + num_blocks / p.burst_blocks_per_cycle
        if self.fault_site is not None:
            cycles = float(self.fault_site.scale_latency(cycles))
        return cycles

    def bandwidth_bytes_per_cycle(self) -> float:
        """Peak sequential bandwidth in bytes per kernel cycle."""
        return BLOCK_BYTES * self.params.burst_blocks_per_cycle

    def min_cycles_for_bytes(self, num_bytes: float) -> float:
        """Lower bound on the cycles one channel needs to move
        ``num_bytes`` — the physical ceiling no simulated task may beat.
        """
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.bandwidth_bytes_per_cycle()
