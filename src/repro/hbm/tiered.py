"""SSD-tiered storage extension (Sec. VIII future work).

The paper: *"current HBM restricts graph sizes to smaller than 8 GB.  As
a future work, we plan to introduce SSDs as storage while using HBM as
buffers to process billion-scale graphs."*  This module builds that
extension: a two-tier memory model where partitions' edge lists live on
NVMe SSD and stream through HBM staging buffers, overlapped with pipeline
execution via double buffering.

The scheduler question it answers: with per-partition execution cycles
``C_p`` (from the performance model) and per-partition transfer times
(from SSD bandwidth), how much does tiering slow each iteration down?
A partition's visible time is ``max(exec, transfer)`` when prefetch works
(the next partition streams while the current one executes) plus a cold
first-transfer — so tiering is near-free exactly when the pipelines are
compute-bound, i.e. for dense partitions on Little pipelines, and costs
the most on Big clusters chewing through sparse tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES


@dataclass(frozen=True)
class SsdTierConfig:
    """NVMe tier parameters (datacenter-class drive defaults)."""

    #: sustained sequential read bandwidth, bytes/second.
    read_bytes_per_second: float = 3.2e9
    #: per-request latency, seconds (queue + flash read).
    request_latency_seconds: float = 90e-6
    #: staging buffers per pipeline (2 = double buffering).
    staging_buffers: int = 2
    #: bytes of one staging buffer in HBM.
    staging_bytes: int = 16 * 1024 * 1024

    def transfer_seconds(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` from SSD into a staging buffer."""
        if num_bytes <= 0:
            return 0.0
        chunks = -(-num_bytes // self.staging_bytes)
        return (
            chunks * self.request_latency_seconds
            + num_bytes / self.read_bytes_per_second
        )


@dataclass(frozen=True)
class TieredIterationEstimate:
    """Per-iteration cost breakdown of one pipeline's tiered execution."""

    execute_seconds: float
    transfer_seconds: float
    overlapped_seconds: float

    @property
    def slowdown(self) -> float:
        """Tiered time over pure-HBM time (1.0 = tiering is free)."""
        if self.execute_seconds == 0:
            return float("inf") if self.overlapped_seconds > 0 else 1.0
        return self.overlapped_seconds / self.execute_seconds

    @property
    def transfer_bound(self) -> bool:
        """Whether the SSD, not the pipelines, limits the iteration."""
        return self.transfer_seconds > self.execute_seconds


def graph_needs_tiering(
    num_edges: int,
    edge_bytes: int,
    num_vertices: int,
    num_channels: int = 32,
) -> bool:
    """Whether a graph exceeds the device's HBM (the 8 GB limit)."""
    footprint = num_edges * edge_bytes + 2 * num_vertices * 4 * num_channels
    return footprint > num_channels * CHANNEL_CAPACITY_BYTES


def estimate_tiered_iteration(
    task_exec_seconds: Sequence[float],
    task_bytes: Sequence[int],
    config: SsdTierConfig = SsdTierConfig(),
) -> TieredIterationEstimate:
    """Overlap-aware iteration estimate for one pipeline's task list.

    With double buffering the transfer overlaps execution *within* a
    task: the pipeline starts once the first staging buffer fills and
    thereafter consumes one buffer while the next streams in, so a task's
    visible time is ``first_chunk + max(exec, remaining_transfer)``.
    Single buffering (``staging_buffers == 1``) serialises transfer and
    execution entirely.
    """
    if len(task_exec_seconds) != len(task_bytes):
        raise ValueError("task lists must align")
    exec_total = float(sum(task_exec_seconds))
    transfers = [config.transfer_seconds(b) for b in task_bytes]
    transfer_total = float(sum(transfers))
    if not task_exec_seconds:
        return TieredIterationEstimate(0.0, 0.0, 0.0)

    if config.staging_buffers < 2:
        overlapped = exec_total + transfer_total
    else:
        overlapped = 0.0
        for exec_s, xfer_s, nbytes in zip(
            task_exec_seconds, transfers, task_bytes
        ):
            first_chunk = config.transfer_seconds(
                min(nbytes, config.staging_bytes)
            )
            overlapped += first_chunk + max(exec_s, xfer_s - first_chunk)
    return TieredIterationEstimate(
        execute_seconds=exec_total,
        transfer_seconds=transfer_total,
        overlapped_seconds=overlapped,
    )


def estimate_tiered_plan(
    plan,
    frequency_mhz: float,
    edge_bytes: int = 8,
    config: SsdTierConfig = SsdTierConfig(),
) -> List[TieredIterationEstimate]:
    """Tiered estimates for every pipeline of a scheduling plan.

    Uses the plan's modelled task cycles (already computed during
    scheduling) and each task's edge-list footprint.
    """
    hz = frequency_mhz * 1e6
    estimates = []
    for tasks in list(plan.little_tasks) + list(plan.big_tasks):
        exec_s = [t.estimated_cycles / hz for t in tasks]
        nbytes = [t.num_edges * edge_bytes for t in tasks]
        estimates.append(estimate_tiered_iteration(exec_s, nbytes, config))
    return estimates
