"""Shuhai-style latency benchmark and the Eq. 4 linear fit.

The paper "benchmark[s] the memory access latency with varying access
distance (stride) on the test FPGAs [18]" and fits a bounded linear function
``latency = a * stride + b`` for the Big pipeline's vertex-access model.
We reproduce the procedure against the simulated channel: sweep strides,
sample latencies (with deterministic measurement jitter standing in for
refresh interference), then least-squares fit the unsaturated region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hbm.channel import HbmChannelModel


@dataclass(frozen=True)
class LatencyFit:
    """Fitted bounded-linear latency model: ``clip(a*stride + b, lo, hi)``."""

    a: float
    b: float
    lower_bound: float
    upper_bound: float

    def latency(self, stride_bytes) -> np.ndarray:
        """Predicted latency (cycles) for the given stride in bytes."""
        stride = np.abs(np.asarray(stride_bytes, dtype=np.float64))
        return np.clip(
            self.a * stride + self.b, self.lower_bound, self.upper_bound
        )


def run_latency_benchmark(
    channel: HbmChannelModel,
    strides: np.ndarray = None,
    repeats: int = 8,
    jitter_cycles: float = 1.5,
    seed: int = 7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample (stride, mean latency) pairs from the channel model.

    Deterministic Gaussian jitter emulates run-to-run variance (refresh,
    arbitration) that a real Shuhai run would observe; the fit must be
    robust to it.
    """
    if strides is None:
        strides = np.array(
            [0, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384],
            dtype=np.float64,
        )
    rng = np.random.default_rng(seed)
    truth = channel.request_latency(strides)
    samples = truth[None, :] + rng.normal(0, jitter_cycles, (repeats, strides.size))
    return strides, samples.mean(axis=0)


def fit_linear_latency(
    strides: np.ndarray,
    latencies: np.ndarray,
) -> LatencyFit:
    """Least-squares fit of the unsaturated region of the latency curve.

    Points at the saturation plateau (within jitter of the max observed
    latency) are excluded from the slope fit, then re-imposed as the upper
    bound — mirroring how one reads a real latency-vs-stride plot.
    """
    strides = np.asarray(strides, dtype=np.float64)
    latencies = np.asarray(latencies, dtype=np.float64)
    if strides.size < 2:
        raise ValueError("need at least two benchmark points to fit")
    lower = float(latencies.min())
    upper = float(latencies.max())
    # Keep points below ~97% of the plateau for the linear fit.
    mask = latencies < lower + 0.97 * (upper - lower)
    if mask.sum() < 2:
        mask = np.ones_like(latencies, dtype=bool)
    coeffs = np.polyfit(strides[mask], latencies[mask], deg=1)
    a, b = float(coeffs[0]), float(coeffs[1])
    return LatencyFit(a=max(a, 0.0), b=b, lower_bound=lower, upper_bound=upper)


def calibrate_channel(channel: HbmChannelModel, seed: int = 7) -> LatencyFit:
    """End-to-end calibration: benchmark the channel, fit Eq. 4's (a, b)."""
    strides, latencies = run_latency_benchmark(channel, seed=seed)
    return fit_linear_latency(strides, latencies)
