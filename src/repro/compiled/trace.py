"""Trace synthesis: build an ExecutionTrace from compiled node timings.

The interpreted :func:`repro.arch.trace.trace_plan` re-simulates every
task of the plan just to learn its busy window — a full extra timing
pass (plus content-addressed cache hashing per task) for each trace the
conformance checker or the chaos oracles request.  The compiled engine
already knows every node's :class:`~repro.arch.timing.PartitionTiming`
bit-for-bit (the equivalence harness's contract), and the interpreted
trace is a pure fold over those timings: per pipeline, a clock starts
at zero and each task occupies ``[clock, clock + total_cycles)`` in
task order.

This module replays exactly that fold over the engine's timings —
labels, partition indices and edge counts come from the plan's own task
objects, so synthesized events are byte-for-byte the events the
interpreted tracer would emit, and pass the conformance trace
invariants (:mod:`repro.check.invariants`) verbatim.

Synthesis is only valid for channels without a live fault site: an
injector-backed channel makes per-task timings depend on mutable
injector state, which the engine's per-params memo must never capture.
The router (:func:`repro.arch.trace.trace_plan`) enforces that rule.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.trace import ExecutionTrace, TraceEvent
from repro.compiled.evaluate import _STATS, plan_engine
from repro.hbm.channel import HbmChannelModel


def synthesize_trace(
    plan,
    channel: Optional[HbmChannelModel] = None,
) -> ExecutionTrace:
    """One iteration's task-level timeline from compiled timings.

    Bit-identical to the interpreted :func:`repro.arch.trace.trace_plan`
    on any fault-free channel: the per-node timings are bit-identical,
    and the per-pipeline clock accumulation replays the same sequential
    float additions in the same order.
    """
    channel = channel or HbmChannelModel()
    engine = plan_engine(plan)
    timings = engine.timings(channel)
    cplan = engine.cplan
    _STATS["traces_synthesized"] += 1
    events: List[TraceEvent] = []

    for pipe_idx, tasks in enumerate(plan.little_tasks):
        row = cplan.little_by_pipe[pipe_idx]
        clock = 0.0
        for task_idx, task in enumerate(tasks):
            total = timings[row[task_idx].index].total_cycles
            events.append(
                TraceEvent(
                    pipeline=f"little[{pipe_idx}]",
                    task_label=f"p{task.partition.index}.{task_idx}",
                    start_cycle=clock,
                    end_cycle=clock + total,
                    partition_indices=(task.partition.index,),
                    num_edges=task.num_edges,
                )
            )
            clock += total
    for pipe_idx, tasks in enumerate(plan.big_tasks):
        row = cplan.big_by_pipe[pipe_idx]
        clock = 0.0
        for task_idx, task in enumerate(tasks):
            total = timings[row[task_idx].index].total_cycles
            label = "+".join(f"p{p.index}" for p in task.partitions[:3])
            if len(task.partitions) > 3:
                label += f"+{len(task.partitions) - 3}"
            events.append(
                TraceEvent(
                    pipeline=f"big[{pipe_idx}]",
                    task_label=f"{label}.{task_idx}",
                    start_cycle=clock,
                    end_cycle=clock + total,
                    partition_indices=tuple(
                        p.index for p in task.partitions
                    ),
                    num_edges=task.num_edges,
                )
            )
            clock += total
    return ExecutionTrace(events=events)
