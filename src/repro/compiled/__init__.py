"""Compiled simulation core: lower once, evaluate batched, reuse.

The interpreted cycle simulators walk one task at a time through
Python; this package compiles a
:class:`~repro.sched.plan.SchedulingPlan` into a static node plan
(:mod:`repro.compiled.lower`), evaluates all nodes' timing recurrences
in a few batched numpy passes (:mod:`repro.compiled.evaluate`) and
re-evaluates only affected nodes when a channel parameter, a single
task or one fault site changes (:mod:`repro.compiled.incremental`).
Results are **bit-identical** to the interpreted path — the equivalence
harness in ``tests/test_compiled_equivalence.py`` is the contract — and
populate the same content-addressed
:class:`~repro.perf.simcache.SimulationCache` entries.

The process-global switch (:func:`configure_compiled`, normally set via
:attr:`repro.perf.config.PerfConfig.compiled` / the ``--no-compiled``
CLI flag) gates whether :class:`~repro.core.system.SystemSimulator`
routes its fault-free timing passes through the compiled engine; runs
with an active timing fault always take the interpreted path, whose
per-task injector hooks the faults need.
"""

from repro.compiled.evaluate import (
    CompiledEngine,
    compiled_stats,
    evaluate_plan,
    plan_engine,
    reset_compiled_stats,
)
from repro.compiled.incremental import IncrementalEvaluator
from repro.compiled.lower import CompiledPlan, compile_plan
from repro.compiled.spec import CompiledSpec

_ENABLED = True


def compiled_enabled() -> bool:
    """Whether fault-free timing passes use the compiled engine."""
    return _ENABLED


def configure_compiled(enabled: bool) -> bool:
    """Flip the process-global compiled switch; returns the new state."""
    global _ENABLED
    _ENABLED = bool(enabled)
    return _ENABLED


__all__ = [
    "CompiledEngine",
    "CompiledPlan",
    "CompiledSpec",
    "IncrementalEvaluator",
    "compile_plan",
    "compiled_enabled",
    "compiled_stats",
    "configure_compiled",
    "evaluate_plan",
    "plan_engine",
    "reset_compiled_stats",
]
