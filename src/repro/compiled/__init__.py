"""Compiled simulation core: lower once, evaluate batched, reuse.

The interpreted cycle simulators walk one task at a time through
Python; this package compiles a
:class:`~repro.sched.plan.SchedulingPlan` into a static node plan
(:mod:`repro.compiled.lower`), evaluates all nodes' timing recurrences
in a few batched numpy passes (:mod:`repro.compiled.evaluate`) and
re-evaluates only affected nodes when a channel parameter, a single
task or one fault site changes (:mod:`repro.compiled.incremental`).
Results are **bit-identical** to the interpreted path — the equivalence
harness in ``tests/test_compiled_equivalence.py`` is the contract — and
populate the same content-addressed
:class:`~repro.perf.simcache.SimulationCache` entries.

The same split covers the functional pass
(:mod:`repro.compiled.functional`: per-plan gather/scatter structure,
batched UDF evaluation over whole partition groups) and trace
generation (:mod:`repro.compiled.trace`: ExecutionTrace events
synthesized from compiled node timings instead of a re-simulation).

The process-global switch (:func:`configure_compiled`, normally set via
:attr:`repro.perf.config.PerfConfig.compiled` / the ``--no-compiled``
CLI flag) gates whether :class:`~repro.core.system.SystemSimulator`
routes its fault-free timing/functional/trace passes through the
compiled engines; runs with an active timing (or functional) fault
always take the interpreted path, whose per-task injector hooks the
faults need.
"""

from repro.compiled.evaluate import (
    CompiledEngine,
    compiled_stats,
    evaluate_plan,
    plan_engine,
    reset_compiled_stats,
)
from repro.compiled.functional import (
    FunctionalEngine,
    FunctionalPlan,
    functional_engine,
    lower_functional_plan,
)
from repro.compiled.incremental import IncrementalEvaluator
from repro.compiled.lower import CompiledPlan, compile_plan
from repro.compiled.spec import CompiledSpec
from repro.compiled.trace import synthesize_trace

_ENABLED = True


def compiled_enabled() -> bool:
    """Whether fault-free timing passes use the compiled engine."""
    return _ENABLED


def configure_compiled(enabled: bool) -> bool:
    """Flip the process-global compiled switch; returns the new state."""
    global _ENABLED
    _ENABLED = bool(enabled)
    return _ENABLED


__all__ = [
    "CompiledEngine",
    "CompiledPlan",
    "CompiledSpec",
    "FunctionalEngine",
    "FunctionalPlan",
    "IncrementalEvaluator",
    "compile_plan",
    "compiled_enabled",
    "compiled_stats",
    "configure_compiled",
    "evaluate_plan",
    "functional_engine",
    "lower_functional_plan",
    "plan_engine",
    "reset_compiled_stats",
    "synthesize_trace",
]
