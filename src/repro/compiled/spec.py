"""Compiled-simulation specs: what exactly a lowered plan binds to.

A compiled evaluation is a pure function of

* the device the run is placed on (only through its accelerator shape —
  the device string is carried for reporting and key separation),
* the accelerator combo (``num_little``/``num_big`` plus the frozen
  :class:`~repro.arch.config.PipelineConfig`),
* the frozen :class:`~repro.hbm.channel.HbmTimingParams`, and
* the edge record width (8 B plain / 12 B weighted).

:class:`CompiledSpec` freezes those four inputs and derives a SHA-256
digest from their ``repr`` — the same injective-by-construction scheme
:func:`repro.perf.simcache.config_digest_prefix` uses, so any field
change (including fields added later to the nested frozen dataclasses)
changes the digest.  The key-injectivity property test in
``tests/test_perf_cache.py`` pins this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.hbm.channel import HbmTimingParams


@dataclass(frozen=True)
class CompiledSpec:
    """Identity of one compiled (device, combo, channel-params) binding."""

    #: Device name the run targets ("" when not placed on a device).
    device: str
    #: Pipeline combo: counts + the frozen per-pipeline configuration.
    accelerator: AcceleratorConfig
    #: Frozen HBM channel timing constants the evaluation used.
    channel: HbmTimingParams
    #: Edge record width in bytes (8 plain / 12 weighted).
    edge_bytes: int = 8

    def digest(self) -> str:
        """SHA-256 over the full field tuple (via frozen-dataclass repr).

        ``repr`` spells every field of every nested frozen dataclass, so
        two specs differing in *any* constant — PE counts, buffer sizes,
        latency parameters, edge width — can never alias.
        """
        return hashlib.sha256(repr(self).encode()).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable tag for reports and bench artifacts."""
        dev = self.device or "any"
        return f"{dev}:{self.accelerator.label}:{self.edge_bytes}B"
