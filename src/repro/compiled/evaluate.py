"""Batched evaluation of a lowered plan under one set of channel params.

The evaluator pads per-node structure arrays into one matrix per stage
and resolves every node's timing recurrence in a handful of vectorised
numpy passes instead of one interpreted pass per task:

* Little nodes: ``ready_v = fill + L``, ``ready_e = i * set_cycles + L``
  and a constant per-set service, resolved row-wise with
  :func:`~repro.utils.prefix.running_release_times_batched`.
* Big nodes: the request stage (strides → service via
  :meth:`~repro.hbm.channel.HbmChannelModel.effective_request_cycles`,
  resolved row-wise, plus the base latency), a per-set gather of the
  releasing response, then the set stage against the router's
  gather-service rates.

**Bit-identity.**  Every elementwise operation consumes exactly the
operand values the interpreted datapath consumes, and ``cumsum`` /
``maximum.accumulate`` reduce left-to-right per row exactly as in 1-D —
so each node's compute cycles equal the interpreted result *bitwise*,
not approximately.  Row padding lives strictly to the right of each
row's last valid column and is never read.  No closed-form shortcuts
are taken anywhere: float addition is not associative, so re-ordered
"equivalent" math would break the equivalence harness.

Evaluations are memoized per frozen
:class:`~repro.hbm.channel.HbmTimingParams` and their results are
published into the process-global
:class:`~repro.perf.simcache.SimulationCache` under the *same*
content-addressed keys the interpreted memo uses, so the functional
pass (and any later interpreted caller) hits entries the compiled pass
produced.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.arch.timing import PartitionTiming
from repro.compiled.lower import BigNode, CompiledPlan, LittleNode, compile_plan
from repro.hbm.channel import HbmChannelModel
from repro.utils.prefix import running_release_times_batched

#: Upper bound on padded-matrix elements per batch; beyond it the node
#: set is chunked (chunking never changes any row's arithmetic).
MAX_BATCH_ELEMENTS = 1 << 22

#: Memoized evaluations kept per engine (params -> results).
ENGINE_MEMO_ENTRIES = 16


# ---------------------------------------------------------------------------
# Process-global stats (surfaced beside the simulation-cache counters)
# ---------------------------------------------------------------------------
_STATS = {
    "plans_compiled": 0,
    "nodes_lowered": 0,
    "evaluations": 0,
    "nodes_evaluated": 0,
    "memo_hits": 0,
    # Functional-pass routing (repro.compiled.functional / core.system):
    "functional_plans": 0,
    "functional_nodes": 0,
    "functional_iterations": 0,
    "functional_batches": 0,
    "functional_fallbacks": 0,
    # Trace synthesis (repro.compiled.trace / arch.trace):
    "traces_synthesized": 0,
    "traces_interpreted": 0,
}


def compiled_stats() -> dict:
    """Snapshot of the compiled-core counters."""
    return dict(_STATS)


def reset_compiled_stats() -> None:
    """Zero the compiled-core counters (bench/test isolation)."""
    for key in _STATS:
        _STATS[key] = 0


# ---------------------------------------------------------------------------
# Batched node evaluation
# ---------------------------------------------------------------------------
def _chunk_nodes(nodes: List[object], width_of) -> Iterable[List[object]]:
    """Split ``nodes`` into runs whose padded matrix stays bounded."""
    chunk: List[object] = []
    width = 0
    for node in nodes:
        width = max(width, width_of(node))
        if chunk and (len(chunk) + 1) * width > MAX_BATCH_ELEMENTS:
            yield chunk
            chunk = [node]
            width = width_of(node)
        else:
            chunk.append(node)
    if chunk:
        yield chunk


def _evaluate_little_nodes(
    nodes: List[LittleNode],
    channel: HbmChannelModel,
    out: Dict[int, PartitionTiming],
) -> None:
    base = channel.base_latency()
    for chunk in _chunk_nodes(nodes, lambda n: n.num_sets):
        rows = len(chunk)
        smax = max(n.num_sets for n in chunk)
        fill = np.zeros((rows, smax))
        service = np.empty((rows, smax))
        set_cycles = np.empty((rows, 1))
        for i, node in enumerate(chunk):
            fill[i, : node.num_sets] = node.fill_at_set
            service[i, :] = node.service_cycles
            set_cycles[i, 0] = node.set_cycles
        cols = np.arange(1, smax + 1, dtype=np.float64)[None, :]
        ready_e = cols * set_cycles + base
        ready_v = fill + base
        completion = running_release_times_batched(
            np.maximum(ready_e, ready_v), service
        )
        for i, node in enumerate(chunk):
            out[node.index] = PartitionTiming(
                compute_cycles=float(completion[i, node.num_sets - 1]),
                store_cycles=node.store_cycles,
                switch_cycles=node.switch_cycles,
                num_edges=node.num_edges,
                num_sets=node.num_sets,
            )


def _evaluate_big_nodes(
    nodes: List[BigNode],
    channel: HbmChannelModel,
    out: Dict[int, PartitionTiming],
) -> None:
    base = channel.base_latency()
    width_of = lambda n: max(n.num_sets, n.strides.size)  # noqa: E731
    for chunk in _chunk_nodes(nodes, width_of):
        rows = len(chunk)
        rmax = max(n.strides.size for n in chunk)
        smax = max(n.num_sets for n in chunk)
        strides = np.zeros((rows, rmax))
        arrival = np.zeros((rows, rmax))
        last_req = np.full((rows, smax), -1, dtype=np.int64)
        gather = np.zeros((rows, smax))
        set_cycles = np.empty((rows, 1))
        for i, node in enumerate(chunk):
            strides[i, : node.strides.size] = node.strides
            arrival[i, : node.arrival.size] = node.arrival
            last_req[i, : node.num_sets] = node.last_req_per_set
            gather[i, : node.num_sets] = node.gather_service
            set_cycles[i, 0] = node.set_cycles
        # Request stage — same op chain as VertexLoaderSim, per row.
        service = channel.effective_request_cycles(strides)
        response = running_release_times_batched(arrival, service) + base
        gathered = np.take_along_axis(
            response, np.maximum(last_req, 0), axis=1
        )
        ready_v = np.where(last_req >= 0, gathered, 0.0)
        # Set stage — same op chain as BigPipelineSim._compute_timing.
        cols = np.arange(1, smax + 1, dtype=np.float64)[None, :]
        ready_e = cols * set_cycles + base
        completion = running_release_times_batched(
            np.maximum(ready_e, ready_v), gather
        )
        for i, node in enumerate(chunk):
            out[node.index] = PartitionTiming(
                compute_cycles=float(completion[i, node.num_sets - 1]),
                store_cycles=node.store_cycles,
                switch_cycles=node.switch_cycles,
                num_edges=node.num_edges,
                num_sets=node.num_sets,
            )


def evaluate_nodes(
    cplan: CompiledPlan,
    nodes: Iterable[object],
    channel: HbmChannelModel,
) -> Dict[int, PartitionTiming]:
    """Evaluate a subset of nodes under ``channel``; keyed by node index.

    Empty nodes resolve to their channel-independent constant timing;
    the rest are batched per pipeline kind.
    """
    out: Dict[int, PartitionTiming] = {}
    little: List[LittleNode] = []
    big: List[BigNode] = []
    for node in nodes:
        constant = cplan.constant_timing(node)
        if constant is not None:
            out[node.index] = constant
        elif node.kind == "little":
            little.append(node)
        else:
            big.append(node)
    _evaluate_little_nodes(little, channel, out)
    _evaluate_big_nodes(big, channel, out)
    _STATS["nodes_evaluated"] += len(out)
    return out


def evaluate_plan(
    cplan: CompiledPlan, channel: HbmChannelModel
) -> List[PartitionTiming]:
    """Evaluate every node; returns timings indexed by node index."""
    _STATS["evaluations"] += 1
    by_index = evaluate_nodes(cplan, cplan.nodes, channel)
    return [by_index[i] for i in range(len(cplan.nodes))]


# ---------------------------------------------------------------------------
# Simulation-cache composition
# ---------------------------------------------------------------------------
def publish_to_cache(
    cplan: CompiledPlan,
    channel: HbmChannelModel,
    timings: List[PartitionTiming],
) -> int:
    """Insert compiled results under the interpreted memo's cache keys.

    The functional pass re-times each task through
    ``LittlePipelineSim._timing`` / ``BigPipelineSim._timing``; seeding
    their exact content-addressed keys turns all of those lookups into
    hits.  Returns the number of entries written (0 when the cache is
    disabled or the entries are already present).
    """
    from repro.perf.simcache import (
        config_digest,
        config_digest_prefix,
        get_cache,
        timing_key,
    )

    cache = get_cache()
    if not cache.enabled or not cplan.nodes:
        return 0
    config = cplan.config
    prefixes = {
        "little": config_digest_prefix("little", config, channel.params),
        "big": config_digest_prefix("big", config, channel.params),
    }
    digests = {kind: config_digest(p) for kind, p in prefixes.items()}
    written = 0
    for node in cplan.nodes:
        if node.kind == "little":
            key = timing_key(prefixes["little"], node.edge_bytes, (node.src,))
        else:
            key = timing_key(
                prefixes["big"],
                node.edge_bytes,
                (node.src, node.lanes),
                extra=(node.num_lanes,),
            )
        if not cache.contains(key):
            cache.put(key, timings[node.index], digests[node.kind])
            written += 1
    return written


# ---------------------------------------------------------------------------
# Per-plan engine
# ---------------------------------------------------------------------------
class CompiledEngine:
    """Compiled structure of one plan plus memoized evaluations."""

    def __init__(self, cplan: CompiledPlan):
        self.cplan = cplan
        self._memo: "OrderedDict[object, List[PartitionTiming]]" = (
            OrderedDict()
        )

    def timings(self, channel: HbmChannelModel) -> List[PartitionTiming]:
        """All node timings under ``channel`` (memoized per params)."""
        params = channel.params
        cached = self._memo.get(params)
        if cached is not None:
            self._memo.move_to_end(params)
            _STATS["memo_hits"] += 1
            publish_to_cache(self.cplan, channel, cached)
            return cached
        timings = evaluate_plan(self.cplan, channel)
        publish_to_cache(self.cplan, channel, timings)
        self._memo[params] = timings
        while len(self._memo) > ENGINE_MEMO_ENTRIES:
            self._memo.popitem(last=False)
        return timings

    def busy_cycles(self, channel: HbmChannelModel):
        """Per-pipeline busy sums, replayed in interpreted task order.

        The accumulation is the same sequential ``busy += total_cycles``
        the interpreted timing pass performs, over bit-identical
        per-task timings — so the sums are bit-identical too.
        """
        timings = self.timings(channel)
        little = []
        for row in self.cplan.little_by_pipe:
            busy = 0.0
            for node in row:
                busy += timings[node.index].total_cycles
            little.append(busy)
        big = []
        for row in self.cplan.big_by_pipe:
            busy = 0.0
            for node in row:
                busy += timings[node.index].total_cycles
            big.append(busy)
        return little, big


def plan_engine(plan) -> CompiledEngine:
    """Engine for ``plan``, compiling on first use.

    The engine is attached to the plan object itself: plans are rebuilt
    (never mutated) by the degradation path, so a stale structure can
    never be re-used against changed task lists.
    """
    engine: Optional[CompiledEngine] = getattr(
        plan, "_compiled_engine", None
    )
    if engine is None:
        cplan = compile_plan(plan)
        _STATS["plans_compiled"] += 1
        _STATS["nodes_lowered"] += len(cplan.nodes)
        engine = CompiledEngine(cplan)
        plan._compiled_engine = engine
    return engine
