"""Lowering: from a SchedulingPlan to a static node evaluation plan.

One node per scheduled task.  Lowering extracts everything that does
*not* depend on the HBM channel parameters — ping-pong fill positions,
deduplicated request strides and arrivals, per-set releasing requests,
router gather-service rates, stream constants — by calling the exact
structure routines the interpreted simulators use
(:meth:`~repro.arch.pingpong.PingPongBufferSim.access_structure`,
:meth:`~repro.arch.vertex_loader.VertexLoaderSim.access_structure`,
:func:`~repro.arch.big_pipeline.gather_service_cycles`,
:func:`~repro.arch.big_pipeline.merge_group_edges`).  Evaluation then
replays the *same* elementwise operation chain as the interpreted
datapath, batched across nodes (see :mod:`repro.compiled.evaluate`),
which is why compiled timings are bit-identical, not merely close.

This is the LightningSimV2 split (PAPERS.md): pay structure extraction
once, make repeated evaluation — per channel variant, per sweep point,
per chaos cell — cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.big_pipeline import gather_service_cycles, merge_group_edges
from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.merger import merger_cycles
from repro.arch.pingpong import PingPongBufferSim
from repro.arch.timing import PartitionTiming
from repro.arch.vertex_loader import VertexLoaderSim
from repro.sched.plan import SchedulingPlan


@dataclass
class LittleNode:
    """Lowered Little task: ping-pong structure + stream constants."""

    index: int          #: position in the flat node list
    pipeline: int       #: Little pipeline index
    order: int          #: position within the pipeline's task list
    num_edges: int
    num_sets: int
    edge_bytes: int
    set_cycles: float       #: edge-set stream period (Burst Read)
    service_cycles: float   #: constant per-set Gather service
    store_cycles: float     #: partition store incl. merger drain
    switch_cycles: float
    fill_at_set: np.ndarray  #: [S] burst-relative fill completion
    src: np.ndarray          #: retained for simulation-cache keys

    kind = "little"


@dataclass
class BigNode:
    """Lowered Big task: loader request structure + router service."""

    index: int
    pipeline: int       #: Big pipeline index
    order: int
    num_edges: int
    num_sets: int
    edge_bytes: int
    set_cycles: float
    store_cycles: float
    switch_cycles: float
    strides: np.ndarray          #: [R] request strides (bytes)
    arrival: np.ndarray          #: [R] request arrival cycles
    last_req_per_set: np.ndarray  #: [S] releasing request (-1 = none)
    gather_service: np.ndarray    #: [S] router-bound Gather service
    src: np.ndarray               #: merged sources (cache keys)
    lanes: np.ndarray             #: per-edge Gather lanes (cache keys)
    num_lanes: int

    kind = "big"


@dataclass
class CompiledPlan:
    """The static evaluation plan for one SchedulingPlan."""

    accelerator: AcceleratorConfig
    num_little: int
    num_big: int
    #: Flat node list; ``nodes[i].index == i``.
    nodes: List[object]
    #: Per-pipeline node lists in task order (busy-sum replay order).
    little_by_pipe: List[List[LittleNode]]
    big_by_pipe: List[List[BigNode]]

    @property
    def config(self) -> PipelineConfig:
        return self.accelerator.pipeline

    def constant_timing(self, node) -> Optional[PartitionTiming]:
        """Timing of a node that needs no evaluation (empty edge list)."""
        if node.num_edges:
            return None
        return PartitionTiming(
            compute_cycles=0.0,
            store_cycles=node.store_cycles,
            switch_cycles=node.switch_cycles,
            num_edges=0,
            num_sets=0,
        )


def lower_little_task(
    config: PipelineConfig, partition, index: int, pipeline: int, order: int
) -> LittleNode:
    """Lower one Little task (see module docstring)."""
    edge_bytes = 8 if partition.weights is None else 12
    store = config.store_cycles + merger_cycles(config.n_gpe)
    # The structure routine never consults the channel; the simulator is
    # instantiated channel-less on purpose.
    pingpong = PingPongBufferSim(config, None)
    fill_at_set, _stats = pingpong.access_structure(partition.src)
    return LittleNode(
        index=index,
        pipeline=pipeline,
        order=order,
        num_edges=int(partition.src.size),
        num_sets=int(fill_at_set.size),
        edge_bytes=edge_bytes,
        set_cycles=config.edges_per_set * edge_bytes / 64.0,
        service_cycles=config.edges_per_set * config.proc_cycles_per_edge,
        store_cycles=store,
        switch_cycles=config.switch_cycles,
        fill_at_set=fill_at_set,
        src=np.asarray(partition.src),
    )


def lower_big_task(
    config: PipelineConfig, partitions, index: int, pipeline: int, order: int
) -> BigNode:
    """Lower one Big task (a routed group of partitions)."""
    src, _dst, lanes, weights = merge_group_edges(partitions)
    edge_bytes = 8 if weights is None else 12
    loader = VertexLoaderSim(config, None)
    structure = loader.access_structure(src)
    gather = gather_service_cycles(lanes, len(partitions), config)
    return BigNode(
        index=index,
        pipeline=pipeline,
        order=order,
        num_edges=int(src.size),
        num_sets=structure.num_sets,
        edge_bytes=edge_bytes,
        set_cycles=config.edges_per_set * edge_bytes / 64.0,
        store_cycles=config.store_cycles,
        switch_cycles=config.switch_cycles,
        strides=structure.strides,
        arrival=structure.arrival,
        last_req_per_set=structure.last_req_per_set,
        gather_service=gather,
        src=src,
        lanes=lanes,
        num_lanes=len(partitions),
    )


def compile_plan(plan: SchedulingPlan) -> CompiledPlan:
    """Lower every task of ``plan`` into a static evaluation plan.

    Channel-independent by construction: the result is reused unchanged
    across channel-parameter changes, sweep points and re-timed retries;
    only :mod:`repro.compiled.evaluate` touches channel state.
    """
    config = plan.accelerator.pipeline
    nodes: List[object] = []
    little_by_pipe: List[List[LittleNode]] = []
    big_by_pipe: List[List[BigNode]] = []
    for pipe, tasks in enumerate(plan.little_tasks):
        row = []
        for order, task in enumerate(tasks):
            node = lower_little_task(
                config, task.partition, len(nodes), pipe, order
            )
            nodes.append(node)
            row.append(node)
        little_by_pipe.append(row)
    for pipe, tasks in enumerate(plan.big_tasks):
        row = []
        for order, task in enumerate(tasks):
            node = lower_big_task(
                config, task.partitions, len(nodes), pipe, order
            )
            nodes.append(node)
            row.append(node)
        big_by_pipe.append(row)
    return CompiledPlan(
        accelerator=plan.accelerator,
        num_little=len(plan.little_tasks),
        num_big=len(plan.big_tasks),
        nodes=nodes,
        little_by_pipe=little_by_pipe,
        big_by_pipe=big_by_pipe,
    )
