"""Compiled functional pass: lower the gather/scatter structure once,
evaluate whole partition groups per iteration with batched UDF calls.

The interpreted functional pass walks every scheduled task through
``LittlePipelineSim.execute`` / ``BigPipelineSim.execute`` each
iteration: per task it re-hashes the edge arrays for the timing cache,
re-merges group edge lists, re-derives the dispatch of every edge onto
its Gather PE, and issues one small numpy call per PE.  None of that
depends on the evolving property array — it is *structure*, and this
module extracts it once per plan (the LightningSimV2 split applied to
the functional path, mirroring :mod:`repro.compiled.lower` for timing):

* per-node source index arrays (little: the partition's ``src``; big:
  the merged group order from
  :func:`~repro.arch.big_pipeline.merge_group_edges`),
* per-edge *flat gather slots* — the destination each edge's update
  lands in, folded over the task's PE-buffer bank
  (:func:`~repro.arch.little_pipeline.static_gather_structure` /
  :func:`~repro.arch.big_pipeline.routed_gather_structure`),
* the drained-buffer output ranges each node merges into the global
  accumulator.

Evaluation then batches whole node groups: one ``app.scatter`` over the
concatenated edge sources, one ``app.gather_at`` per buffer bank over
the concatenated flat slots, one vectorised merge tree across all
little nodes at once.

**Bit-identity.**  Every ``gather_at`` is a ``ufunc.at`` — a per-element
left fold in argument order.  Node and PE buffer regions are disjoint in
the flat bank, and concatenation preserves each node's original edge
order, so every individual slot sees exactly the update sequence the
per-PE interpreted calls feed it — identical results for *any* gather
UDF, not merely the commutative ones.  ``scatter``, ``gather`` and
``apply`` are elementwise, so batching across tasks cannot change any
element either.  The per-node merges into the global accumulator are
replayed sequentially in interpreted task order.  The differential
harness in ``tests/test_compiled_functional.py`` is the contract.

Runs with an *active* functional fault (a bit-flip whose window is open)
always fall back to the interpreted walk, whose per-buffer
``filter_buffer`` hook owns the fault RNG — the same fallback rule the
compiled timing pass applies via ``timing_faults_active()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.arch.big_pipeline import merge_group_edges, routed_gather_structure
from repro.arch.little_pipeline import static_gather_structure
from repro.compiled.evaluate import _STATS

#: Upper bound on working-set elements (buffer slots + edge words) per
#: evaluation batch; beyond it the node list is chunked.  Chunking never
#: changes any element's arithmetic — regions stay disjoint and each
#: chunk's accumulator merges still run in plan order.
MAX_FUNCTIONAL_ELEMENTS = 1 << 22


@dataclass
class FunctionalNode:
    """Lowered functional structure of one scheduled task."""

    index: int          #: position in the flat node list (plan order)
    kind: str           #: "little" (static dispatch) or "big" (routed)
    num_edges: int
    #: PE buffers this node's bank holds (``n_gpe`` replicated buffers
    #: in static mode; one per grouped partition in routed mode).
    num_buffers: int
    #: Per-edge source vertex (little: partition order; big: merged
    #: group order — the order the scatter PEs consume).
    src: np.ndarray
    weights: Optional[np.ndarray]
    #: Per-edge flat slot into the node's ``(num_buffers, U)`` bank:
    #: ``pe * U + (dst - base)`` — the exact destination the dispatch
    #: discipline routes each update to.
    flat_slots: np.ndarray
    #: Drained-buffer output ranges ``(vertex_lo, vertex_hi, num_dst)``
    #: merged into the accumulator, in interpreted order (little: the
    #: single post-merge-tree buffer; big: one per grouped partition).
    outputs: Tuple[Tuple[int, int, int], ...]


@dataclass
class FunctionalPlan:
    """The static functional-evaluation plan for one SchedulingPlan."""

    #: Flat node list in interpreted functional-pass order (little
    #: pipelines' tasks first, then big pipelines' tasks).
    nodes: List[FunctionalNode]
    #: Destination slots per PE buffer (``config.partition_vertices``).
    buffer_vertices: int
    #: Slots actually allocated per PE buffer: the plan's widest
    #: destination range.  Every flat slot is strided by this, so banks
    #: skip the dead tail of the hardware interval when the graph does
    #: not fill it — per-slot update order (and therefore bit-identity)
    #: is unaffected; only never-written columns disappear.
    bank_width: int
    #: Gather PEs per pipeline (the static bank width).
    n_gpe: int

    def node_cost(self, node: FunctionalNode) -> int:
        """Batch working-set elements of ``node`` (buffer bank + edges)."""
        bank = (
            self.n_gpe if node.kind == "little" else node.num_buffers
        ) * self.bank_width
        return bank + 2 * node.num_edges


def lower_functional_plan(plan) -> FunctionalPlan:
    """Lower every task of ``plan`` into its functional structure.

    Property-independent by construction: the result is reused unchanged
    across iterations, retries and apps sharing the plan; only
    :meth:`FunctionalEngine.accumulate` touches the property array.
    """
    config = plan.accelerator.pipeline
    interval = config.partition_vertices
    width = 1
    for tasks in plan.little_tasks:
        for task in tasks:
            width = max(width, task.partition.num_dst_vertices)
    for tasks in plan.big_tasks:
        for task in tasks:
            for p in task.partitions:
                width = max(width, p.num_dst_vertices)
    nodes: List[FunctionalNode] = []
    for tasks in plan.little_tasks:
        for task in tasks:
            partition = task.partition
            pe, slot = static_gather_structure(config, partition)
            nodes.append(
                FunctionalNode(
                    index=len(nodes),
                    kind="little",
                    num_edges=partition.num_edges,
                    num_buffers=config.n_gpe,
                    src=np.asarray(partition.src),
                    weights=partition.weights,
                    flat_slots=pe * width + slot,
                    outputs=(
                        (
                            partition.vertex_lo,
                            partition.vertex_hi,
                            partition.num_dst_vertices,
                        ),
                    ),
                )
            )
    for tasks in plan.big_tasks:
        for task in tasks:
            partitions = task.partitions
            src, dst, _lanes, weights = merge_group_edges(partitions)
            lane, slot = routed_gather_structure(partitions, dst)
            nodes.append(
                FunctionalNode(
                    index=len(nodes),
                    kind="big",
                    num_edges=int(src.size),
                    num_buffers=len(partitions),
                    src=src,
                    weights=weights,
                    flat_slots=lane * width + slot,
                    outputs=tuple(
                        (p.vertex_lo, p.vertex_hi, p.num_dst_vertices)
                        for p in partitions
                    ),
                )
            )
    return FunctionalPlan(
        nodes=nodes,
        buffer_vertices=interval,
        bank_width=width,
        n_gpe=config.n_gpe,
    )


def _chunk_functional(
    fplan: FunctionalPlan,
) -> Iterable[List[FunctionalNode]]:
    """Split the node list into bounded contiguous runs (plan order)."""
    chunk: List[FunctionalNode] = []
    total = 0
    for node in fplan.nodes:
        cost = fplan.node_cost(node)
        if chunk and total + cost > MAX_FUNCTIONAL_ELEMENTS:
            yield chunk
            chunk, total = [], 0
        chunk.append(node)
        total += cost
    if chunk:
        yield chunk


class FunctionalEngine:
    """Lowered functional structure of one plan, evaluated per iteration."""

    def __init__(self, fplan: FunctionalPlan):
        self.fplan = fplan

    def accumulate(self, app, props: np.ndarray) -> np.ndarray:
        """One iteration's global accumulator (pre-Apply).

        Equals the interpreted functional pass's ``acc`` bit-for-bit;
        the caller applies ``app.apply`` exactly as the interpreted
        path does.
        """
        _STATS["functional_iterations"] += 1
        interval = self.fplan.bank_width
        n_gpe = self.fplan.n_gpe
        acc = np.full(props.size, app.gather_identity, dtype=app.prop_dtype)
        for chunk in _chunk_functional(self.fplan):
            _STATS["functional_batches"] += 1
            little = [n for n in chunk if n.kind == "little"]
            big = [n for n in chunk if n.kind == "big"]
            big_rows = sum(n.num_buffers for n in big)

            # -- batched scatter over every edge of the chunk ----------
            edged = [n for n in chunk if n.num_edges]
            little_edges = sum(n.num_edges for n in little)
            updates = None
            if edged:
                src_cat = np.concatenate([n.src for n in edged])
                weights_cat = None
                if edged[0].weights is not None:
                    weights_cat = np.concatenate(
                        [n.weights for n in edged]
                    )
                updates = app.scatter(props[src_cat], weights_cat)

            # -- batched gather into the flat PE-buffer banks ----------
            lbuf = None
            if little:
                lbuf = np.full(
                    (len(little), n_gpe, interval),
                    app.gather_identity,
                    dtype=app.prop_dtype,
                )
                slots = [
                    j * (n_gpe * interval) + n.flat_slots
                    for j, n in enumerate(little)
                    if n.num_edges
                ]
                if slots:
                    app.gather_at(
                        lbuf.reshape(-1),
                        np.concatenate(slots),
                        updates[:little_edges],
                    )
            bbuf = None
            if big_rows:
                bbuf = np.full(
                    (big_rows, interval),
                    app.gather_identity,
                    dtype=app.prop_dtype,
                )
                slots = []
                row = 0
                for n in big:
                    if n.num_edges:
                        slots.append(row * interval + n.flat_slots)
                    row += n.num_buffers
                if slots:
                    app.gather_at(
                        bbuf.reshape(-1),
                        np.concatenate(slots),
                        updates[little_edges:],
                    )

            # -- batched merge tree across every little node -----------
            # The same pairwise order as merge_buffers, vectorised over
            # the chunk's nodes; gather is elementwise, so each node's
            # result equals its interpreted tree bit-for-bit.
            merged = None
            if little:
                level = [lbuf[:, i, :] for i in range(n_gpe)]
                while len(level) > 1:
                    nxt = [
                        app.gather(level[i], level[i + 1])
                        for i in range(0, len(level) - 1, 2)
                    ]
                    if len(level) % 2:
                        nxt.append(level[-1])
                    level = nxt
                merged = level[0]

            # -- per-node accumulator merges, in interpreted order -----
            li = 0
            row = 0
            for node in chunk:
                if node.kind == "little":
                    lo, hi, num_dst = node.outputs[0]
                    acc[lo:hi] = app.gather(
                        acc[lo:hi], merged[li, :num_dst]
                    )
                    li += 1
                else:
                    for k, (lo, hi, num_dst) in enumerate(node.outputs):
                        acc[lo:hi] = app.gather(
                            acc[lo:hi], bbuf[row + k, :num_dst]
                        )
                    row += node.num_buffers
        return acc


def note_functional_fallback() -> None:
    """Count one functional pass routed through the interpreted walk."""
    _STATS["functional_fallbacks"] += 1


def functional_engine(plan) -> FunctionalEngine:
    """Functional engine for ``plan``, lowering on first use.

    Attached to the plan object itself — plans are rebuilt (never
    mutated) by the degradation path, so a stale structure can never be
    replayed against changed task lists.
    """
    engine: Optional[FunctionalEngine] = getattr(
        plan, "_functional_engine", None
    )
    if engine is None:
        fplan = lower_functional_plan(plan)
        _STATS["functional_plans"] += 1
        _STATS["functional_nodes"] += len(fplan.nodes)
        engine = FunctionalEngine(fplan)
        plan._functional_engine = engine
    return engine
