"""Incremental re-simulation: re-evaluate only what a change touches.

Sweeps, chaos campaigns and what-if probes mutate one thing at a time —
a channel parameter, one scheduled task, one fault site — and the
compiled structure makes the blast radius of each mutation explicit:

* **channel params** enter only at evaluation, so every non-empty node
  is dirty (empty nodes have channel-independent constant timing);
* **one task** owns exactly one node, so replacing it re-lowers and
  re-evaluates that node alone;
* **one fault site** (a latency-spike scale pinned to one pipeline,
  mirroring :meth:`repro.faults.injector.FaultInjector.scale_latency`'s
  post-clip multiply) dirties only that pipeline's non-empty nodes —
  plus the previously-scaled ones when the site moves or clears.

Every mutation records its dirty set in :attr:`last_dirty` so the
property suite can assert minimality, and re-evaluated nodes use the
same batched kernels as a cold run — making incremental output
bit-identical to a full evaluation under the final state, which
``tests/test_compiled_incremental.py`` pins with hypothesis.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.arch.timing import PartitionTiming
from repro.compiled.evaluate import evaluate_nodes
from repro.compiled.lower import (
    CompiledPlan,
    compile_plan,
    lower_big_task,
    lower_little_task,
)
from repro.hbm.channel import HbmChannelModel, HbmTimingParams


class _ScaledLatencySite:
    """Minimal fault-site shim: post-clip latency multiply, like an
    active latency spike whose window covers the evaluation."""

    def __init__(self, scale: float):
        self.scale = float(scale)

    def scale_latency(self, latency):
        if self.scale == 1.0:
            return latency
        return latency * self.scale


class IncrementalEvaluator:
    """Compiled plan + current timings, updated change by change."""

    def __init__(
        self,
        plan,
        params: Optional[HbmTimingParams] = None,
        cplan: Optional[CompiledPlan] = None,
    ):
        self.cplan = cplan if cplan is not None else compile_plan(plan)
        self.params = params if params is not None else HbmTimingParams()
        #: Latency-spike scale per (kind, pipeline); absent = 1.0.
        self.fault_scales: Dict[Tuple[str, int], float] = {}
        self.timings: List[PartitionTiming] = [None] * len(self.cplan.nodes)
        self._refresh(self.cplan.nodes)
        #: Node indices the most recent mutation re-evaluated.
        self.last_dirty: FrozenSet[int] = frozenset(
            node.index for node in self.cplan.nodes
        )

    # -- channels ------------------------------------------------------
    def _channel_for(self, node) -> HbmChannelModel:
        scale = self.fault_scales.get((node.kind, node.pipeline), 1.0)
        if scale == 1.0:
            return HbmChannelModel(self.params)
        return HbmChannelModel(
            self.params, fault_site=_ScaledLatencySite(scale)
        )

    def _refresh(self, nodes) -> None:
        """Re-evaluate ``nodes`` in place under the current state.

        Nodes sharing one effective channel are batched together (clean
        pipelines all share one channel; each scaled pipeline gets its
        own), so a refresh costs the same per node as a cold run.
        """
        for index, timing in self._evaluate_grouped(nodes).items():
            self.timings[index] = timing

    def _evaluate_grouped(self, nodes) -> Dict[int, PartitionTiming]:
        """Evaluate ``nodes``, grouped by their effective channel."""
        groups: Dict[Optional[Tuple[str, int]], list] = {}
        for node in nodes:
            key = (node.kind, node.pipeline)
            groups.setdefault(
                key if key in self.fault_scales else None, []
            ).append(node)
        out: Dict[int, PartitionTiming] = {}
        for members in groups.values():
            channel = self._channel_for(members[0])
            out.update(evaluate_nodes(self.cplan, members, channel))
        return out

    # -- mutations -----------------------------------------------------
    def set_channel_params(self, params: HbmTimingParams) -> FrozenSet[int]:
        """Switch channel parameters; dirties every non-empty node."""
        if params == self.params:
            self.last_dirty = frozenset()
            return self.last_dirty
        self.params = params
        dirty = [n for n in self.cplan.nodes if n.num_edges]
        self._refresh(dirty)
        self.last_dirty = frozenset(n.index for n in dirty)
        return self.last_dirty

    def replace_task(self, kind: str, pipeline: int, order: int, task):
        """Swap one scheduled task; dirties exactly its node.

        ``task`` is a :class:`~repro.sched.plan.LittleTask` /
        :class:`~repro.sched.plan.BigTask` matching ``kind``.
        """
        config = self.cplan.config
        rows = (
            self.cplan.little_by_pipe
            if kind == "little"
            else self.cplan.big_by_pipe
        )
        old = rows[pipeline][order]
        if kind == "little":
            node = lower_little_task(
                config, task.partition, old.index, pipeline, order
            )
        else:
            node = lower_big_task(
                config, task.partitions, old.index, pipeline, order
            )
        rows[pipeline][order] = node
        self.cplan.nodes[old.index] = node
        self._refresh([node])
        self.last_dirty = frozenset((node.index,))
        return self.last_dirty

    def set_fault(
        self, kind: str, pipeline: int, scale: float
    ) -> FrozenSet[int]:
        """Pin a latency-spike scale onto one pipeline (1.0 clears it).

        Dirties the non-empty nodes of every pipeline whose effective
        scale changed — the newly-faulted one and, when the site moved
        or cleared, the previously-faulted ones.
        """
        key = (kind, pipeline)
        previous = self.fault_scales.get(key, 1.0)
        if scale == previous:
            self.last_dirty = frozenset()
            return self.last_dirty
        if scale == 1.0:
            del self.fault_scales[key]
        else:
            self.fault_scales[key] = float(scale)
        dirty = [
            n
            for n in self.cplan.nodes
            if n.num_edges and (n.kind, n.pipeline) == key
        ]
        self._refresh(dirty)
        self.last_dirty = frozenset(n.index for n in dirty)
        return self.last_dirty

    # -- oracles -------------------------------------------------------
    def full_evaluation(self) -> List[PartitionTiming]:
        """Cold full recompute under the current state (the oracle the
        incremental path must match bit-for-bit).  Does not mutate any
        incremental state."""
        by_index = self._evaluate_grouped(self.cplan.nodes)
        return [by_index[i] for i in range(len(self.cplan.nodes))]

    def timing_of(self, kind: str, pipeline: int, order: int):
        rows = (
            self.cplan.little_by_pipe
            if kind == "little"
            else self.cplan.big_by_pipe
        )
        return self.timings[rows[pipeline][order].index]

    def busy_cycles(self):
        """Per-pipeline busy sums from the current timings."""
        little = [
            sum(self.timings[n.index].total_cycles for n in row)
            for row in self.cplan.little_by_pipe
        ]
        big = [
            sum(self.timings[n.index].total_cycles for n in row)
            for row in self.cplan.big_by_pipe
        ]
        return little, big
