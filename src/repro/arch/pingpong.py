"""Cycle-level simulator of the Little pipeline's Ping-Pong Buffer (Fig. 6).

Dense partitions touch most source vertices, so the Little pipeline simply
streams the partition's source-property range into on-chip buffers in burst
mode (one 512-bit block per cycle) while the Scatter PEs consume properties
from the other buffer — overlapping fetch and process.  The simulator
models:

* **burst filling** at one block per cycle, buffer side by buffer side;
* **read/write index synchronisation** — an edge set stalls until the block
  it needs has been filled;
* **jump access** — when the next block the pipeline needs lies beyond the
  current buffer segment, the write index jumps forward, skipping whole
  unneeded segments (avoids redundant fetches on partial-range partitions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import PipelineConfig
from repro.hbm.channel import HbmChannelModel


@dataclass(frozen=True)
class PingPongStats:
    """Counters exposed for the jump-access ablation."""

    num_edges: int
    num_sets: int
    blocks_fetched: int
    blocks_skipped: int
    span_blocks: int

    @property
    def span_fraction_fetched(self) -> float:
        """Fraction of the source span actually streamed (jump access
        skips the rest)."""
        return self.blocks_fetched / max(self.span_blocks, 1)


class PingPongBufferSim:
    """Timing model of vertex-property access in the Little pipeline."""

    def __init__(self, config: PipelineConfig, channel: HbmChannelModel):
        self.config = config
        self.channel = channel

    def access_ready_times(self, src: np.ndarray):
        """Per-set cycle at which source properties become available.

        ``src`` must be ascending (COO invariant).  Returns ``(ready,
        stats)`` in the same shape as the Vertex Loader simulator, so the
        Big/Little pipeline simulators share their outer loop.
        """
        fill_at_set, stats = self.access_structure(src)
        if fill_at_set.size == 0:
            return fill_at_set, stats
        # Adding the channel latency after the per-set gather is bitwise
        # equal to adding it before (same float64 operands either way) —
        # the split is what lets the compiled core reuse the structure
        # across channel-parameter changes.
        return fill_at_set + self.channel.base_latency(), stats

    def access_structure(self, src: np.ndarray):
        """Channel-independent part of :meth:`access_ready_times`.

        Returns ``(fill_at_set, stats)`` where ``fill_at_set[i]`` is the
        burst-relative cycle at which the last block edge set ``i`` needs
        finishes filling.  Adding the channel's base latency yields the
        ready times; everything computed here depends only on the edge
        content and the frozen :class:`PipelineConfig`, so the compiled
        simulation core extracts it once and re-evaluates cheaply under
        new channel parameters.
        """
        if src.size == 0:
            return np.zeros(0), PingPongStats(0, 0, 0, 0, 0)

        k = self.config.edges_per_set
        src = np.asarray(src, dtype=np.int64)
        num_sets = -(-src.size // k)
        # Last (largest) source block needed by each set.
        last_of_set = np.minimum(
            np.arange(1, num_sets + 1) * k - 1, src.size - 1
        )
        blocks = src // self.config.vertices_per_block
        base = blocks[0]
        rel = blocks - base
        span = int(rel[-1] + 1)

        seg_blocks = self.config.pingpong_blocks_per_side
        segments = rel // seg_blocks
        if self.config.jump_access:
            needed_segments = np.unique(segments)
        else:
            needed_segments = np.arange(segments[-1] + 1)

        # fill_pos[block] = cycle (from burst start) its fill completes:
        # whole needed segments stream back-to-back at 1 block/cycle.
        seg_rank = np.searchsorted(needed_segments, segments)
        fill_pos = seg_rank * seg_blocks + (rel - segments * seg_blocks) + 1.0
        fill_at_set = fill_pos[last_of_set]

        fetched = int(needed_segments.size) * seg_blocks
        # The final segment is only streamed up to the last needed block.
        tail_waste = seg_blocks - (int(rel[-1]) % seg_blocks + 1)
        fetched -= tail_waste
        fetched = min(fetched, span)
        stats = PingPongStats(
            num_edges=int(src.size),
            num_sets=num_sets,
            blocks_fetched=fetched,
            blocks_skipped=max(span - fetched, 0),
            span_blocks=span,
        )
        return fill_at_set, stats
