"""Micro-architecture: platforms, pipeline configs, cycle-level simulators.

Implements the hardware side of the paper: the Alveo platform models
(Table II), the per-module resource/frequency cost model (Fig. 11), and
cycle-level simulators for every module of Fig. 3 — the Vertex Loader
(Fig. 5), the Ping-Pong Buffer (Fig. 6), the butterfly Data Router, the
Scatter/Gather PEs, Big and Little pipelines, the Mergers, the Apply module
and the Writer.
"""

from repro.arch.platform import PLATFORMS, FpgaPlatform, get_platform
from repro.arch.config import (
    AcceleratorConfig,
    PipelineConfig,
    default_pipeline_config,
)
from repro.arch.resources import (
    ResourceVector,
    ResourceReport,
    accelerator_resources,
    big_pipeline_resources,
    frequency_mhz,
    little_pipeline_resources,
)
from repro.arch.vertex_loader import VertexLoaderSim, VertexLoaderStats
from repro.arch.pingpong import PingPongBufferSim, PingPongStats
from repro.arch.router import ButterflyRouter
from repro.arch.pe import GatherPeArray, ScatterPeArray
from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.arch.timing import PartitionTiming
from repro.arch.merger import merger_cycles, merge_buffers
from repro.arch.apply import ApplySim
from repro.arch.writer import WriterSim
from repro.arch.trace import ExecutionTrace, TraceEvent, trace_plan

__all__ = [
    "PLATFORMS",
    "FpgaPlatform",
    "get_platform",
    "AcceleratorConfig",
    "PipelineConfig",
    "default_pipeline_config",
    "ResourceVector",
    "ResourceReport",
    "accelerator_resources",
    "big_pipeline_resources",
    "frequency_mhz",
    "little_pipeline_resources",
    "VertexLoaderSim",
    "VertexLoaderStats",
    "PingPongBufferSim",
    "PingPongStats",
    "ButterflyRouter",
    "GatherPeArray",
    "ScatterPeArray",
    "BigPipelineSim",
    "LittlePipelineSim",
    "PartitionTiming",
    "merger_cycles",
    "merge_buffers",
    "ApplySim",
    "WriterSim",
    "ExecutionTrace",
    "TraceEvent",
    "trace_plan",
]
