"""HBM-enabled FPGA platform models (Table II).

Encodes the two evaluation boards, Alveo U280 and Alveo U50, with the
resource capacities, HBM channel/port counts and power figures the paper
uses, plus the per-application parameters of Sec. VI-A (buffered vertices,
pipeline counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hbm.ports import max_pipelines


@dataclass(frozen=True)
class FpgaPlatform:
    """Static description of one HBM-enabled FPGA card."""

    name: str
    luts: int
    ffs: int
    bram36: int
    urams: int
    slrs: int
    bandwidth_gbs: float
    num_channels: int
    num_ports: int
    tdp_watts: float
    #: measured power during execution (Table VI gives 35 W for U280)
    active_watts: float
    #: destination vertices each Gather PE buffers (Sec. VI-A)
    gather_buffer_vertices: int

    @property
    def max_total_pipelines(self) -> int:
        """Pipelines the port budget allows (14 on U280, 12 on U50)."""
        return max_pipelines(self.num_channels, self.num_ports)

    @property
    def channel_bandwidth_gbs(self) -> float:
        """Peak bandwidth of a single HBM channel."""
        return self.bandwidth_gbs / self.num_channels


#: Registry of the evaluation platforms, keyed by short name.
PLATFORMS: Dict[str, FpgaPlatform] = {
    "U280": FpgaPlatform(
        name="Alveo U280",
        luts=1_304_000,
        ffs=2_607_000,
        bram36=2_016,
        urams=960,
        slrs=3,
        bandwidth_gbs=460.0,
        num_channels=32,
        num_ports=32,
        tdp_watts=225.0,
        active_watts=35.0,
        gather_buffer_vertices=65_536,
    ),
    "U50": FpgaPlatform(
        name="Alveo U50",
        luts=872_000,
        ffs=1_743_000,
        bram36=1_344,
        urams=640,
        slrs=2,
        bandwidth_gbs=316.0,
        num_channels=32,
        num_ports=28,
        tdp_watts=70.0,
        active_watts=30.0,
        gather_buffer_vertices=32_768,
    ),
}


def get_platform(name: str) -> FpgaPlatform:
    """Look up a platform by short name ("U280" or "U50")."""
    key = name.upper()
    if key not in PLATFORMS:
        raise KeyError(f"unknown platform {name!r}; available: {sorted(PLATFORMS)}")
    return PLATFORMS[key]
