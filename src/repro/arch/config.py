"""Pipeline and accelerator configuration records.

A :class:`PipelineConfig` captures the per-pipeline design parameters of
Sec. III / VI-A (PE counts, IIs, buffer sizes, optional-feature toggles for
the ablation benches); an :class:`AcceleratorConfig` is one point of the
design space ReGraph's generator enumerates — ``M`` Little plus ``N`` Big
pipelines on a platform (the "7L7B" labels of Figs. 10-11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.platform import FpgaPlatform
from repro.graph.coo import VERTEX_WORD_BYTES
from repro.hbm.channel import BLOCK_BYTES


@dataclass(frozen=True)
class PipelineConfig:
    """Design parameters shared by Big and Little pipelines."""

    #: Scatter PEs per pipeline (edges processed per cycle); 8 in Sec. VI-A.
    n_spe: int = 8
    #: Gather PEs per pipeline; 8 in Sec. VI-A.
    n_gpe: int = 8
    #: Initiation interval of a Scatter PE.
    ii_spe: int = 1
    #: Initiation interval of a Gather PE (URAM shift registers give II=1).
    ii_gpe: int = 1
    #: Destination vertices buffered per Gather PE (platform dependent).
    gather_buffer_vertices: int = 65_536
    #: Total Ping-Pong Buffer size in bytes ("32KB", Sec. VI-A).
    pingpong_bytes: int = 32 * 1024
    #: URAM access width in bytes (Sec. V-C: 64-bit granularity).
    uram_port_bytes: int = 8
    #: Constant partition-switch overhead in cycles (calibrated, Sec. IV-A).
    switch_cycles: float = 2_000.0
    #: Big pipeline: route updates so N_gpe partitions run per execution.
    data_routing: bool = True
    #: Big pipeline: reuse the last requested block in the Vertex Loader.
    last_block_cache: bool = True
    #: Little pipeline: jump access skips unneeded buffer-sized segments.
    jump_access: bool = True

    @property
    def edges_per_set(self) -> int:
        """Edges consumed per cycle-step, equal to the Scatter PE count."""
        return self.n_spe

    @property
    def vertices_per_block(self) -> int:
        """32-bit vertex properties per 512-bit block."""
        return BLOCK_BYTES // VERTEX_WORD_BYTES

    @property
    def pingpong_blocks_per_side(self) -> int:
        """Blocks held by one side (ping or pong) of the buffer."""
        return self.pingpong_bytes // 2 // BLOCK_BYTES

    @property
    def partition_vertices(self) -> int:
        """Destination-interval size ``U`` — one Gather PE's buffer."""
        return self.gather_buffer_vertices

    @property
    def store_cycles(self) -> float:
        """Eq. 2: cycles to write out buffered destination vertices.

        Both pipeline types drain a Gather PE buffer through the URAM port:
        ``max(S_buf / S_ram, S_ram * N_gpe / S_mem)`` for Big and
        ``max(S_buf / S_ram, S_ram / S_mem)`` for Little — numerically equal
        here, but the Big pipeline amortises it over ``N_gpe`` partitions.
        """
        s_buf = self.gather_buffer_vertices * VERTEX_WORD_BYTES
        drain = s_buf / self.uram_port_bytes
        write_big = self.uram_port_bytes * self.n_gpe / BLOCK_BYTES
        return max(drain, write_big)

    @property
    def proc_cycles_per_edge(self) -> float:
        """Eq. 3's compute cost per edge.

        The paper prints ``1 / max(Nspe/IIspe, Ngpe/IIgpe)``; physically
        the *slower* stage backpressures the pipeline, so we implement
        the bottleneck (``min``) form — identical at the paper's
        II = 1 operating point, and the meaningful generalisation when a
        heavier gather UDF pushes II above one.
        """
        rate = min(self.n_spe / self.ii_spe, self.n_gpe / self.ii_gpe)
        return 1.0 / rate

    def for_platform(self, platform: FpgaPlatform) -> "PipelineConfig":
        """Adapt the buffer capacity to a platform (65,536 vs 32,768)."""
        return replace(
            self, gather_buffer_vertices=platform.gather_buffer_vertices
        )


def default_pipeline_config(platform: FpgaPlatform = None) -> PipelineConfig:
    """The Sec. VI-A configuration, adapted to ``platform`` if given."""
    config = PipelineConfig()
    if platform is not None:
        config = config.for_platform(platform)
    return config


@dataclass(frozen=True)
class AcceleratorConfig:
    """One generated accelerator: ``M`` Little + ``N`` Big pipelines."""

    num_little: int
    num_big: int
    pipeline: PipelineConfig = PipelineConfig()

    def __post_init__(self):
        if self.num_little < 0 or self.num_big < 0:
            raise ValueError("pipeline counts must be >= 0")
        if self.num_little + self.num_big == 0:
            raise ValueError("accelerator needs at least one pipeline")

    @property
    def total_pipelines(self) -> int:
        """``M + N``."""
        return self.num_little + self.num_big

    @property
    def label(self) -> str:
        """The paper's combo naming, e.g. ``7L7B``."""
        return f"{self.num_little}L{self.num_big}B"

    @property
    def is_homogeneous(self) -> bool:
        """True for the 0L*B / *L0B reference points of Fig. 10."""
        return self.num_little == 0 or self.num_big == 0
