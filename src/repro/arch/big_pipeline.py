"""Cycle-level simulator of the Big pipeline (Fig. 3d).

Big pipelines handle *sparse* partitions: they tolerate the latency of
inevitable random vertex reads (Vertex Loader) instead of buffering, and
use the Data Router so one execution processes up to ``N_gpe`` partitions,
amortising the partition-switch overhead that would otherwise dominate the
many short sparse tasks.

``execute`` does double duty: it produces the cycle-accurate timing of one
execution *and* (when an app and property array are supplied) the actual
gathered results, so functional correctness and performance come from the
same modelled datapath.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.arch.config import PipelineConfig
from repro.arch.pe import GatherPeArray, ScatterPeArray
from repro.arch.timing import PartitionTiming
from repro.arch.vertex_loader import VertexLoaderSim
from repro.graph.partition import Partition
from repro.hbm.channel import HbmChannelModel
from repro.perf.simcache import (
    config_digest,
    config_digest_prefix,
    get_cache,
    timing_key,
)
from repro.utils.prefix import running_release_times


def _cumcount_sorted(values: np.ndarray) -> np.ndarray:
    """Occurrence index of each element within its run (sorted input)."""
    if values.size == 0:
        return values.copy()
    is_start = np.empty(values.size, dtype=bool)
    is_start[0] = True
    is_start[1:] = values[1:] != values[:-1]
    run_starts = np.flatnonzero(is_start)
    run_id = np.cumsum(is_start) - 1
    return np.arange(values.size) - run_starts[run_id]


def merge_group_edges(partitions: List[Partition]):
    """Merge a group's edge lists back into ascending-source order.

    The host preprocessing *interleaves* the per-partition lists when
    writing a merged group: for a source shared by several partitions,
    edges alternate across partitions instead of forming long
    single-partition runs.  This keeps the Data Router's output lanes
    balanced at FIFO timescales — without it, a hot source's edges
    into one destination interval would serialise its Gather PE.

    Also returns each edge's Gather PE lane (the index of the
    partition owning its destination), which drives the router
    serialisation model.  Pure structure — no channel dependence — so
    the compiled simulation core calls it directly at lowering time.
    """
    src = np.concatenate([p.src for p in partitions])
    dst = np.concatenate([p.dst for p in partitions])
    lanes = np.concatenate(
        [np.full(p.num_edges, i, dtype=np.int64)
         for i, p in enumerate(partitions)]
    )
    rank = np.concatenate(
        [_cumcount_sorted(p.src) for p in partitions]
    )
    weights = None
    if partitions[0].weights is not None:
        weights = np.concatenate([p.weights for p in partitions])
    # Ascending src; ties interleave round-robin across partitions.
    order = np.lexsort((lanes, rank, src))
    return (
        src[order],
        dst[order],
        lanes[order],
        None if weights is None else weights[order],
    )


def routed_gather_structure(partitions: List[Partition], dst: np.ndarray):
    """Per-edge ``(lane, slot)`` of one Big task under router dispatch.

    The structure-extraction hook the compiled functional core calls at
    lowering time, over the *merged* destination order
    (:func:`merge_group_edges`): the same ``searchsorted`` against the
    group's ascending partition bases that the routed
    :class:`~repro.arch.pe.GatherPeArray` performs per execution.
    """
    from repro.arch.pe import routed_dispatch

    bases = np.asarray([p.vertex_lo for p in partitions], dtype=np.int64)
    return routed_dispatch(bases, dst)


#: Router output FIFO depth in edge sets; short occupancy bursts are
#: absorbed, so sustained service tracks the windowed per-lane rate.
ROUTER_FIFO_SETS = 16


def gather_service_cycles(
    lanes: np.ndarray, num_lanes: int, config: PipelineConfig
) -> np.ndarray:
    """Per-set Gather stage service cycles under Data Router dispatch.

    Each Gather PE owns one partition of the group and absorbs one
    tuple per cycle (II = 1), so sustained throughput is bounded by
    the busiest lane's tuple rate.  The router's per-lane FIFOs absorb
    transient bursts, hence the rate is measured over a FIFO-deep
    window rather than per set.  Balanced sparse groups reach one set
    per cycle; a group dominated by one dense partition serialises on
    its PE — the micro-architectural reason Little pipelines win dense
    partitions (Fig. 9).  Channel-independent, so the compiled core
    evaluates it once per lowered node.
    """
    k = config.edges_per_set
    num_sets = -(-lanes.size // k)
    floor = config.edges_per_set * config.proc_cycles_per_edge
    if num_sets == 0:
        return np.zeros(0)
    window = min(ROUTER_FIFO_SETS, num_sets)
    # One bincount over flattened (set, lane) pairs replaces the old
    # per-lane masking loop: counts[s, l] = edges of lane l in set s.
    # The old code's -1 padding never matched a lane, so simply not
    # counting the pad is equivalent.
    set_idx = np.arange(lanes.size, dtype=np.int64) // k
    counts = np.bincount(
        set_idx * num_lanes + lanes,
        minlength=num_sets * num_lanes,
    ).reshape(num_sets, num_lanes).astype(np.float64)
    csum = np.vstack(
        [np.zeros((1, num_lanes)), np.cumsum(counts, axis=0)]
    )
    rate = np.empty((num_sets, num_lanes))
    rate[window - 1:] = (csum[window:] - csum[:-window]) / window
    # Head of stream: average over what has arrived so far.
    head = np.arange(1, window, dtype=np.float64)[:, None]
    rate[: window - 1] = csum[1:window] / head
    busiest = rate.max(axis=1)
    return np.maximum(busiest, floor)


class BigPipelineSim:
    """One Big pipeline: Burst Read + Vertex Loader + Router + PEs."""

    def __init__(self, config: PipelineConfig, channel: HbmChannelModel):
        self.config = config
        self.channel = channel
        self.loader = VertexLoaderSim(config, channel)
        self.scatter_pes = ScatterPeArray(config.n_spe)
        #: Fault-injection hook (:mod:`repro.faults`); None = fault-free.
        self.fault_site = None
        #: Timing-cache key prefix: binds cached results to this exact
        #: pipeline + channel configuration (both frozen).
        self._cache_prefix = config_digest_prefix(
            "big", config, channel.params
        )
        #: Staleness tag for the shared (tier-2) cache: entries written
        #: under a different configuration digest are never served.
        self._config_digest = config_digest(self._cache_prefix)

    _cumcount_sorted = staticmethod(_cumcount_sorted)

    def _merge_edges(self, partitions: List[Partition]):
        """See :func:`merge_group_edges` (kept as a method for callers)."""
        return merge_group_edges(partitions)

    def execute(
        self,
        partitions: List[Partition],
        app=None,
        src_props: Optional[np.ndarray] = None,
    ) -> Tuple[PartitionTiming, Optional[list]]:
        """Run one execution over up to ``N_gpe`` partitions.

        Returns ``(timing, outputs)`` where ``outputs`` is a list of
        ``(vertex_lo, vertex_hi, gathered_buffer)`` per partition, or
        ``None`` when running timing-only.
        """
        if not partitions:
            raise ValueError("execute needs at least one partition")
        if len(partitions) > self.config.n_gpe:
            raise ValueError(
                f"data routing covers at most {self.config.n_gpe} "
                f"partitions per execution, got {len(partitions)}"
            )
        if not self.config.data_routing and len(partitions) > 1:
            raise ValueError(
                "data routing is disabled; schedule one partition per "
                "execution"
            )

        if self.fault_site is not None:
            self.fault_site.on_task("big")
        src, dst, lanes, weights = self._merge_edges(partitions)
        edge_bytes = 8 if weights is None else 12
        timing = self._timing(src, lanes, len(partitions), edge_bytes)

        outputs = None
        if app is not None:
            if src_props is None:
                raise ValueError("functional execution needs src_props")
            outputs = self._functional(partitions, src, dst, weights, app, src_props)
            if self.fault_site is not None:
                outputs = [
                    (lo, hi, self.fault_site.filter_buffer(buffer))
                    for lo, hi, buffer in outputs
                ]
        return timing, outputs

    #: Router output FIFO depth in edge sets (module constant mirrored
    #: for existing callers/tests).
    ROUTER_FIFO_SETS = ROUTER_FIFO_SETS

    def _gather_service(self, lanes: np.ndarray, num_lanes: int) -> np.ndarray:
        """See :func:`gather_service_cycles` (kept as a method)."""
        return gather_service_cycles(lanes, num_lanes, self.config)

    def _gather_service_reference(
        self, lanes: np.ndarray, num_lanes: int
    ) -> np.ndarray:
        """Original per-lane loop formulation of :meth:`_gather_service`.

        Kept as the oracle for the vectorisation-equivalence regression
        test (tests/test_arch_pipelines.py); not called on any hot path.
        """
        k = self.config.edges_per_set
        num_sets = -(-lanes.size // k)
        padded = np.full(num_sets * k, -1, dtype=np.int64)
        padded[: lanes.size] = lanes
        per_set = padded.reshape(num_sets, k)
        window = min(self.ROUTER_FIFO_SETS, num_sets)
        busiest = np.zeros(num_sets)
        for lane in range(num_lanes):
            counts = (per_set == lane).sum(axis=1).astype(np.float64)
            csum = np.concatenate(([0.0], np.cumsum(counts)))
            rate = np.empty(num_sets)
            rate[window - 1:] = (csum[window:] - csum[:-window]) / window
            head = np.arange(1, window, dtype=np.float64)
            rate[: window - 1] = csum[1:window] / head
            busiest = np.maximum(busiest, rate)
        floor = self.config.edges_per_set * self.config.proc_cycles_per_edge
        return np.maximum(busiest, floor)

    def _timing(
        self,
        src: np.ndarray,
        lanes: np.ndarray,
        num_lanes: int,
        edge_bytes: int = 8,
    ) -> PartitionTiming:
        """Memoized per-execution cycle count.

        The timing is a pure function of the merged edge content, the
        lane assignment and the frozen pipeline/channel configuration,
        so results are shared through the content-addressed cache
        across iterations, retries, sweeps and processes.  Active
        timing faults make the result injector-state-dependent; those
        calls bypass the cache entirely (never read, never written),
        mirroring ``SystemSimulator._timing_pass``.
        """
        cache = get_cache()
        if not cache.enabled:
            return self._compute_timing(src, lanes, num_lanes, edge_bytes)
        if (
            self.fault_site is not None
            and self.fault_site.timing_faults_active()
        ):
            cache.note_bypass()
            return self._compute_timing(src, lanes, num_lanes, edge_bytes)
        key = timing_key(
            self._cache_prefix, edge_bytes, (src, lanes), extra=(num_lanes,)
        )
        timing = cache.get(key, self._config_digest)
        if timing is None:
            timing = self._compute_timing(src, lanes, num_lanes, edge_bytes)
            cache.put(key, timing, self._config_digest)
        return timing

    def _compute_timing(
        self,
        src: np.ndarray,
        lanes: np.ndarray,
        num_lanes: int,
        edge_bytes: int = 8,
    ) -> PartitionTiming:
        """Per-execution cycle count from the modelled datapath.

        ``edge_bytes`` sets the sequential edge-stream rate: one 512-bit
        block per cycle carries ``64 / edge_bytes`` edges, so weighted
        records (12 B) slow the Burst Read to 2/3 speed.
        """
        num_edges = int(src.size)
        if num_edges == 0:
            return PartitionTiming(
                compute_cycles=0.0,
                store_cycles=self.config.store_cycles,
                switch_cycles=self.config.switch_cycles,
                num_edges=0,
                num_sets=0,
            )
        ready_v, _stats = self.loader.access_ready_times(src)
        num_sets = ready_v.size
        # Edge sets stream at the block rate after the burst opens.
        set_cycles = (
            self.config.edges_per_set * edge_bytes / 64.0
        )
        ready_e = (
            np.arange(1, num_sets + 1, dtype=np.float64) * set_cycles
            + self.channel.base_latency()
        )
        service = self._gather_service(lanes, num_lanes)
        completion = running_release_times(
            np.maximum(ready_e, ready_v), service
        )
        return PartitionTiming(
            compute_cycles=float(completion[-1]),
            store_cycles=self.config.store_cycles,
            switch_cycles=self.config.switch_cycles,
            num_edges=num_edges,
            num_sets=num_sets,
        )

    # ------------------------------------------------------------------
    def _functional(self, partitions, src, dst, weights, app, src_props):
        """Execute the UDFs through the routed Gather PE array."""
        gpes = GatherPeArray(
            self.config.n_gpe,
            self.config.partition_vertices,
            routed=True,
        )
        gpes.reset(app, [p.vertex_lo for p in partitions])
        if src.size:
            updates = self.scatter_pes.process(app, src_props[src], weights)
            gpes.absorb(app, dst, updates)
        buffers = gpes.drain()
        return [
            (p.vertex_lo, p.vertex_hi, buffers[i][: p.num_dst_vertices])
            for i, p in enumerate(partitions)
        ]

    def loader_stats(self, partitions: List[Partition]):
        """Vertex Loader counters for a group (ablation instrumentation)."""
        src, _dst, _lanes, _w = self._merge_edges(partitions)
        _ready, stats = self.loader.access_ready_times(src)
        return stats
