"""Execution tracing: per-pipeline timelines and utilisation reports.

Turns a scheduling plan plus the pipeline simulators into a task-level
timeline (which pipeline ran which partition slice, when) and renders a
text Gantt chart — the tooling one uses to see *why* a pipeline
combination balances or does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.hbm.channel import HbmChannelModel
from repro.sched.plan import SchedulingPlan


@dataclass(frozen=True)
class TraceEvent:
    """One task execution on one pipeline.

    ``partition_indices`` and ``num_edges`` tie the event back to the
    scheduling plan, which is what lets the conformance checker
    (:mod:`repro.check.invariants`) prove coverage — every planned task
    executed exactly once — and bound the implied channel bandwidth.
    """

    pipeline: str
    task_label: str
    start_cycle: float
    end_cycle: float
    #: destination-interval partition indices this task covered
    partition_indices: Tuple[int, ...] = field(default=())
    #: edges the task streamed (0 when unknown, e.g. hand-built events)
    num_edges: int = 0

    @property
    def duration(self) -> float:
        """Busy cycles of this task."""
        return self.end_cycle - self.start_cycle


@dataclass
class ExecutionTrace:
    """A full iteration's timeline across all pipelines."""

    events: List[TraceEvent]

    @property
    def makespan(self) -> float:
        """Cycle at which the last pipeline finishes."""
        return max((e.end_cycle for e in self.events), default=0.0)

    def pipeline_busy(self) -> dict:
        """Total busy cycles per pipeline."""
        busy: dict = {}
        for event in self.events:
            busy[event.pipeline] = busy.get(event.pipeline, 0.0) + event.duration
        return busy

    def utilization(self) -> dict:
        """Busy fraction of the makespan per pipeline."""
        span = self.makespan
        if span == 0:
            return {}
        return {k: v / span for k, v in self.pipeline_busy().items()}

    def render_gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart: one row per pipeline, '#' = busy."""
        span = self.makespan
        if span == 0:
            return "(empty trace)"
        rows = []
        pipelines = sorted({e.pipeline for e in self.events})
        for pipe in pipelines:
            cells = [" "] * width
            for event in self.events:
                if event.pipeline != pipe:
                    continue
                lo = int(event.start_cycle / span * (width - 1))
                hi = max(int(event.end_cycle / span * (width - 1)), lo + 1)
                for i in range(lo, min(hi, width)):
                    cells[i] = "#"
            busy = self.pipeline_busy().get(pipe, 0.0)
            rows.append(f"{pipe:>10} |{''.join(cells)}| {busy:9.0f} cyc")
        rows.append(f"{'':>10}  makespan = {span:.0f} cycles")
        return "\n".join(rows)


def trace_plan(
    plan: SchedulingPlan,
    channel: Optional[HbmChannelModel] = None,
) -> ExecutionTrace:
    """One iteration of a plan with every task's busy window recorded.

    Fault-free traces are synthesized from the compiled engine's node
    timings when the compiled core is enabled
    (:mod:`repro.compiled.trace` — bit-identical events, no
    re-simulation); channels carrying a live fault site always take the
    interpreted walk, whose timings legitimately depend on injector
    state the compiled memo must not capture.
    """
    channel = channel or HbmChannelModel()
    if channel.fault_site is None:
        from repro.compiled import compiled_enabled

        if compiled_enabled():
            from repro.compiled.trace import synthesize_trace

            return synthesize_trace(plan, channel)
    from repro.compiled.evaluate import _STATS

    _STATS["traces_interpreted"] += 1
    config = plan.accelerator.pipeline
    little = LittlePipelineSim(config, channel)
    big = BigPipelineSim(config, channel)
    events: List[TraceEvent] = []

    for pipe_idx, tasks in enumerate(plan.little_tasks):
        clock = 0.0
        for task_idx, task in enumerate(tasks):
            timing, _ = little.execute(task.partition)
            events.append(
                TraceEvent(
                    pipeline=f"little[{pipe_idx}]",
                    task_label=f"p{task.partition.index}.{task_idx}",
                    start_cycle=clock,
                    end_cycle=clock + timing.total_cycles,
                    partition_indices=(task.partition.index,),
                    num_edges=task.num_edges,
                )
            )
            clock += timing.total_cycles
    for pipe_idx, tasks in enumerate(plan.big_tasks):
        clock = 0.0
        for task_idx, task in enumerate(tasks):
            timing, _ = big.execute(task.partitions)
            label = "+".join(f"p{p.index}" for p in task.partitions[:3])
            if len(task.partitions) > 3:
                label += f"+{len(task.partitions) - 3}"
            events.append(
                TraceEvent(
                    pipeline=f"big[{pipe_idx}]",
                    task_label=f"{label}.{task_idx}",
                    start_cycle=clock,
                    end_cycle=clock + timing.total_cycles,
                    partition_indices=tuple(
                        p.index for p in task.partitions
                    ),
                    num_edges=task.num_edges,
                )
            )
            clock += timing.total_cycles
    return ExecutionTrace(events=events)
