"""Resource and frequency model (reproduces Fig. 11 and Table I context).

Per-module FPGA resource costs, calibrated against the utilisation numbers
the paper reports on U280:

* the best-performing mixed configs (e.g. 7L7B) use ~30% of LUTs and <50%
  of BRAMs;
* URAM sits constantly at ~96% (it holds the Gather PE vertex buffers and
  fixes the partition size);
* more Little pipelines -> more BRAM (Ping-Pong Buffers), fewer LUTs;
  more Big pipelines -> more LUTs/registers (Vertex Loader + Data Router);
* implementation frequency stays above 210 MHz thanks to the SLR-crossing
  optimisations.

The numbers are per-module estimates, not synthesis results, but they are
constrained to reproduce every qualitative statement of Sec. VI-D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import FpgaPlatform
from repro.graph.coo import VERTEX_WORD_BYTES

#: Bytes of storage per URAM block (4K x 72b, data portion used as 64-bit).
URAM_BYTES = 32 * 1024

#: Bytes of storage per BRAM36 block.
BRAM36_BYTES = 4 * 1024


@dataclass(frozen=True)
class ResourceVector:
    """Resource usage of a module or design (absolute counts)."""

    lut: float = 0.0
    ff: float = 0.0
    bram36: float = 0.0
    uram: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram36=self.bram36 + other.bram36,
            uram=self.uram + other.uram,
            dsp=self.dsp + other.dsp,
        )

    def scale(self, factor: float) -> "ResourceVector":
        """Multiply every resource by ``factor`` (e.g. instance count)."""
        return ResourceVector(
            lut=self.lut * factor,
            ff=self.ff * factor,
            bram36=self.bram36 * factor,
            uram=self.uram * factor,
            dsp=self.dsp * factor,
        )


# Per-module base costs (one instance, Sec. VI-A parameters).
BURST_READ = ResourceVector(lut=1_800, ff=2_600, bram36=4)
VERTEX_LOADER = ResourceVector(lut=9_500, ff=14_000, bram36=4)
DATA_ROUTER_PER_SWITCH = ResourceVector(lut=450, ff=700)
SCATTER_PE = ResourceVector(lut=650, ff=900, dsp=2)
GATHER_PE = ResourceVector(lut=800, ff=1_100, dsp=1)
MERGER_TREE = ResourceVector(lut=2_400, ff=3_400, bram36=6)
APPLY_MODULE = ResourceVector(lut=14_000, ff=20_000, bram36=16, dsp=16, uram=32)
WRITER_MODULE = ResourceVector(lut=6_000, ff=9_000, bram36=8)
PORT_WRAPPER = ResourceVector(lut=1_200, ff=1_800, bram36=2)
PLATFORM_SHELL = ResourceVector(lut=18_000, ff=26_000, bram36=24)


def _gather_buffer_urams(config: PipelineConfig) -> float:
    """URAM blocks needed by one Gather PE's destination buffer."""
    buffer_bytes = config.gather_buffer_vertices * VERTEX_WORD_BYTES
    return -(-buffer_bytes // URAM_BYTES)


def _pingpong_brams(config: PipelineConfig) -> float:
    """BRAM36 blocks of the Ping-Pong Buffer, duplicated per Scatter PE.

    Each side needs a cascade of BRAMs for the 512-bit port (Fig. 6), and
    ping + pong sides are allocated for every Scatter PE.
    """
    per_side = max(-(-config.pingpong_bytes // 2 // BRAM36_BYTES), 8)
    return 2 * per_side * config.n_spe / 2  # paired PEs share a cascade


def little_pipeline_resources(config: PipelineConfig) -> ResourceVector:
    """Resources of one Little pipeline."""
    pes = SCATTER_PE.scale(config.n_spe) + GATHER_PE.scale(config.n_gpe)
    pingpong = ResourceVector(
        lut=3_200, ff=4_600, bram36=_pingpong_brams(config)
    )
    uram = ResourceVector(uram=_gather_buffer_urams(config) * config.n_gpe)
    return (
        BURST_READ
        + pingpong
        + pes
        + MERGER_TREE
        + PORT_WRAPPER
        + uram
    )


def big_pipeline_resources(config: PipelineConfig) -> ResourceVector:
    """Resources of one Big pipeline."""
    pes = SCATTER_PE.scale(config.n_spe) + GATHER_PE.scale(config.n_gpe)
    switches = (config.n_gpe // 2) * max(int(np.log2(config.n_gpe)), 1)
    router = DATA_ROUTER_PER_SWITCH.scale(switches) + ResourceVector(
        lut=1_500, ff=2_200, bram36=8
    )
    uram = ResourceVector(uram=_gather_buffer_urams(config) * config.n_gpe)
    return (
        BURST_READ
        + VERTEX_LOADER
        + router
        + pes
        + PORT_WRAPPER
        + uram
    )


def accelerator_resources(accel: AcceleratorConfig) -> ResourceVector:
    """Total resources of an ``M`` Little + ``N`` Big accelerator."""
    little = little_pipeline_resources(accel.pipeline).scale(accel.num_little)
    big = big_pipeline_resources(accel.pipeline).scale(accel.num_big)
    return little + big + APPLY_MODULE + WRITER_MODULE + PLATFORM_SHELL


@dataclass(frozen=True)
class ResourceReport:
    """Utilisation fractions of a design on a platform, plus frequency."""

    lut_util: float
    ff_util: float
    bram_util: float
    uram_util: float
    frequency_mhz: float

    def feasible(self, max_lut: float = 0.8) -> bool:
        """Whether the design places/routes: LUTs under the practical cap
        (Table I footnote: "maximal LUT usage in practice is less than
        80%") and memories within capacity."""
        return (
            self.lut_util <= max_lut
            and self.bram_util <= 1.0
            and self.uram_util <= 1.0
        )


def frequency_mhz(
    lut_util: float,
    num_slrs: int,
    base_mhz: float = 287.0,
) -> float:
    """Deterministic implementation-frequency estimate.

    Congestion degrades timing roughly linearly once utilisation passes
    ~25%, and every SLR crossing costs a few MHz; the SLR-aware merge-tree
    optimisations keep ReGraph designs above 210 MHz (Sec. VI-D).
    """
    congestion = max(lut_util - 0.25, 0.0) * 90.0
    slr_penalty = 6.0 * max(num_slrs - 1, 0)
    return float(np.clip(base_mhz - congestion - slr_penalty, 180.0, 300.0))


def report(accel: AcceleratorConfig, platform: FpgaPlatform) -> ResourceReport:
    """Utilisation + frequency of an accelerator on a platform."""
    total = accelerator_resources(accel)
    lut_util = total.lut / platform.luts
    return ResourceReport(
        lut_util=lut_util,
        ff_util=total.ff / platform.ffs,
        bram_util=total.bram36 / platform.bram36,
        uram_util=total.uram / platform.urams,
        frequency_mhz=frequency_mhz(lut_util, platform.slrs),
    )
