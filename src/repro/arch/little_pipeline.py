"""Cycle-level simulator of the Little pipeline (Fig. 3a).

Little pipelines handle *dense* partitions: most source vertices get
touched anyway, so the Ping-Pong Buffer streams the whole source-property
range in burst mode and overlaps fetching with edge processing — no
latency-tolerant machinery, no Data Router.  Update tuples are statically
dispatched to the Gather PEs, whose replicated buffers a Merger combines
after the partition drains.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.arch.config import PipelineConfig
from repro.arch.merger import merge_buffers, merger_cycles
from repro.arch.pe import GatherPeArray, ScatterPeArray
from repro.arch.pingpong import PingPongBufferSim
from repro.arch.timing import PartitionTiming
from repro.graph.partition import Partition
from repro.hbm.channel import HbmChannelModel
from repro.perf.simcache import (
    config_digest,
    config_digest_prefix,
    get_cache,
    timing_key,
)
from repro.utils.prefix import running_release_times


def static_gather_structure(config: PipelineConfig, partition: Partition):
    """Per-edge ``(pe, slot)`` of one Little task under static dispatch.

    The structure-extraction hook the compiled functional core calls at
    lowering time: channel- and property-independent, and byte-for-byte
    the destinations :meth:`LittlePipelineSim._functional` feeds its
    :class:`~repro.arch.pe.GatherPeArray`.
    """
    from repro.arch.pe import static_dispatch

    return static_dispatch(config.n_gpe, partition.dst, partition.vertex_lo)


class LittlePipelineSim:
    """One Little pipeline: Burst Read + Ping-Pong Buffer + PEs + Merger."""

    def __init__(self, config: PipelineConfig, channel: HbmChannelModel):
        self.config = config
        self.channel = channel
        self.pingpong = PingPongBufferSim(config, channel)
        self.scatter_pes = ScatterPeArray(config.n_spe)
        #: Fault-injection hook (:mod:`repro.faults`); None = fault-free.
        self.fault_site = None
        #: Timing-cache key prefix: binds cached results to this exact
        #: pipeline + channel configuration (both frozen).
        self._cache_prefix = config_digest_prefix(
            "little", config, channel.params
        )
        #: Staleness tag for the shared (tier-2) cache: entries written
        #: under a different configuration digest are never served.
        self._config_digest = config_digest(self._cache_prefix)

    def execute(
        self,
        partition: Partition,
        app=None,
        src_props: Optional[np.ndarray] = None,
    ) -> Tuple[PartitionTiming, Optional[tuple]]:
        """Run one partition (or sub-partition slice).

        Returns ``(timing, output)`` where ``output`` is
        ``(vertex_lo, vertex_hi, merged_buffer)`` or ``None`` when running
        timing-only.
        """
        if self.fault_site is not None:
            self.fault_site.on_task("little")
        edge_bytes = 8 if partition.weights is None else 12
        timing = self._timing(partition.src, edge_bytes)
        output = None
        if app is not None:
            if src_props is None:
                raise ValueError("functional execution needs src_props")
            output = self._functional(partition, app, src_props)
            if self.fault_site is not None:
                lo, hi, buffer = output
                output = (lo, hi, self.fault_site.filter_buffer(buffer))
        return timing, output

    # ------------------------------------------------------------------
    def _timing(
        self, src: np.ndarray, edge_bytes: int = 8
    ) -> PartitionTiming:
        """Memoized per-partition cycle count.

        Pure function of the partition's source content, the edge width
        and the frozen pipeline/channel configuration — shared through
        the content-addressed cache across iterations, retries, sweeps
        and processes.  Calls under an *active* timing fault bypass the
        cache (never read, never written), mirroring
        ``SystemSimulator._timing_pass``.
        """
        cache = get_cache()
        if not cache.enabled:
            return self._compute_timing(src, edge_bytes)
        if (
            self.fault_site is not None
            and self.fault_site.timing_faults_active()
        ):
            cache.note_bypass()
            return self._compute_timing(src, edge_bytes)
        key = timing_key(self._cache_prefix, edge_bytes, (src,))
        timing = cache.get(key, self._config_digest)
        if timing is None:
            timing = self._compute_timing(src, edge_bytes)
            cache.put(key, timing, self._config_digest)
        return timing

    def _compute_timing(
        self, src: np.ndarray, edge_bytes: int = 8
    ) -> PartitionTiming:
        """Per-partition cycle count from the modelled datapath.

        ``edge_bytes`` sets the edge-stream rate (weighted records slow
        the Burst Read, exactly as in the Big pipeline).
        """
        store = self.config.store_cycles + merger_cycles(self.config.n_gpe)
        num_edges = int(src.size)
        if num_edges == 0:
            return PartitionTiming(
                compute_cycles=0.0,
                store_cycles=store,
                switch_cycles=self.config.switch_cycles,
                num_edges=0,
                num_sets=0,
            )
        ready_v, _stats = self.pingpong.access_ready_times(src)
        num_sets = ready_v.size
        set_cycles = self.config.edges_per_set * edge_bytes / 64.0
        ready_e = (
            np.arange(1, num_sets + 1, dtype=np.float64) * set_cycles
            + self.channel.base_latency()
        )
        service = np.full(
            num_sets,
            self.config.edges_per_set * self.config.proc_cycles_per_edge,
        )
        completion = running_release_times(
            np.maximum(ready_e, ready_v), service
        )
        return PartitionTiming(
            compute_cycles=float(completion[-1]),
            store_cycles=store,
            switch_cycles=self.config.switch_cycles,
            num_edges=num_edges,
            num_sets=num_sets,
        )

    # ------------------------------------------------------------------
    def _functional(self, partition: Partition, app, src_props):
        """Execute the UDFs through statically-dispatched Gather PEs."""
        gpes = GatherPeArray(
            self.config.n_gpe,
            self.config.partition_vertices,
            routed=False,
        )
        gpes.reset(app, partition.vertex_lo)
        if partition.num_edges:
            updates = self.scatter_pes.process(
                app, src_props[partition.src], partition.weights
            )
            gpes.absorb(app, partition.dst, updates)
        merged = merge_buffers(app, gpes.drain())
        return (
            partition.vertex_lo,
            partition.vertex_hi,
            merged[: partition.num_dst_vertices],
        )

    def pingpong_stats(self, partition: Partition):
        """Ping-Pong Buffer counters (jump-access ablation)."""
        _ready, stats = self.pingpong.access_ready_times(partition.src)
        return stats
