"""Writer module simulator (Sec. III-A).

The Writer broadcasts the new vertex properties produced by Apply to every
memory channel so each pipeline reads source properties locally in the next
iteration.  Channels are written in parallel, so the visible cost is one
channel's worth of sequential writes overlapping the Apply stream.
"""

from __future__ import annotations

from repro.graph.coo import VERTEX_WORD_BYTES
from repro.hbm.channel import BLOCK_BYTES, HbmChannelModel


class WriterSim:
    """Timing model of the property broadcast between iterations."""

    def __init__(self, channel: HbmChannelModel):
        self.channel = channel

    def cycles(self, num_vertices: int) -> float:
        """Cycles to stream ``num_vertices`` properties to the channels.

        The broadcast proceeds block-by-block in parallel across channels;
        only the stream-open latency and one channel's block count show.
        """
        if num_vertices <= 0:
            return 0.0
        blocks = -(-num_vertices * VERTEX_WORD_BYTES // BLOCK_BYTES)
        return self.channel.base_latency() + float(blocks)
