"""Little/Big Mergers (Sec. III-C and V-C).

In the Little pipeline all Gather PEs buffer the *same* destination
interval, so after a partition completes a merge tree combines the per-PE
accumulations.  ReGraph implements the merger as a tree of small
free-running kernels that merge within an SLR before crossing to another —
for timing purposes its drain is overlapped with ``C_store`` (Eq. 2) and
only the tree's fill latency remains visible.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Pipeline depth of one 2-to-1 merge kernel (register stages).
MERGE_STAGE_LATENCY = 4.0


def merger_cycles(n_gpe: int) -> float:
    """Visible latency of the merge tree: ``log2(N_gpe)`` stages deep.

    The sustained merge rate matches the URAM drain rate, so only the tree
    fill shows up on top of ``C_store``.
    """
    if n_gpe < 1:
        raise ValueError("n_gpe must be >= 1")
    depth = int(np.ceil(np.log2(max(n_gpe, 2))))
    return depth * MERGE_STAGE_LATENCY


def merge_buffers(app, buffers: List[np.ndarray]) -> np.ndarray:
    """Functionally merge replicated Gather PE buffers with the app UDF.

    A pairwise (tree-shaped) reduction mirrors the hardware merge order;
    for the commutative, associative gather UDFs of the GAS model the
    result equals a flat reduction.
    """
    if not buffers:
        raise ValueError("no buffers to merge")
    level = list(buffers)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(app.gather(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
