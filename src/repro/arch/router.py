"""Multi-stage butterfly Data Router of the Big pipeline (Sec. III-B).

The router dynamically dispatches update tuples from ``N_spe`` Scatter PEs
to the Gather PE whose buffer owns the destination vertex, letting one Big
pipeline execution cover ``N_gpe`` partitions.  A butterfly (Benes-style
log-depth) topology keeps the resource cost at ``O(N log N)`` 2x2 switches
instead of a full crossbar's ``O(N^2)``.

The functional behaviour (tuples reach the right output lane) is what the
pipeline simulator needs; this module also exposes the switch count used by
the resource model and a per-stage occupancy statistic used in tests.
"""

from __future__ import annotations

import numpy as np


class ButterflyRouter:
    """A ``num_lanes``-wide butterfly routing network model."""

    def __init__(self, num_lanes: int):
        if num_lanes < 1 or num_lanes & (num_lanes - 1):
            raise ValueError(
                f"num_lanes must be a power of two, got {num_lanes}"
            )
        self.num_lanes = num_lanes

    @property
    def num_stages(self) -> int:
        """Depth of the network: ``log2(num_lanes)``."""
        return max(int(np.log2(self.num_lanes)), 1)

    @property
    def num_switches(self) -> int:
        """Total 2x2 switch elements: ``(N/2) * log2(N)``."""
        if self.num_lanes == 1:
            return 0
        return (self.num_lanes // 2) * int(np.log2(self.num_lanes))

    def route(self, lane_of: np.ndarray, values: np.ndarray):
        """Deliver ``values`` to per-lane output lists.

        ``lane_of[i]`` selects the output lane of tuple ``i``.  Returns a
        list of arrays, one per output lane, preserving arrival order
        within a lane (the network is non-blocking for distinct outputs and
        serialises conflicts, which only affects timing, not order).
        """
        lane_of = np.asarray(lane_of)
        values = np.asarray(values)
        if lane_of.shape[0] != values.shape[0]:
            raise ValueError("lane_of and values must align")
        if lane_of.size and (lane_of.min() < 0 or lane_of.max() >= self.num_lanes):
            raise ValueError("lane index out of range")
        return [values[lane_of == lane] for lane in range(self.num_lanes)]

    def conflict_factor(self, lane_of: np.ndarray, set_size: int) -> float:
        """Average serialisation per input set caused by output conflicts.

        When several tuples of the same cycle-set target one lane they
        drain over multiple cycles.  Returns the mean of the per-set
        maximum lane occupancy, i.e. the slowdown factor a conflict-prone
        stream would see (1.0 = conflict free).
        """
        lane_of = np.asarray(lane_of)
        if lane_of.size == 0:
            return 1.0
        num_sets = -(-lane_of.size // set_size)
        padded = np.full(num_sets * set_size, -1, dtype=np.int64)
        padded[: lane_of.size] = lane_of
        per_set = padded.reshape(num_sets, set_size)
        worst = np.zeros(num_sets)
        for lane in range(self.num_lanes):
            worst = np.maximum(worst, (per_set == lane).sum(axis=1))
        return float(np.mean(np.maximum(worst, 1.0)))
