"""FPGA power model.

Table VI reports 35 W *measured during execution* on the U280 (vs a
225 W TDP) — the number behind every energy-efficiency claim of
Sec. VI-H.  This module models that measurement instead of hard-coding
it: static leakage + HBM stack power + dynamic logic power scaling with
resource utilisation and clock frequency.  Coefficients are calibrated
so the paper's operating point (a ~30%-LUT design at ~270 MHz with the
full HBM active) lands at 35 W, and the model then extrapolates to other
combinations and to the U50.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.platform import FpgaPlatform
from repro.arch.resources import ResourceReport


@dataclass(frozen=True)
class PowerModelParams:
    """Calibrated power coefficients (watts)."""

    #: die leakage + shell static power.
    static_watts: float = 11.0
    #: HBM stacks: PHY + refresh for the active channels.
    hbm_watts_per_channel: float = 0.42
    #: dynamic logic power per (fraction-of-LUTs x 100 MHz).
    dynamic_watts_per_util_100mhz: float = 13.0


class FpgaPowerModel:
    """Execution-power estimate for a placed design."""

    def __init__(self, params: PowerModelParams = PowerModelParams()):
        self.params = params

    def watts(
        self,
        report: ResourceReport,
        active_channels: int,
        memory_activity: float = 1.0,
    ) -> float:
        """Estimated execution power.

        ``memory_activity`` in [0, 1] scales the HBM term for designs
        that leave channels idle part of the time.
        """
        if not 0.0 <= memory_activity <= 1.0:
            raise ValueError("memory_activity must be within [0, 1]")
        p = self.params
        dynamic = (
            p.dynamic_watts_per_util_100mhz
            * report.lut_util
            * (report.frequency_mhz / 100.0)
        )
        hbm = p.hbm_watts_per_channel * active_channels * memory_activity
        return p.static_watts + dynamic + hbm

    def energy_joules(self, watts: float, seconds: float) -> float:
        """Energy of one run."""
        return watts * seconds

    def gteps_per_watt(self, gteps: float, watts: float) -> float:
        """The Sec. VI-H efficiency metric."""
        if watts <= 0:
            raise ValueError("watts must be > 0")
        return gteps / watts


#: Reference die size the static term is calibrated against (U280 LUTs).
_REFERENCE_LUTS = 1_304_000


def estimated_execution_watts(
    report: ResourceReport,
    platform: FpgaPlatform,
    model: FpgaPowerModel = FpgaPowerModel(),
) -> float:
    """Power of a design driving all of the platform's HBM channels.

    Leakage scales with die size, so the static term is pro-rated by the
    platform's LUT count relative to the U280 calibration point.
    """
    scale = platform.luts / _REFERENCE_LUTS
    params = PowerModelParams(
        static_watts=model.params.static_watts * scale,
        hbm_watts_per_channel=model.params.hbm_watts_per_channel,
        dynamic_watts_per_util_100mhz=(
            model.params.dynamic_watts_per_util_100mhz
        ),
    )
    scaled = FpgaPowerModel(params)
    return scaled.watts(report, active_channels=platform.num_channels)
