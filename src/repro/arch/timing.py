"""Timing records shared by the pipeline simulators."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionTiming:
    """Cycle breakdown of one partition (or partition group) execution.

    Mirrors Eq. 1's structure: the edge-enumeration term, the buffered
    destination-vertex write-out (``C_store``, Eq. 2) and the constant
    partition-switch overhead (``C_const``).
    """

    compute_cycles: float
    store_cycles: float
    switch_cycles: float
    num_edges: int
    num_sets: int

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles for this execution."""
        return self.compute_cycles + self.store_cycles + self.switch_cycles

    @property
    def cycles_per_edge(self) -> float:
        """Average cycles spent per edge, including fixed overheads."""
        return self.total_cycles / max(self.num_edges, 1)

    def scaled(self, factor: float) -> "PartitionTiming":
        """Uniformly scale the cycle counts (used by sensitivity tests)."""
        return PartitionTiming(
            compute_cycles=self.compute_cycles * factor,
            store_cycles=self.store_cycles * factor,
            switch_cycles=self.switch_cycles * factor,
            num_edges=self.num_edges,
            num_sets=self.num_sets,
        )


def combine_timings(timings) -> PartitionTiming:
    """Sum a sequence of :class:`PartitionTiming` into one record."""
    timings = list(timings)
    return PartitionTiming(
        compute_cycles=sum(t.compute_cycles for t in timings),
        store_cycles=sum(t.store_cycles for t in timings),
        switch_cycles=sum(t.switch_cycles for t in timings),
        num_edges=sum(t.num_edges for t in timings),
        num_sets=sum(t.num_sets for t in timings),
    )
