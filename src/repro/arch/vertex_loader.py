"""Cycle-level simulator of the Big pipeline's Vertex Loader (Fig. 5).

The Vertex Loader feeds ``N_spe`` Scatter PEs with source-vertex properties
fetched straight from global memory, tolerating latency instead of caching.
Its two sub-pipelines are modelled:

* the **Request sending pipeline** deduplicates block indices within each
  edge set and against the last block of the previous set (the one-entry
  cache of Fig. 5), then issues at most one memory request per cycle;
* the **Response processing pipeline** releases an edge set to the Scatter
  PEs once the last block the set needs has returned.

Request service uses the channel's outstanding-request window: a request
stream with per-request latency ``L`` sustains one response every
``max(1, L / max_outstanding)`` cycles, plus one full latency of pipeline
fill at the head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import PipelineConfig
from repro.hbm.channel import BLOCK_BYTES, HbmChannelModel
from repro.utils.prefix import running_release_times


@dataclass(frozen=True)
class VertexLoaderStats:
    """Counters exposed for the ablation benches."""

    num_edges: int
    num_sets: int
    requests_issued: int
    requests_saved: int

    @property
    def dedup_ratio(self) -> float:
        """Fraction of would-be requests eliminated by block reuse."""
        total = self.requests_issued + self.requests_saved
        return self.requests_saved / max(total, 1)


@dataclass
class LoaderStructure:
    """Channel-independent request structure of one edge stream.

    Everything here is a pure function of the edge content and the
    frozen :class:`PipelineConfig` — the channel parameters only enter
    when the structure is *evaluated* (request service rates plus the
    base latency), which is what lets the compiled simulation core
    extract the structure once and re-time it cheaply per channel
    variant.
    """

    #: Byte stride between consecutive issued requests (first is 0).
    strides: np.ndarray
    #: Earliest cycle each request can be issued (edge-set arrival).
    arrival: np.ndarray
    #: Index of the releasing request per edge set (-1 = no request).
    last_req_per_set: np.ndarray
    num_sets: int
    stats: VertexLoaderStats


class VertexLoaderSim:
    """Timing model of vertex-property access in the Big pipeline."""

    def __init__(self, config: PipelineConfig, channel: HbmChannelModel):
        self.config = config
        self.channel = channel

    def _pad_to_sets(self, src: np.ndarray) -> np.ndarray:
        """Pad the source array so it splits into whole edge sets."""
        k = self.config.edges_per_set
        remainder = src.size % k
        if remainder == 0:
            return src
        return np.concatenate((src, np.repeat(src[-1], k - remainder)))

    def access_ready_times(self, src: np.ndarray):
        """Per-set cycle at which source properties become available.

        Parameters
        ----------
        src:
            Ascending source vertex IDs of the partition's edges.

        Returns
        -------
        (ready, stats):
            ``ready[i]`` is the earliest cycle edge set ``i`` can enter the
            Scatter PEs; ``stats`` counts issued vs deduplicated requests.
        """
        s = self.access_structure(src)
        if s.num_sets == 0:
            return np.zeros(0), s.stats
        service = self.channel.effective_request_cycles(s.strides)
        response = (
            running_release_times(s.arrival, service)
            + self.channel.base_latency()
        )
        ready = np.where(
            s.last_req_per_set >= 0, response[s.last_req_per_set], 0.0
        )
        return ready, s.stats

    def access_structure(self, src: np.ndarray) -> LoaderStructure:
        """Channel-independent part of :meth:`access_ready_times`.

        Deduplicates the block-request stream and records each request's
        stride, arrival set and per-set releasing request — the inputs
        the channel model turns into ready times.
        """
        if src.size == 0:
            return LoaderStructure(
                strides=np.zeros(0),
                arrival=np.zeros(0),
                last_req_per_set=np.zeros(0, dtype=np.int64),
                num_sets=0,
                stats=VertexLoaderStats(0, 0, 0, 0),
            )

        k = self.config.edges_per_set
        padded = self._pad_to_sets(np.asarray(src, dtype=np.int64))
        num_sets = padded.size // k
        blocks = padded // self.config.vertices_per_block

        # A request is needed where the block index changes.  With the
        # last-block cache the comparison carries across set boundaries;
        # without it, the first edge of every set always issues.
        new_req = np.empty(padded.size, dtype=bool)
        new_req[0] = True
        new_req[1:] = blocks[1:] != blocks[:-1]
        if not self.config.last_block_cache:
            new_req[::k] = True

        req_idx = np.flatnonzero(new_req)
        req_blocks = blocks[req_idx]
        strides = np.empty(req_blocks.size, dtype=np.float64)
        strides[0] = 0.0
        strides[1:] = (req_blocks[1:] - req_blocks[:-1]) * BLOCK_BYTES

        # Requests cannot be issued before their edge set has been read
        # (one set per cycle from the edge burst stream).
        req_set = req_idx // k
        arrival = req_set.astype(np.float64) + 1.0

        # Each set is released by the response of the last request at or
        # before its end; sets with no request of their own inherit it.
        last_req_per_set = (
            np.searchsorted(req_set, np.arange(num_sets), side="right") - 1
        )

        saved = int(padded.size - req_idx.size)
        stats = VertexLoaderStats(
            num_edges=int(src.size),
            num_sets=num_sets,
            requests_issued=int(req_idx.size),
            requests_saved=saved,
        )
        return LoaderStructure(
            strides=strides,
            arrival=arrival,
            last_req_per_set=last_req_per_set,
            num_sets=num_sets,
            stats=stats,
        )
