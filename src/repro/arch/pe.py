"""Scatter and Gather processing-element arrays (functional model).

The Scatter PEs evaluate the user's ``accScatter`` on each edge; the Gather
PEs fold ``accGather`` into on-chip destination buffers.  The arrays here
execute the real UDFs (vectorised) so the simulated accelerator produces
*actual algorithm results*, which the tests validate against NumPy and
networkx references.

Two dispatch disciplines exist, exactly as in Sec. III:

* **static** (Little pipeline): tuple ``i`` of a set goes to PE ``i mod
  N_gpe``; all PEs buffer the *same* destination interval and a Merger
  combines them afterwards.
* **routed** (Big pipeline): the Data Router sends each tuple to the PE
  whose buffer owns its destination partition; PEs buffer *distinct*
  partitions and need no merger, letting one execution cover ``N_gpe``
  partitions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.router import ButterflyRouter


def static_dispatch(n_gpe: int, dst: np.ndarray, base: int):
    """Per-edge ``(pe, slot)`` under the Little pipeline's static
    discipline: tuple ``i`` goes to PE ``i mod n_gpe``, and every PE
    buffers the same destination interval starting at ``base``.

    Pure structure — no channel or property dependence — so the
    compiled functional core lowers it once per task and replays the
    exact destinations :meth:`GatherPeArray.absorb` would hit.
    """
    pe = np.arange(dst.size, dtype=np.int64) % n_gpe
    slot = np.asarray(dst, dtype=np.int64) - np.int64(base)
    return pe, slot


def routed_dispatch(bases: np.ndarray, dst: np.ndarray):
    """Per-edge ``(lane, slot)`` under Data Router dispatch: each tuple
    goes to the PE whose buffer owns its destination partition
    (``bases`` ascending, one per active PE).

    The same ``searchsorted`` the routed :meth:`GatherPeArray.absorb`
    performs, exposed as a structure hook for the compiled functional
    core.
    """
    bases = np.asarray(bases, dtype=np.int64)
    lane = np.searchsorted(bases, dst, side="right") - 1
    slot = np.asarray(dst, dtype=np.int64) - bases[lane]
    return lane, slot


class ScatterPeArray:
    """``n_spe`` Scatter PEs applying the app's scatter UDF per edge."""

    def __init__(self, n_spe: int):
        if n_spe < 1:
            raise ValueError("n_spe must be >= 1")
        self.n_spe = n_spe

    def process(self, app, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Compute update values for a batch of edges."""
        return app.scatter(src_props, weights)


class GatherPeArray:
    """``n_gpe`` Gather PEs with per-PE destination buffers."""

    def __init__(self, n_gpe: int, buffer_vertices: int, routed: bool):
        if n_gpe < 1:
            raise ValueError("n_gpe must be >= 1")
        self.n_gpe = n_gpe
        self.buffer_vertices = buffer_vertices
        self.routed = routed
        self.router = ButterflyRouter(n_gpe) if routed else None
        self._buffers: List[np.ndarray] = []
        self._bases: np.ndarray = np.zeros(0, dtype=np.int64)

    def reset(self, app, bases) -> None:
        """Initialise the gather buffers with the app's identity value.

        ``bases``: in routed mode, one destination-interval base per active
        PE (ascending, at most ``n_gpe`` of them); in static mode a single
        base — all PEs replicate the same interval.
        """
        if self.routed:
            self._bases = np.asarray(bases, dtype=np.int64).ravel()
            if self._bases.size > self.n_gpe:
                raise ValueError(
                    f"routed mode takes at most {self.n_gpe} partition "
                    f"bases, got {self._bases.size}"
                )
            if np.any(np.diff(self._bases) <= 0):
                raise ValueError("partition bases must be ascending")
            active = self._bases.size
        else:
            self._bases = np.asarray([int(bases)], dtype=np.int64)
            active = self.n_gpe
        self._buffers = [
            np.full(
                self.buffer_vertices, app.gather_identity, dtype=app.prop_dtype
            )
            for _ in range(active)
        ]

    def absorb(self, app, dst: np.ndarray, updates: np.ndarray) -> None:
        """Fold a batch of update tuples into the PE buffers."""
        if dst.size == 0:
            return
        if self.routed:
            lane_of, slot = routed_dispatch(self._bases, dst)
            slot_lanes = self.router.route(lane_of, slot)
            update_lanes = self.router.route(lane_of, updates)
            for pe, buf in enumerate(self._buffers):
                if slot_lanes[pe].size:
                    app.gather_at(buf, slot_lanes[pe], update_lanes[pe])
        else:
            offset = dst - self._bases[0]
            for pe, buf in enumerate(self._buffers):
                sel = slice(pe, None, self.n_gpe)
                if offset[sel].size:
                    app.gather_at(buf, offset[sel], updates[sel])

    def drain(self) -> List[np.ndarray]:
        """Return the per-PE buffers.

        Routed mode yields one distinct-partition buffer per active PE;
        static mode yields replicated buffers for the Merger to combine
        (:func:`repro.arch.merger.merge_buffers`).
        """
        return self._buffers
