"""Apply module simulator (Fig. 3c).

The Apply module receives accumulated temporary properties from both
pipeline clusters, combines them with the old vertex properties (and
auxiliary data such as out-degrees for PageRank) and produces the new
property of every vertex with multiple PEs.  Functionally it evaluates the
app's ``accApply`` UDF; its cycle cost is bandwidth-bound on the reserved
memory ports.
"""

from __future__ import annotations

import numpy as np

from repro.graph.coo import VERTEX_WORD_BYTES
from repro.hbm.channel import BLOCK_BYTES, HbmChannelModel

#: Vertices the Apply PEs consume per cycle (one block per reserved port).
APPLY_VERTICES_PER_CYCLE = 2 * BLOCK_BYTES // VERTEX_WORD_BYTES


class ApplySim:
    """Timing + functional model of the Apply stage."""

    def __init__(self, channel: HbmChannelModel):
        self.channel = channel

    def cycles(self, num_vertices: int) -> float:
        """Cycles to apply all vertices, streaming on the reserved ports."""
        if num_vertices <= 0:
            return 0.0
        return (
            self.channel.base_latency()
            + num_vertices / APPLY_VERTICES_PER_CYCLE
        )

    def run(self, app, old_props: np.ndarray, accumulated: np.ndarray):
        """Evaluate the apply UDF over every vertex."""
        return app.apply(old_props, accumulated)
