"""ReGraph reproduction: heterogeneous Big/Little graph-processing
pipelines on HBM-enabled FPGAs (Chen et al., MICRO 2022), as a pure-Python
cycle-level simulator and framework.

Public API highlights:

* :class:`repro.core.ReGraph` — the push-button framework (Fig. 8);
* :mod:`repro.apps` — the GAS programming interface and the benchmark
  applications (PageRank, BFS, Closeness Centrality, WCC, SSSP);
* :mod:`repro.graph` — COO graphs, generators, DBG, partitioning;
* :mod:`repro.arch` — platform, resource model and cycle-level pipeline
  simulators;
* :mod:`repro.model` — the Eq. 1-4 analytic performance model;
* :mod:`repro.sched` — model-guided inter/intra-cluster scheduling;
* :mod:`repro.baselines` — calibrated models of the systems the paper
  compares against (ThunderGP, GraphLily, Asiatici et al., Ligra, Gunrock).
"""

from repro.core import ReGraph, RunReport, SystemSimulator
from repro.graph import Graph

__version__ = "1.0.0"

__all__ = ["ReGraph", "RunReport", "SystemSimulator", "Graph", "__version__"]
