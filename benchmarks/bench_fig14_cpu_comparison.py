"""Fig. 14: ReGraph vs Ligra on a 48-core Xeon (PR and BFS).

Simulated ReGraph throughput against the bandwidth-bound Ligra model on
the same scaled stand-ins.  Paper shapes: PR speedup 1.6-7.1x, BFS
speedup 1.5-9.7x, energy-efficiency improvement 10-58x.
"""

import pytest

from repro.apps.bfs import BreadthFirstSearch
from repro.apps.pagerank import PageRank
from repro.baselines.energy import PLATFORM_POWER_WATTS, efficiency_ratio
from repro.baselines.ligra import LigraModel
from repro.core.system import SystemSimulator
from repro.reporting import format_table, write_report

from conftest import SWEEP_GRAPHS, bench_framework

PR_ITERATIONS = 10


@pytest.fixture(scope="module")
def measurements(datasets):
    fw = bench_framework("U280")
    ligra = LigraModel()
    out = []
    for key in SWEEP_GRAPHS:
        graph = datasets[key]
        pre = fw.preprocess(graph)
        sim = SystemSimulator(pre.plan, fw.platform, fw.channel)
        pr = sim.run(
            PageRank(pre.graph), max_iterations=PR_ITERATIONS, functional=False
        )
        bfs = sim.run(BreadthFirstSearch(pre.graph, root=0))
        out.append(
            {
                "graph": key,
                "pr_regraph": pr.mteps,
                "bfs_regraph": bfs.mteps,
                "pr_ligra": ligra.pagerank_mteps(graph),
                "bfs_ligra": ligra.bfs_mteps(graph),
            }
        )
    return out


def test_fig14_cpu_comparison(benchmark, measurements):
    fpga_w = PLATFORM_POWER_WATTS["U280"]
    cpu_w = PLATFORM_POWER_WATTS["Xeon-6248R"]

    def build_rows():
        rows = []
        for m in measurements:
            pr_speed = m["pr_regraph"] / m["pr_ligra"]
            bfs_speed = m["bfs_regraph"] / m["bfs_ligra"]
            pr_energy = efficiency_ratio(
                m["pr_regraph"], fpga_w, m["pr_ligra"], cpu_w
            )
            bfs_energy = efficiency_ratio(
                m["bfs_regraph"], fpga_w, m["bfs_ligra"], cpu_w
            )
            rows.append(
                (
                    m["graph"],
                    f"{m['pr_regraph']:.0f}",
                    f"{m['pr_ligra']:.0f}",
                    f"{pr_speed:.1f}x",
                    f"{pr_energy:.0f}x",
                    f"{bfs_speed:.1f}x",
                    f"{bfs_energy:.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = format_table(
        ["graph", "PR ReGraph MTEPS", "PR Ligra MTEPS",
         "PR speedup (paper 1.6-7.1x)", "PR energy (paper 10-38x)",
         "BFS speedup (paper 1.5-9.7x)", "BFS energy (paper 9.5-58x)"],
        rows,
        title="Fig. 14: ReGraph (U280) vs Ligra (Xeon Gold 6248R)",
    )
    write_report("fig14_cpu_comparison", text)

    # Shape: ReGraph wins throughput on every graph and the energy gap
    # is roughly the power ratio times the speedup.
    for m in measurements:
        assert m["pr_regraph"] > m["pr_ligra"], m["graph"]
        ratio = efficiency_ratio(
            m["pr_regraph"], fpga_w, m["pr_ligra"], cpu_w
        )
        assert ratio > 5.0, m["graph"]
