"""Mechanistic baseline comparison: ReGraph vs a simulated monolithic
accelerator through the *same* cycle-level machinery.

Table V compares against the baselines' published numbers; this bench
removes the cross-testbed apples-to-oranges by building the ThunderGP
analogue inside our own simulator: homogeneous pipelines, capped at the
resource-bound count Table I implies (~4 channels at 21.3% CLB each
under the 80% cap), scheduled without dense/sparse awareness.  The
speedup that remains is attributable purely to the heterogeneous
architecture + model-guided scheduling — the paper's contribution.
"""

import pytest

from repro.apps.pagerank import PageRank
from repro.baselines.fpga import thundergp_like_plan
from repro.core.framework import ReGraph
from repro.core.system import SystemSimulator
from repro.reporting import format_table, write_report

from conftest import SWEEP_GRAPHS, bench_framework

PR_ITERATIONS = 5

#: Pipelines a monolithic design affords (Table I: ThunderGP at 21.3%
#: CLB per channel caps out below 4 under the 80% rule).
MONO_PIPELINES = 4

#: Full port-budget pipelines for ReGraph.
REGRAPH_PIPELINES = 14


def _mteps(framework, pre):
    sim = SystemSimulator(pre.plan, framework.platform, framework.channel)
    run = sim.run(
        PageRank(pre.graph), max_iterations=PR_ITERATIONS, functional=False
    )
    return run.mteps


def test_mechanistic_thundergp_comparison(benchmark, datasets):
    regraph = bench_framework("U280", num_pipelines=REGRAPH_PIPELINES)
    results = {}

    def run_all():
        results.clear()
        for key in SWEEP_GRAPHS:
            graph = datasets[key]
            pre = regraph.preprocess(graph)
            ours = _mteps(regraph, pre)

            mono_pre = thundergp_like_plan(
                regraph, graph, num_pipelines=MONO_PIPELINES
            )
            mono_fw = ReGraph(
                "U280",
                pipeline=regraph.pipeline,
                num_pipelines=MONO_PIPELINES,
            )
            mono = _mteps(mono_fw, mono_pre)
            results[key] = (ours, mono, pre.plan.accelerator.label)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (key, label, f"{ours:.0f}", f"{mono:.0f}", f"{ours / mono:.1f}x")
        for key, (ours, mono, label) in results.items()
    ]
    text = format_table(
        ["graph", "ReGraph combo", "ReGraph MTEPS",
         f"monolithic {MONO_PIPELINES}-pipe MTEPS", "speedup"],
        rows,
        title=(
            "Mechanistic comparison: heterogeneous (14 pipes) vs "
            "monolithic resource-bound (4 pipes), same simulator"
        ),
    )
    write_report("mechanistic_thundergp_comparison", text)

    # The architectural speedup sits in the Table V band (1.6-4.4x) or
    # above — never below parity.
    for key, (ours, mono, _label) in results.items():
        assert ours > 1.3 * mono, key
