"""Analysis benches: bottleneck attribution and static-vs-dynamic
scheduling.

Not a paper figure — these quantify two design claims DESIGN.md calls
out: (a) *why* each partition prefers its pipeline type (Eq. 1 term
attribution), and (b) that the model-guided *static* plan leaves little
on the table versus an idealised dynamic (work-stealing) runtime.
"""

import pytest

from repro.graph.datasets import load_dataset
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.model.bottleneck import compare_pipeline_choice
from repro.model.calibrate import calibrate_performance_model
from repro.sched.dynamic import dynamic_makespan, static_makespan
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_framework, bench_pipeline_config


@pytest.fixture(scope="module")
def setup():
    config = bench_pipeline_config()
    channel = HbmChannelModel()
    model = calibrate_performance_model(config, channel)
    graph = load_dataset("HD", scale=BENCH_SCALE, seed=1)
    pset = partition_graph(
        degree_based_grouping(graph).graph, config.gather_buffer_vertices
    )
    return {"model": model, "pset": pset, "graph": graph}


def test_bottleneck_attribution(benchmark, setup):
    parts = setup["pset"].nonempty()
    samples = [parts[0], parts[len(parts) // 2], parts[-1]]

    def analyse():
        return [compare_pipeline_choice(p, setup["model"]) for p in samples]

    analyses = benchmark(analyse)
    rows = []
    for a in analyses:
        for kind in ("little", "big"):
            b = a[kind]
            f = b.fractions()
            rows.append(
                (
                    f"p{a['partition']}",
                    kind,
                    f"{b.total_cycles:.0f}",
                    f"{f['edge_supply']:.0%}",
                    f"{f['vertex_access']:.0%}",
                    f"{f['gather']:.0%}",
                    f"{f['fixed']:.0%}",
                    "*" if a["preferred"] == kind else "",
                )
            )
    text = format_table(
        ["partition", "pipeline", "cycles", "edge supply",
         "vertex access", "gather", "fixed", "preferred"],
        rows,
        title="Analysis: Eq. 1 bottleneck attribution (HD)",
    )
    write_report("analysis_bottlenecks", text)

    tail = analyses[-1]
    # Sparse tail: prefers Big; on Little the fixed overhead + span
    # streaming dominate.
    assert tail["preferred"] == "big"
    tail_little = tail["little"].fractions()
    assert tail_little["fixed"] + tail_little["vertex_access"] > 0.5
    # The *final* placement (after group refinement) puts the dense head
    # on the Little cluster, even though the solo comparison is close —
    # in a Big group the head would monopolise one Gather PE.
    from repro.sched.inter import classify_partitions

    dense, _sparse, _tl, _tb = classify_partitions(parts, setup["model"])
    assert 0 in dense


def test_static_vs_dynamic_scheduling(benchmark, setup):
    fw = bench_framework("U280", num_pipelines=8)
    pre = fw.preprocess(setup["graph"])

    def measure():
        return (
            static_makespan(pre.plan, fw.channel),
            dynamic_makespan(pre.plan, fw.channel),
        )

    static, dynamic = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["policy", "iteration makespan (cycles)"],
        [
            ("static (model-guided)", f"{static:.0f}"),
            ("dynamic (LPT work stealing)", f"{dynamic:.0f}"),
            ("static / dynamic", f"{static / dynamic:.2f}"),
        ],
        title="Analysis: static vs dynamic scheduling (HD, 8 pipelines)",
    )
    write_report("analysis_static_vs_dynamic", text)

    # The model-guided static plan is within 25% of the idealised
    # dynamic runtime — the premise for shipping a static scheduler.
    assert static <= 1.25 * dynamic
