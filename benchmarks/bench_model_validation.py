"""Model-validation matrix: Fig. 9's error claim, generalised.

Runs the analytic model against the cycle-level simulators over a matrix
of synthetic graphs spanning skew classes (RMAT, power-law, uniform) and
seeds, reporting pooled error statistics per pipeline kind.  The paper
quotes 4% (Big) / 6% (Little) average error on its four graphs; the
matrix shows the bands hold beyond the graphs the model was demonstrated
on.
"""

from repro.model.validation import aggregate, validation_matrix
from repro.reporting import format_table, write_report

from conftest import bench_pipeline_config


def test_model_error_matrix(benchmark):
    config = bench_pipeline_config()

    def run():
        return validation_matrix(config, seeds=2)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            s.kind,
            s.count,
            f"{s.mean:.1%}",
            f"{s.p95:.1%}",
            f"{s.worst:.1%}",
            f"{s.bias:+.1%}",
        )
        for s in stats
    ]
    pooled_rows = [
        (
            f"pooled {kind}",
            agg.count,
            f"{agg.mean:.1%}",
            f"{agg.p95:.1%}",
            f"{agg.worst:.1%}",
            f"{agg.bias:+.1%}",
        )
        for kind, agg in (
            ("little", aggregate(stats, "little")),
            ("big", aggregate(stats, "big")),
        )
    ]
    text = format_table(
        ["kind", "samples", "mean err", "p95 err", "worst", "bias"],
        rows + pooled_rows,
        title=(
            "Model validation matrix: per-graph and pooled error "
            "(paper: Big 4%, Little 6% average)"
        ),
    )
    write_report("model_validation_matrix", text)

    little = aggregate(stats, "little")
    big = aggregate(stats, "big")
    assert little.mean < 0.12
    assert big.mean < 0.12
    assert little.worst < 0.5
    assert big.worst < 0.5
