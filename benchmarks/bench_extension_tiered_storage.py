"""Extension experiment: SSD-tiered storage for billion-scale graphs.

Sec. VIII's future work, built out: edge lists on NVMe streamed through
HBM staging buffers with double buffering.  The experiment answers two
questions the paper poses implicitly:

1. which published graphs actually *need* tiering on a 8 GB-HBM card, and
2. what slowdown tiering costs per pipeline cluster — near-free where
   pipelines are compute-bound (dense work on Little pipelines), worst
   on Big clusters racing through sparse tails.
"""

import pytest

from repro.graph.datasets import DATASETS, load_dataset
from repro.hbm.tiered import (
    SsdTierConfig,
    estimate_tiered_plan,
    graph_needs_tiering,
)
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_framework

#: Hypothetical billion-scale graphs motivating the extension.
BILLION_SCALE = {
    "rmat-27-32": (2**27, 2**27 * 32),
    "webgraph-1B": (400_000_000, 1_000_000_000),
    "rmat-30-16": (2**30, 2**30 * 16),
}


def test_tiering_need_table(benchmark):
    """Which graphs exceed the 8 GB HBM (Sec. VIII's limit)?"""

    def build():
        rows = []
        for key, spec in DATASETS.items():
            needs = graph_needs_tiering(
                spec.num_edges, 8, spec.num_vertices
            )
            rows.append(
                (key, f"{spec.num_edges:,}", "yes" if needs else "no")
            )
        for name, (v, e) in BILLION_SCALE.items():
            rows.append(
                (name, f"{e:,}",
                 "yes" if graph_needs_tiering(e, 8, v) else "no")
            )
        return rows

    rows = benchmark(build)
    text = format_table(
        ["graph", "edges", "needs SSD tier"],
        rows,
        title="Extension: which graphs exceed the 8 GB HBM",
    )
    write_report("extension_tiering_need", text)

    # Every Table III graph fits (the paper ran them all from HBM)...
    for key, spec in DATASETS.items():
        assert not graph_needs_tiering(spec.num_edges, 8, spec.num_vertices)
    # ...every billion-scale graph does not.
    for name, (v, e) in BILLION_SCALE.items():
        assert graph_needs_tiering(e, 8, v), name


@pytest.mark.parametrize("graph_key", ["HD", "HW"])
def test_tiered_slowdown_vs_drive_count(benchmark, graph_key):
    """Overlap quality of SSD streaming against the real plan timings.

    Plan timings are extrapolated to full scale (task cycles and bytes
    both scale linearly with edges), then the NVMe count is swept.  The
    headline finding: each pipeline consumes up to ~17 GB/s of edge
    stream, so a *single* 3.2 GB/s drive is the bottleneck — tiering
    only becomes near-free with an array of 4-8 drives.
    """
    graph = load_dataset(graph_key, scale=BENCH_SCALE, seed=1)
    fw = bench_framework("U280", num_pipelines=8)
    pre = fw.preprocess(graph)
    upscale = 1.0 / BENCH_SCALE

    def worst_slowdown(num_drives):
        config = SsdTierConfig(
            read_bytes_per_second=3.2e9 * num_drives
        )
        hz = pre.resources.frequency_mhz * 1e6
        from repro.hbm.tiered import estimate_tiered_iteration

        worst = 1.0
        for tasks in list(pre.plan.little_tasks) + list(pre.plan.big_tasks):
            exec_s = [t.estimated_cycles * upscale / hz for t in tasks]
            nbytes = [int(t.num_edges * upscale * 8) for t in tasks]
            est = estimate_tiered_iteration(exec_s, nbytes, config)
            if est.execute_seconds > 0:
                worst = max(worst, est.slowdown)
        return worst

    def sweep():
        return {n: worst_slowdown(n) for n in (1, 2, 4, 8)}

    slowdowns = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (f"{n} drive(s)", f"{3.2 * n:.1f} GB/s", f"{s:.2f}x")
        for n, s in slowdowns.items()
    ]
    text = format_table(
        ["NVMe array", "read bandwidth", "worst pipeline slowdown"],
        rows,
        title=(
            f"Extension: tiered-SSD slowdown vs drive count "
            f"({graph_key}, full-scale extrapolation)"
        ),
    )
    write_report(f"extension_tiering_{graph_key}", text)

    # Single drive cannot feed the pipeline array; an 8-drive array
    # nearly can (residual cost: per-task first-chunk fills).
    assert slowdowns[1] > 2.5
    assert slowdowns[8] < 1.7
    # More drives never hurt.
    values = list(slowdowns.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
