"""Fig. 13: the resource-centric roofline model.

Plots (as a table) each design's absolute PR throughput against its
resource efficiency (GTEPS per device-LUT fraction), using the published
numbers for the baselines and both the published and our simulated
numbers for ReGraph.  Checks the headline factors: ReGraph's resource
efficiency beats Asiatici by ~12x, ThunderGP by ~5.7x and GraphLily by
~2.5x, and the baselines are resource-bounded while ReGraph is not.
"""

import pytest

from repro.apps.pagerank import PageRank
from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.arch.resources import report
from repro.baselines.fpga import ASIATICI, GRAPHLILY, THUNDERGP
from repro.core.system import SystemSimulator
from repro.graph.datasets import load_dataset
from repro.model.roofline import (
    RooflinePoint,
    bandwidth_bound_gteps,
    resource_roofline_bounds,
)
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_framework

#: Best PR GTEPS each design reports (ReGraph: 4.4x ThunderGP on HD,
#: 2.6x on R21 -> ~15.4 GTEPS best; baselines from Table V).
PAPER_BEST_PR_GTEPS = {
    "ReGraph": 15.4,
    "ThunderGP": 6.1,
    "GraphLily": 7.5,
    "Asiatici": 1.8,
}

PLATFORM_BW = {"U280": 460.0, "U50": 316.0, "UltraScale+": 77.0}


def _regraph_lut_fraction() -> float:
    accel = AcceleratorConfig(7, 7, PipelineConfig(gather_buffer_vertices=65_536))
    return report(accel, get_platform("U280")).lut_util


def _points():
    regraph_lut = _regraph_lut_fraction()
    return [
        RooflinePoint("ReGraph", PAPER_BEST_PR_GTEPS["ReGraph"], regraph_lut, "U280"),
        RooflinePoint(
            "ThunderGP", PAPER_BEST_PR_GTEPS["ThunderGP"], THUNDERGP.lut_fraction, "U280"
        ),
        RooflinePoint(
            "GraphLily", PAPER_BEST_PR_GTEPS["GraphLily"], GRAPHLILY.lut_fraction, "U280"
        ),
        RooflinePoint(
            "Asiatici", PAPER_BEST_PR_GTEPS["Asiatici"], ASIATICI.lut_fraction, "UltraScale+"
        ),
    ]


@pytest.fixture(scope="module")
def simulated_regraph_point():
    """Our simulated ReGraph point at bench scale (for context)."""
    fw = bench_framework("U280")
    graph = load_dataset("R21", scale=BENCH_SCALE, seed=1)
    pre = fw.preprocess(graph)
    sim = SystemSimulator(pre.plan, fw.platform, fw.channel)
    run = sim.run(PageRank(pre.graph), max_iterations=10, functional=False)
    return RooflinePoint(
        "ReGraph (simulated)", run.gteps, pre.resources.lut_util, "U280"
    )


def test_fig13_resource_roofline(benchmark, simulated_regraph_point):
    points = benchmark(_points)
    # ReGraph saturates its 14-pipeline port budget (Sec. VI-G), so its
    # next bound is ports, modelled as just above its achieved GTEPS.
    bounds = resource_roofline_bounds(
        points,
        PLATFORM_BW,
        port_bounds={"ReGraph": PAPER_BEST_PR_GTEPS["ReGraph"] * 1.05},
    )
    all_points = points + [simulated_regraph_point]
    rows = [
        (
            p.name,
            f"{p.gteps:.2f}",
            f"{p.lut_fraction:.1%}",
            f"{p.resource_efficiency:.1f}",
            bounds.get(p.name, {}).get("binding", "-"),
        )
        for p in all_points
    ]
    regraph = points[0]
    ratios = [
        (f"vs {p.name}", f"{regraph.efficiency_over(p):.1f}x (paper: {paper}x)")
        for p, paper in zip(points[1:], (5.7, 2.5, 12.3))
    ]
    text = (
        format_table(
            ["design", "GTEPS", "LUT frac", "GTEPS / LUT-frac", "bound"],
            rows,
            title="Fig. 13: resource-centric roofline (PR best points)",
        )
        + "\n\n"
        + format_table(["efficiency ratio", "value"], ratios)
        + f"\n\nU280 bandwidth bound: {bandwidth_bound_gteps(460.0):.1f} GTEPS"
    )
    write_report("fig13_roofline", text)

    # Headline factors within a loose band around the paper's numbers.
    thunder, lily, asia = points[1], points[2], points[3]
    assert 3.0 < regraph.efficiency_over(thunder) < 10.0   # paper 5.7x
    assert 1.5 < regraph.efficiency_over(lily) < 5.0       # paper 2.5x
    assert 7.0 < regraph.efficiency_over(asia) < 25.0      # paper 12.3x
    # Existing works are resource-bounded when scaled on U280, while
    # ReGraph runs into the memory-port limit instead (Sec. VI-G).
    for name in ("ThunderGP", "Asiatici"):
        assert bounds[name]["binding"] == "resource"
    assert bounds["ReGraph"]["binding"] == "port"
