"""Fig. 15: ReGraph vs Gunrock on Tesla P100 and A100.

Paper shapes: for PR both GPUs out-throughput ReGraph (bandwidth), yet
ReGraph is ~2.4x (geomean) more energy-efficient than the P100 and up to
~3.5x (geomean) than the A100; for BFS ReGraph beats the P100 outright
and improves energy efficiency 2.5-9.2x.
"""

import numpy as np
import pytest

from repro.apps.bfs import BreadthFirstSearch
from repro.apps.pagerank import PageRank
from repro.baselines.energy import PLATFORM_POWER_WATTS, efficiency_ratio
from repro.baselines.gunrock import GUNROCK_A100, GUNROCK_P100
from repro.core.system import SystemSimulator
from repro.reporting import format_table, write_report

from conftest import SWEEP_GRAPHS, bench_framework

PR_ITERATIONS = 10
FPGA_W = PLATFORM_POWER_WATTS["U280"]


@pytest.fixture(scope="module")
def measurements(datasets):
    fw = bench_framework("U280")
    out = []
    for key in SWEEP_GRAPHS:
        graph = datasets[key]
        pre = fw.preprocess(graph)
        sim = SystemSimulator(pre.plan, fw.platform, fw.channel)
        pr = sim.run(
            PageRank(pre.graph), max_iterations=PR_ITERATIONS, functional=False
        )
        bfs = sim.run(BreadthFirstSearch(pre.graph, root=0))
        out.append(
            {
                "graph": key,
                "obj": graph,
                "pr": pr.mteps,
                "bfs": bfs.mteps,
            }
        )
    return out


def test_fig15_gpu_comparison(benchmark, measurements):
    def build_rows():
        rows = []
        for m in measurements:
            g = m["obj"]
            rows.append(
                (
                    m["graph"],
                    f"{m['pr']:.0f}",
                    f"{GUNROCK_P100.pagerank_mteps(g):.0f}",
                    f"{GUNROCK_A100.pagerank_mteps(g):.0f}",
                    f"{m['bfs']:.0f}",
                    f"{GUNROCK_P100.bfs_mteps(g):.0f}",
                    f"{GUNROCK_A100.bfs_mteps(g):.0f}",
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    # Energy-efficiency geomeans.
    def geomean(values):
        return float(np.exp(np.mean(np.log(values))))

    pr_vs_p100 = geomean(
        [
            efficiency_ratio(
                m["pr"], FPGA_W,
                GUNROCK_P100.pagerank_mteps(m["obj"]), GUNROCK_P100.power_watts,
            )
            for m in measurements
        ]
    )
    bfs_vs_p100 = geomean(
        [
            efficiency_ratio(
                m["bfs"], FPGA_W,
                GUNROCK_P100.bfs_mteps(m["obj"]), GUNROCK_P100.power_watts,
            )
            for m in measurements
        ]
    )
    bfs_vs_a100 = geomean(
        [
            efficiency_ratio(
                m["bfs"], FPGA_W,
                GUNROCK_A100.bfs_mteps(m["obj"]), GUNROCK_A100.power_watts,
            )
            for m in measurements
        ]
    )
    text = (
        format_table(
            ["graph", "PR ReGraph", "PR P100", "PR A100",
             "BFS ReGraph", "BFS P100", "BFS A100"],
            rows,
            title="Fig. 15: MTEPS, ReGraph (U280) vs Gunrock",
        )
        + "\n\nenergy-efficiency geomeans (ReGraph / GPU):"
        + f"\n  PR  vs P100: {pr_vs_p100:.1f}x (paper ~2.4x)"
        + f"\n  BFS vs P100: {bfs_vs_p100:.1f}x (paper ~7x)"
        + f"\n  BFS vs A100: {bfs_vs_a100:.1f}x (paper up to ~3.5x)"
    )
    write_report("fig15_gpu_comparison", text)

    # Shapes: GPUs win PR throughput; ReGraph beats P100 on BFS; energy
    # efficiency favours ReGraph throughout.
    for m in measurements:
        assert GUNROCK_A100.pagerank_mteps(m["obj"]) > m["pr"], m["graph"]
    wins = sum(
        m["bfs"] > GUNROCK_P100.bfs_mteps(m["obj"]) for m in measurements
    )
    assert wins >= len(measurements) // 2
    assert pr_vs_p100 > 1.0
    assert bfs_vs_p100 > 2.0
