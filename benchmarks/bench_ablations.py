"""Ablation benches for the design choices called out in DESIGN.md.

Each ablation toggles one mechanism and measures the cost of losing it:

* data routing off          -> partition-switch overhead un-amortised;
* last-block cache off      -> extra memory requests in the Vertex Loader;
* jump access off           -> redundant burst fetches in the Ping-Pong
                               Buffer on partial-range partitions;
* DBG off                   -> end-to-end throughput loss on power-law
                               graphs (hot vertices scatter);
* even-edge intra cuts      -> covered by the scheduler unit tests (the
                               equal-time cuts are exercised per plan).
"""

import pytest

from repro.apps.pagerank import PageRank
from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.config import PipelineConfig
from repro.arch.little_pipeline import LittlePipelineSim
from repro.arch.vertex_loader import VertexLoaderSim
from repro.core.system import SystemSimulator
from repro.graph.datasets import load_dataset
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_framework, bench_pipeline_config

PR_ITERATIONS = 5


@pytest.fixture(scope="module")
def hd_partitions():
    graph = load_dataset("HD", scale=BENCH_SCALE, seed=1)
    config = bench_pipeline_config()
    pset = partition_graph(
        degree_based_grouping(graph).graph, config.gather_buffer_vertices
    )
    return pset.nonempty()


def _mteps(framework, pre):
    sim = SystemSimulator(pre.plan, framework.platform, framework.channel)
    run = sim.run(
        PageRank(pre.graph), max_iterations=PR_ITERATIONS, functional=False
    )
    return run.mteps


def test_ablation_data_routing(benchmark, hd_partitions):
    """Grouped execution vs one-partition-per-execution on the sparse tail."""
    config = bench_pipeline_config()
    channel = HbmChannelModel()
    routed = BigPipelineSim(config, channel)
    unrouted_cfg = PipelineConfig(
        gather_buffer_vertices=config.gather_buffer_vertices,
        data_routing=False,
    )
    unrouted = BigPipelineSim(unrouted_cfg, channel)
    sparse = hd_partitions[-config.n_gpe * 2 :]

    def run():
        grouped = sum(
            routed.execute(sparse[i : i + config.n_gpe])[0].total_cycles
            for i in range(0, len(sparse), config.n_gpe)
        )
        separate = sum(
            unrouted.execute([p])[0].total_cycles for p in sparse
        )
        return grouped, separate

    grouped, separate = benchmark(run)
    text = format_table(
        ["variant", "cycles (sparse tail)"],
        [
            ("data routing (8 partitions/exec)", f"{grouped:.0f}"),
            ("no routing (1 partition/exec)", f"{separate:.0f}"),
            ("overhead factor", f"{separate / grouped:.2f}x"),
        ],
        title="Ablation: Big pipeline data routing",
    )
    write_report("ablation_data_routing", text)
    assert separate > 1.5 * grouped


def test_ablation_last_block_cache(benchmark, hd_partitions):
    """Request reduction from the Vertex Loader's one-entry cache."""
    config = bench_pipeline_config()
    channel = HbmChannelModel()
    dense = hd_partitions[0]
    with_cache = VertexLoaderSim(config, channel)
    no_cache_cfg = PipelineConfig(
        gather_buffer_vertices=config.gather_buffer_vertices,
        last_block_cache=False,
    )
    without = VertexLoaderSim(no_cache_cfg, channel)

    def run():
        _r1, s1 = with_cache.access_ready_times(dense.src)
        _r2, s2 = without.access_ready_times(dense.src)
        return s1, s2

    s1, s2 = benchmark(run)
    text = format_table(
        ["variant", "requests issued", "dedup ratio"],
        [
            ("with last-block cache", s1.requests_issued, f"{s1.dedup_ratio:.1%}"),
            ("without", s2.requests_issued, f"{s2.dedup_ratio:.1%}"),
        ],
        title="Ablation: Vertex Loader last-block cache (dense partition)",
    )
    write_report("ablation_last_block_cache", text)
    assert s1.requests_issued < s2.requests_issued


def test_ablation_jump_access(benchmark, hd_partitions):
    """Fetch savings from jump access on partial-range (sparse) partitions."""
    import numpy as np

    config = bench_pipeline_config()
    channel = HbmChannelModel()
    # Pick the sparse partition with the widest scattered source range;
    # fall back to a synthetic two-cluster partition if the stand-in's
    # tails are too narrow to exercise segment skipping.
    seg_vertices = (
        config.pingpong_blocks_per_side * config.vertices_per_block
    )
    candidates = [
        p
        for p in hd_partitions[2:]
        if p.num_edges
        and p.src_span_blocks(config.vertices_per_block)
        > 4 * config.pingpong_blocks_per_side
    ]
    if candidates:
        sparse = min(candidates, key=lambda p: p.num_edges)
    else:
        from repro.graph.partition import Partition

        src = np.concatenate(
            [
                np.arange(32, dtype=np.int64),
                np.arange(32, dtype=np.int64) + 40 * seg_vertices,
            ]
        )
        sparse = Partition(
            index=0,
            vertex_lo=0,
            vertex_hi=config.partition_vertices,
            src=src,
            dst=np.zeros(src.size, dtype=np.int64),
        )
    with_jump = LittlePipelineSim(config, channel)
    no_jump_cfg = PipelineConfig(
        gather_buffer_vertices=config.gather_buffer_vertices,
        jump_access=False,
    )
    without = LittlePipelineSim(no_jump_cfg, channel)

    def run():
        return (
            with_jump.pingpong_stats(sparse),
            without.pingpong_stats(sparse),
        )

    s1, s2 = benchmark(run)
    text = format_table(
        ["variant", "blocks fetched", "span streamed"],
        [
            ("with jump access", s1.blocks_fetched,
             f"{s1.span_fraction_fetched:.1%}"),
            ("without", s2.blocks_fetched,
             f"{s2.span_fraction_fetched:.1%}"),
        ],
        title="Ablation: Ping-Pong Buffer jump access (sparse partition)",
    )
    write_report("ablation_jump_access", text)
    assert s1.blocks_fetched <= s2.blocks_fetched


def test_ablation_dbg(benchmark):
    """End-to-end throughput with and without DBG grouping."""
    results = {}

    def run_all():
        results.clear()
        for key in ("HD", "PK", "GG"):
            graph = load_dataset(key, scale=BENCH_SCALE, seed=1)
            fw = bench_framework("U280", num_pipelines=8)
            with_dbg = _mteps(fw, fw.preprocess(graph, use_dbg=True))
            without = _mteps(fw, fw.preprocess(graph, use_dbg=False))
            results[key] = (with_dbg, without)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (key, f"{w:.0f}", f"{wo:.0f}", f"{w / wo:.2f}x")
        for key, (w, wo) in results.items()
    ]
    text = format_table(
        ["graph", "with DBG", "without DBG", "gain"],
        rows,
        title="Ablation: degree-based grouping (PR MTEPS, 8 pipelines)",
    )
    write_report("ablation_dbg", text)
    for key, (w, wo) in results.items():
        assert w > wo, key
