"""Shared benchmark fixtures.

Benchmarks run at 1/32 of the paper's scale: dataset stand-ins are
instantiated with ``scale = 1/32`` and the Gather PE buffer shrinks from
65,536 to 2,048 destination vertices, preserving the partition-count
ratio (V / U) of the full-size experiments — which is what determines the
dense/sparse structure the heterogeneous pipelines exploit.

The setup constants and factories live in :mod:`tests.helpers`, shared
with the test suite so both exercise identical configurations.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# The benchmarks directory is not a package; make the repo root (and
# with it the ``tests`` package) importable when pytest targets only
# this directory.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.graph.datasets import load_dataset

from tests.helpers import (  # noqa: E402  (path bootstrap above)
    BENCH_BUFFERS,
    BENCH_SCALE,
    SWEEP_GRAPHS,
    bench_framework,
    bench_pipeline_config,
)

#: Re-exported for the bench modules that import them from conftest.
BENCH_BUFFER_U280 = BENCH_BUFFERS["U280"]
BENCH_BUFFER_U50 = BENCH_BUFFERS["U50"]

__all__ = [
    "BENCH_BUFFER_U280",
    "BENCH_BUFFER_U50",
    "BENCH_SCALE",
    "SWEEP_GRAPHS",
    "bench_framework",
    "bench_pipeline_config",
]


def pytest_addoption(parser):
    parser.addoption(
        "--journal",
        action="store_true",
        default=False,
        help=(
            "fleet benchmark: also measure fsync-per-append journaling "
            "(latency is storage-dependent, so it is reported but never "
            "gated; the fsync-less overhead gate always runs)"
        ),
    )


@pytest.fixture(scope="session")
def datasets():
    """Scaled stand-ins of the graphs used across benchmarks, by key."""
    return {
        key: load_dataset(key, scale=BENCH_SCALE, seed=1)
        for key in SWEEP_GRAPHS
    }


@pytest.fixture(scope="session")
def u280_framework():
    return bench_framework("U280")


@pytest.fixture(scope="session")
def u50_framework():
    return bench_framework("U50")
