"""Shared benchmark fixtures.

Benchmarks run at 1/32 of the paper's scale: dataset stand-ins are
instantiated with ``scale = 1/32`` and the Gather PE buffer shrinks from
65,536 to 2,048 destination vertices, preserving the partition-count
ratio (V / U) of the full-size experiments — which is what determines the
dense/sparse structure the heterogeneous pipelines exploit.
"""

from __future__ import annotations

import pytest

from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.graph.datasets import load_dataset

#: Scale factor applied to every dataset stand-in.
BENCH_SCALE = 1.0 / 32.0

#: Gather buffer scaled by the same factor (65,536 / 32).
BENCH_BUFFER_U280 = 2048
BENCH_BUFFER_U50 = 1024

#: Graphs used by the throughput sweeps (kept small enough to simulate).
SWEEP_GRAPHS = ("R21", "GG", "HD", "PK", "HW", "OR")


def bench_pipeline_config(platform: str = "U280") -> PipelineConfig:
    """The Sec. VI-A pipeline config at benchmark scale."""
    buffer_vertices = (
        BENCH_BUFFER_U280 if platform == "U280" else BENCH_BUFFER_U50
    )
    return PipelineConfig(gather_buffer_vertices=buffer_vertices)


def bench_framework(platform: str = "U280", num_pipelines=None) -> ReGraph:
    """A ReGraph instance at benchmark scale."""
    return ReGraph(
        platform,
        pipeline=bench_pipeline_config(platform),
        num_pipelines=num_pipelines,
    )


@pytest.fixture(scope="session")
def datasets():
    """Scaled stand-ins of the graphs used across benchmarks, by key."""
    return {
        key: load_dataset(key, scale=BENCH_SCALE, seed=1)
        for key in SWEEP_GRAPHS
    }


@pytest.fixture(scope="session")
def u280_framework():
    return bench_framework("U280")


@pytest.fixture(scope="session")
def u50_framework():
    return bench_framework("U50")
