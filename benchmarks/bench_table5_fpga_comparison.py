"""Table V: ReGraph vs state-of-the-art FPGA designs (PR, BFS, CC).

For every Table V row we simulate ReGraph on the scaled stand-in (U280
and U50), evaluate the baseline's mechanistic throughput model on the
same graph, and report our speedup next to the paper's.  Absolute MTEPS
differ (simulator + scaled graphs); the reproduced shape is who wins and
by roughly what factor.
"""

import pytest

from repro.apps.bfs import BreadthFirstSearch
from repro.apps.closeness import ClosenessCentrality
from repro.apps.pagerank import PageRank
from repro.baselines.fpga import (
    ASIATICI,
    GRAPHLILY,
    TABLE5_PAPER_SPEEDUPS,
    THUNDERGP,
)
from repro.core.system import SystemSimulator
from repro.graph.datasets import load_dataset
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_framework

BASELINES = {"ThunderGP": THUNDERGP, "GraphLily": GRAPHLILY, "Asiatici": ASIATICI}

#: Table V rows: (baseline, app, graph key).
TABLE5_ROWS = sorted(TABLE5_PAPER_SPEEDUPS)

PR_ITERATIONS = 10


def _app_factory(app, graph):
    if app == "PR":
        return PageRank(graph)
    if app == "BFS":
        return BreadthFirstSearch(graph, root=0)
    return ClosenessCentrality(graph, root=0)


def _regraph_mteps(framework, pre, app):
    sim = SystemSimulator(pre.plan, framework.platform, framework.channel)
    instance = _app_factory(app, pre.graph)
    functional = app != "PR"
    run = sim.run(
        instance,
        max_iterations=PR_ITERATIONS if app == "PR" else None,
        functional=functional,
    )
    return run.mteps


@pytest.fixture(scope="module")
def measurements():
    graphs = sorted({key for (_b, _a, key) in TABLE5_ROWS})
    apps = sorted({a for (_b, a, _k) in TABLE5_ROWS})
    u280 = bench_framework("U280")
    u50 = bench_framework("U50")
    out = {}
    for key in graphs:
        graph = load_dataset(key, scale=BENCH_SCALE, seed=1)
        pre280 = u280.preprocess(graph)
        pre50 = u50.preprocess(graph)
        for app in apps:
            out[(app, key, "U280")] = _regraph_mteps(u280, pre280, app)
            out[(app, key, "U50")] = _regraph_mteps(u50, pre50, app)
        out[("graph", key, "obj")] = graph
    return out


def test_table5_fpga_comparison(benchmark, measurements):
    def build_rows():
        rows = []
        for baseline_name, app, key in TABLE5_ROWS:
            baseline = BASELINES[baseline_name]
            graph = measurements[("graph", key, "obj")]
            base_mteps = baseline.modeled_mteps(graph, app)
            ours280 = measurements[(app, key, "U280")]
            ours50 = measurements[(app, key, "U50")]
            paper50, paper280 = TABLE5_PAPER_SPEEDUPS[
                (baseline_name, app, key)
            ]
            rows.append(
                (
                    app,
                    baseline_name,
                    key,
                    f"{baseline.throughput_mteps(app, key, graph):.0f}",
                    f"{ours50 / base_mteps:.1f}x",
                    f"{ours280 / base_mteps:.1f}x",
                    f"{paper50}x",
                    f"{paper280}x",
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = format_table(
        ["app", "baseline", "graph", "reported MTEPS",
         "our speedup U50", "our speedup U280",
         "paper U50", "paper U280"],
        rows,
        title="Table V: ReGraph vs FPGA state-of-the-art (speedups on stand-ins)",
    )
    write_report("table5_fpga_comparison", text)

    # Shape claims: ReGraph wins every row on U280, and U280 >= U50.
    for baseline_name, app, key in TABLE5_ROWS:
        baseline = BASELINES[baseline_name]
        graph = measurements[("graph", key, "obj")]
        base = baseline.modeled_mteps(graph, app)
        ours280 = measurements[(app, key, "U280")]
        ours50 = measurements[(app, key, "U50")]
        assert ours280 > base, (baseline_name, app, key)
        assert ours280 >= 0.9 * ours50, (baseline_name, app, key)
