"""Fleet-throughput benchmark: pool-size scaling of the serving runtime.

Serves one fixed, seeded job stream (clean jobs, all submitted at t=0 so
the pool is the only bottleneck) through fleets of 1, 2 and 4 replicas
and reports jobs per *virtual* second plus p50/p99 modelled latency per
pool size.  The gate: a 4-replica pool must deliver > 1.5x the
single-replica throughput — placement and dispatch must actually use
the extra cards, not serialise onto one.

A second benchmark prices durability (``docs/DURABILITY.md``): the same
stream served with the write-ahead journal and result store attached.
Gate: without per-append fsync the *wall-clock* throughput cost stays
<= 15% of the in-memory run, and the report digest is bit-identical.
``pytest benchmarks --journal`` additionally measures the full
fsync-per-append contract, which is reported but never gated — fsync
latency is a property of the host's storage, not of this code.

A third benchmark gates *warm-start* scale-out (``docs/PERFORMANCE.md``):
the same pools served over a populated
:class:`~repro.perf.sharedcache.SharedTimingStore`, where every fresh
process/replica starts with an empty L1 but reads the shared tier.
Gates: tier-2 hits actually serve, the reports stay bit-identical to
the cold runs (the cache is an optimisation, never an observable), and
1 -> 4 replicas keeps >= 3x virtual throughput — warm-started capacity
is real capacity.

Besides the human-readable tables, the scaling benchmark persists a
machine-readable ``results/BENCH_fleet.json`` (schema
``regraph-bench-fleet/v1``, the ``BENCH_compiled.json`` precedent):
p50/p99 modelled latency per pool size, the 1->4 throughput scaling
ratio, the shed/hedge counters of a deliberately overloaded run, and
the warm scale-out block — the numbers regression dashboards diff
across commits.
"""

import json
import time
from pathlib import Path

from repro.chaos.spec import GraphSpec
from repro.fleet import (
    FleetPolicy,
    FleetRuntime,
    JobJournal,
    Job,
    ResultStore,
    make_replica,
)
from repro.reporting import format_table, write_report

POOL_SIZES = (1, 2, 4)
#: Devices by pool position: mixed U280/U50, like a real deployment.
POOL_DEVICES = ("U280", "U50", "U280", "U50")
NUM_JOBS = 24
JOB_APPS = ("pagerank", "bfs", "closeness", "wcc")
ITERATIONS = 8
MIN_SPEEDUP_1_TO_4 = 1.5

#: Versioned machine-readable output (the BENCH_compiled.json twin).
BENCH_FLEET_SCHEMA = "regraph-bench-fleet/v1"
BENCH_FLEET_JSON = Path(__file__).parent / "results" / "BENCH_fleet.json"

#: Overload scenario: the same stream squeezed through 2 replicas
#: behind a shallow admission queue, with deadlines that arm hedging.
OVERLOAD_QUEUE_DEPTH = 6
OVERLOAD_POOL_SIZE = 2
OVERLOAD_DEADLINE_SECONDS = 0.004


def _jobs():
    return [
        Job(
            job_id=f"bench{i:03d}",
            app=JOB_APPS[i % len(JOB_APPS)],
            graph=GraphSpec(
                kind="uniform",
                vertices=512 + 128 * (i % 3),
                edges=(512 + 128 * (i % 3)) * 6,
                seed=100 + i,
            ),
            max_iterations=ITERATIONS,
            submit_time=0.0,
        )
        for i in range(NUM_JOBS)
    ]


def _serve(pool_size: int):
    pool = [
        make_replica(f"r{i}", POOL_DEVICES[i % len(POOL_DEVICES)])
        for i in range(pool_size)
    ]
    runtime = FleetRuntime(
        pool, FleetPolicy(max_queue_depth=NUM_JOBS, hedge_enabled=False)
    )
    return runtime.run(_jobs())


def _overload_jobs():
    """The bench stream with a deadline on every other job."""
    from dataclasses import replace

    jobs = []
    for i, job in enumerate(_jobs()):
        if i % 2 == 0:
            job = replace(
                job, deadline_seconds=OVERLOAD_DEADLINE_SECONDS
            )
        jobs.append(job)
    return jobs


def _serve_overloaded():
    """Shallow queue + t=0 burst: sheds on purpose."""
    pool = [
        make_replica(f"r{i}", POOL_DEVICES[i % len(POOL_DEVICES)])
        for i in range(OVERLOAD_POOL_SIZE)
    ]
    runtime = FleetRuntime(
        pool,
        FleetPolicy(
            max_queue_depth=OVERLOAD_QUEUE_DEPTH, hedge_enabled=True
        ),
    )
    return runtime.run(_overload_jobs())


#: Hedge scenario: staggered arrivals on a 4-replica pool with
#: deadlines tighter than one service time, so every deadline job's
#: predicted finish misses and a backup replica is idle to race it.
HEDGE_POOL_SIZE = 4
HEDGE_SUBMIT_SPACING = 0.001
HEDGE_DEADLINE_SECONDS = 0.00002


def _serve_hedged():
    from dataclasses import replace

    pool = [
        make_replica(f"r{i}", POOL_DEVICES[i % len(POOL_DEVICES)])
        for i in range(HEDGE_POOL_SIZE)
    ]
    runtime = FleetRuntime(
        pool, FleetPolicy(max_queue_depth=NUM_JOBS, hedge_enabled=True)
    )
    jobs = [
        replace(
            job,
            submit_time=i * HEDGE_SUBMIT_SPACING,
            deadline_seconds=HEDGE_DEADLINE_SECONDS,
        )
        for i, job in enumerate(_jobs())
    ]
    return runtime.run(jobs)


def _pool_stats(report) -> dict:
    latency = report.latency_percentiles()
    return {
        "completed": report.completed,
        "jobs_per_second_virtual": report.jobs_per_second,
        "makespan_seconds": report.makespan_seconds,
        "p50_latency_seconds": latency["p50"],
        "p99_latency_seconds": latency["p99"],
    }


def _write_bench_json(reports, overload_report, hedge_report) -> None:
    counters = overload_report.counters
    hedge_counters = hedge_report.counters
    payload = {
        "schema": BENCH_FLEET_SCHEMA,
        "jobs": NUM_JOBS,
        "iterations": ITERATIONS,
        "pool_devices": list(POOL_DEVICES),
        "pools": {
            str(size): _pool_stats(reports[size]) for size in POOL_SIZES
        },
        "scaling_ratio_1_to_4": (
            reports[4].jobs_per_second / reports[1].jobs_per_second
        ),
        "overload": {
            "replicas": OVERLOAD_POOL_SIZE,
            "max_queue_depth": OVERLOAD_QUEUE_DEPTH,
            "deadline_seconds": OVERLOAD_DEADLINE_SECONDS,
            **_pool_stats(overload_report),
            "shed": overload_report.rejected,
            "admission": dict(overload_report.admission),
            "hedges": counters.get("hedges", 0),
            "hedge_wins": counters.get("hedge_wins", 0),
        },
        "hedged": {
            "replicas": HEDGE_POOL_SIZE,
            "submit_spacing_seconds": HEDGE_SUBMIT_SPACING,
            "deadline_seconds": HEDGE_DEADLINE_SECONDS,
            **_pool_stats(hedge_report),
            "hedges": hedge_counters.get("hedges", 0),
            "hedge_wins": hedge_counters.get("hedge_wins", 0),
        },
    }
    BENCH_FLEET_JSON.parent.mkdir(parents=True, exist_ok=True)
    with open(BENCH_FLEET_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_fleet_throughput_scaling(benchmark):
    reports = {}
    extra = []

    def run_all():
        reports.clear()
        extra.clear()
        for size in POOL_SIZES:
            reports[size] = _serve(size)
        extra.append(_serve_overloaded())
        extra.append(_serve_hedged())
        return reports

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for size in POOL_SIZES:
        report = reports[size]
        latency = report.latency_percentiles()
        rows.append([
            str(size),
            f"{report.completed}/{NUM_JOBS}",
            f"{report.jobs_per_second:,.0f}",
            f"{report.makespan_seconds * 1e3:.2f}",
            f"{latency['p50'] * 1e3:.2f}",
            f"{latency['p99'] * 1e3:.2f}",
        ])
    text = format_table(
        ["replicas", "completed", "jobs/s (virtual)", "makespan ms",
         "p50 ms", "p99 ms"],
        rows,
        title=f"fleet throughput: {NUM_JOBS} clean jobs, "
              f"pool sizes {'/'.join(map(str, POOL_SIZES))}",
    )
    write_report("fleet_throughput", text)

    for size, report in reports.items():
        assert report.completed == NUM_JOBS, (size, report.to_dict())
        assert report.passed, size
    # The scaling gate: 4 replicas must beat 1 by a real margin.
    speedup = reports[4].jobs_per_second / reports[1].jobs_per_second
    assert speedup > MIN_SPEEDUP_1_TO_4, (
        f"1 -> 4 replicas sped throughput up only {speedup:.2f}x"
    )
    # More replicas never slows the fleet down.
    assert reports[2].jobs_per_second >= reports[1].jobs_per_second

    # The versioned machine-readable record (regraph-bench-fleet/v1).
    overload_report, hedge_report = extra
    _write_bench_json(reports, overload_report, hedge_report)
    data = json.loads(BENCH_FLEET_JSON.read_text())
    assert data["schema"] == BENCH_FLEET_SCHEMA
    assert data["scaling_ratio_1_to_4"] > MIN_SPEEDUP_1_TO_4
    # The shallow queue must actually shed under a t=0 burst; every
    # non-shed job still finishes (shedding is the only loss mode).
    assert data["overload"]["shed"] > 0, overload_report.to_dict()
    assert (
        overload_report.completed + overload_report.rejected == NUM_JOBS
    ), overload_report.to_dict()
    # Impossible deadlines + idle backups must arm hedged execution.
    assert data["hedged"]["hedges"] > 0, hedge_report.to_dict()
    print(f"BENCH_fleet.json: scaling {data['scaling_ratio_1_to_4']:.2f}x, "
          f"overload shed {data['overload']['shed']}, "
          f"hedges {data['hedged']['hedges']} "
          f"({data['hedged']['hedge_wins']} won)")


#: Warm scale-out gate: with the shared cache populated, 4 replicas
#: must deliver >= 3x the single-replica virtual throughput.
WARM_MIN_SPEEDUP_1_TO_4 = 3.0


def test_fleet_warm_cache_scaleout(benchmark, tmp_path):
    """Warm-start scale-out efficiency over the shared timing store."""
    from repro.perf.simcache import configure_cache, get_cache

    results = {}

    def run_all():
        results.clear()
        cache = get_cache()
        saved = (cache.enabled, cache.max_entries, cache.shared)
        try:
            # Cold references: single-tier cache, empty per pool size.
            configure_cache(enabled=True, shared_dir=None)
            for size in (1, 4):
                get_cache().clear()
                results[f"cold{size}"] = _serve(size)
            # Seed the shared store write-through, then serve each pool
            # size from an empty L1 over the populated store — the
            # position every freshly spawned warm-start replica is in.
            configure_cache(shared_dir=tmp_path / "shared-cache")
            get_cache().clear()
            _serve(1)
            results["entries_seeded"] = len(get_cache().shared)
            for size in (1, 4):
                get_cache().clear()
                results[f"warm{size}"] = _serve(size)
                results[f"tier2_hits_{size}"] = get_cache().tier2_hits
            results["store_stats"] = get_cache().shared.stats()
        finally:
            cache = get_cache()
            cache.enabled, cache.max_entries, cache.shared = saved
            cache.clear()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The store was populated and the warm runs actually served from it.
    assert results["entries_seeded"] > 0
    for size in (1, 4):
        assert results[f"tier2_hits_{size}"] > 0, size
        # Tiering is invisible: warm reports are bit-identical to cold.
        assert (
            results[f"warm{size}"].digest()
            == results[f"cold{size}"].digest()
        ), size
        assert results[f"warm{size}"].completed == NUM_JOBS
    # No quarantines on a healthy store.
    assert results["store_stats"]["quarantined"] == 0

    warm_speedup = (
        results["warm4"].jobs_per_second / results["warm1"].jobs_per_second
    )
    assert warm_speedup >= WARM_MIN_SPEEDUP_1_TO_4, (
        f"warm 1 -> 4 replicas scaled only {warm_speedup:.2f}x "
        f"(gate: {WARM_MIN_SPEEDUP_1_TO_4:.1f}x)"
    )

    # Merge the warm block into BENCH_fleet.json (the scaling test
    # writes the base payload earlier in this module's run order).
    if BENCH_FLEET_JSON.exists():
        payload = json.loads(BENCH_FLEET_JSON.read_text())
    else:
        payload = {"schema": BENCH_FLEET_SCHEMA, "jobs": NUM_JOBS}
    payload["warm_scaleout"] = {
        "entries_seeded": results["entries_seeded"],
        "tier2_hits": {
            "1": results["tier2_hits_1"],
            "4": results["tier2_hits_4"],
        },
        "pools": {
            str(size): _pool_stats(results[f"warm{size}"])
            for size in (1, 4)
        },
        "scaling_ratio_1_to_4": warm_speedup,
        "min_scaling_gate": WARM_MIN_SPEEDUP_1_TO_4,
        "digests_match_cold": True,
    }
    BENCH_FLEET_JSON.parent.mkdir(parents=True, exist_ok=True)
    with open(BENCH_FLEET_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"warm scale-out: {warm_speedup:.2f}x at 1->4 replicas, "
          f"{results['entries_seeded']} shared entries, "
          f"tier-2 hits {results['tier2_hits_1']}/{results['tier2_hits_4']}")


JOURNAL_POOL_SIZE = 2
#: Wall-clock rounds per mode; min-of-rounds damps scheduler noise.
JOURNAL_ROUNDS = 3
MAX_JOURNAL_OVERHEAD = 0.15


def _serve_durable(workdir, fsync):
    """One journaled+stored serve; ``workdir=None`` is the in-memory run."""
    pool = [
        make_replica(f"r{i}", POOL_DEVICES[i % len(POOL_DEVICES)])
        for i in range(JOURNAL_POOL_SIZE)
    ]
    journal = store = None
    if workdir is not None:
        workdir.mkdir(parents=True, exist_ok=True)
        journal = JobJournal(workdir / "fleet.journal", fsync=fsync)
        store = ResultStore(workdir / "results.jsonl", fsync=fsync)
    runtime = FleetRuntime(
        pool,
        FleetPolicy(max_queue_depth=NUM_JOBS, hedge_enabled=False),
        journal=journal,
        store=store,
    )
    report = runtime.run(_jobs())
    if journal is not None:
        journal.close()
    if store is not None:
        store.close()
    return report


def _time_mode(tmp_path, mode, fsync):
    """Min-of-rounds wall-clock for one durability mode.

    Each round writes into a fresh directory: an existing journal would
    be *continued* (its tail re-read for the next sequence number),
    which is recovery behaviour, not steady-state appending.
    """
    best = float("inf")
    report = None
    for round_index in range(JOURNAL_ROUNDS):
        workdir = (
            None if mode == "in-memory"
            else tmp_path / f"{mode}-{round_index}"
        )
        start = time.perf_counter()
        report = _serve_durable(workdir, fsync)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_fleet_journal_overhead(benchmark, tmp_path, request):
    """Durability price: journaled serving vs in-memory (see module doc)."""
    with_fsync = request.config.getoption("--journal")
    modes = [("in-memory", False), ("journal", False)]
    if with_fsync:
        modes.append(("journal+fsync", True))

    timings = {}

    def run_all():
        timings.clear()
        # One untimed warmup so the first-timed mode doesn't pay the
        # import/allocation cold start for everyone.
        _serve_durable(None, False)
        for mode, fsync in modes:
            timings[mode] = _time_mode(tmp_path, mode, fsync)
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_wall, base_report = timings["in-memory"]
    rows = []
    for mode, _ in modes:
        wall, report = timings[mode]
        overhead = wall / base_wall - 1.0
        rows.append([
            mode,
            f"{wall * 1e3:.1f}",
            f"{NUM_JOBS / wall:,.0f}",
            f"{overhead * 100:+.1f}%",
            "yes" if report.digest() == base_report.digest() else "NO",
        ])
    text = format_table(
        ["mode", "wall ms (min)", "jobs/s (wall)", "overhead",
         "digest match"],
        rows,
        title=(
            f"journal overhead: {NUM_JOBS} clean jobs, "
            f"{JOURNAL_POOL_SIZE} replicas, min of {JOURNAL_ROUNDS} rounds"
            + ("" if with_fsync else " (--journal adds the fsync mode)")
        ),
    )
    write_report("fleet_journal_overhead", text)

    # Durability must not change the served outcome at all.
    journal_wall, journal_report = timings["journal"]
    assert journal_report.digest() == base_report.digest()
    assert journal_report.completed == NUM_JOBS
    # The gate: write-ahead journaling (sans fsync) is nearly free.
    overhead = journal_wall / base_wall - 1.0
    assert overhead <= MAX_JOURNAL_OVERHEAD, (
        f"journaling cost {overhead * 100:.1f}% wall-clock "
        f"(gate: {MAX_JOURNAL_OVERHEAD * 100:.0f}%)"
    )
