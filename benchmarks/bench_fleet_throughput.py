"""Fleet-throughput benchmark: pool-size scaling of the serving runtime.

Serves one fixed, seeded job stream (clean jobs, all submitted at t=0 so
the pool is the only bottleneck) through fleets of 1, 2 and 4 replicas
and reports jobs per *virtual* second plus p50/p99 modelled latency per
pool size.  The gate: a 4-replica pool must deliver > 1.5x the
single-replica throughput — placement and dispatch must actually use
the extra cards, not serialise onto one.
"""

from repro.chaos.spec import GraphSpec
from repro.fleet import FleetPolicy, FleetRuntime, Job, make_replica
from repro.reporting import format_table, write_report

POOL_SIZES = (1, 2, 4)
#: Devices by pool position: mixed U280/U50, like a real deployment.
POOL_DEVICES = ("U280", "U50", "U280", "U50")
NUM_JOBS = 24
JOB_APPS = ("pagerank", "bfs", "closeness", "wcc")
ITERATIONS = 8
MIN_SPEEDUP_1_TO_4 = 1.5


def _jobs():
    return [
        Job(
            job_id=f"bench{i:03d}",
            app=JOB_APPS[i % len(JOB_APPS)],
            graph=GraphSpec(
                kind="uniform",
                vertices=512 + 128 * (i % 3),
                edges=(512 + 128 * (i % 3)) * 6,
                seed=100 + i,
            ),
            max_iterations=ITERATIONS,
            submit_time=0.0,
        )
        for i in range(NUM_JOBS)
    ]


def _serve(pool_size: int):
    pool = [
        make_replica(f"r{i}", POOL_DEVICES[i % len(POOL_DEVICES)])
        for i in range(pool_size)
    ]
    runtime = FleetRuntime(
        pool, FleetPolicy(max_queue_depth=NUM_JOBS, hedge_enabled=False)
    )
    return runtime.run(_jobs())


def test_fleet_throughput_scaling(benchmark):
    reports = {}

    def run_all():
        reports.clear()
        for size in POOL_SIZES:
            reports[size] = _serve(size)
        return reports

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for size in POOL_SIZES:
        report = reports[size]
        latency = report.latency_percentiles()
        rows.append([
            str(size),
            f"{report.completed}/{NUM_JOBS}",
            f"{report.jobs_per_second:,.0f}",
            f"{report.makespan_seconds * 1e3:.2f}",
            f"{latency['p50'] * 1e3:.2f}",
            f"{latency['p99'] * 1e3:.2f}",
        ])
    text = format_table(
        ["replicas", "completed", "jobs/s (virtual)", "makespan ms",
         "p50 ms", "p99 ms"],
        rows,
        title=f"fleet throughput: {NUM_JOBS} clean jobs, "
              f"pool sizes {'/'.join(map(str, POOL_SIZES))}",
    )
    write_report("fleet_throughput", text)

    for size, report in reports.items():
        assert report.completed == NUM_JOBS, (size, report.to_dict())
        assert report.passed, size
    # The scaling gate: 4 replicas must beat 1 by a real margin.
    speedup = reports[4].jobs_per_second / reports[1].jobs_per_second
    assert speedup > MIN_SPEEDUP_1_TO_4, (
        f"1 -> 4 replicas sped throughput up only {speedup:.2f}x"
    )
    # More replicas never slows the fleet down.
    assert reports[2].jobs_per_second >= reports[1].jobs_per_second
