"""Design-space sensitivity: how each pipeline knob moves performance.

Sweeps the Sec. VI-A parameter choices (PE counts, Gather buffer size,
Ping-Pong Buffer size) around their defaults and reports the estimated
iteration makespan of the scheduled design — the data behind statements
like "the numbers of Scatter PEs and Gather PEs of a pipeline are set to
eight" (to saturate one channel) and "the size of the Ping-Pong Buffer
is 32KB".
"""

import pytest

from repro.graph.datasets import load_dataset
from repro.model.sweep import sensitivity_report
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_pipeline_config


@pytest.fixture(scope="module")
def graph():
    return load_dataset("PK", scale=BENCH_SCALE, seed=1)


def test_parameter_sensitivity(benchmark, graph):
    base = bench_pipeline_config()

    def run():
        return sensitivity_report(graph, base, num_pipelines=8)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, points in report.items():
        baseline = next(
            (p for p in points if p.value == getattr(base, name)), points[0]
        )
        for p in points:
            rows.append(
                (
                    name,
                    p.value,
                    f"{p.makespan_cycles:.0f}",
                    p.num_partitions,
                    p.combo_label,
                    f"{p.speedup_over(baseline):.2f}x",
                )
            )
    text = format_table(
        ["parameter", "value", "est. makespan", "partitions",
         "combo", "vs default"],
        rows,
        title="Sensitivity: estimated makespan vs pipeline parameters (PK)",
    )
    write_report("sensitivity_parameters", text)

    # Doubling PEs beyond the channel's 8-edges-per-block rate buys
    # little: the default 8 is within 25% of the best swept value.
    for name in ("n_spe", "n_gpe"):
        points = report[name]
        best = min(p.makespan_cycles for p in points)
        default = next(
            p.makespan_cycles for p in points
            if p.value == getattr(base, name)
        )
        assert default <= 1.25 * best, name

    # Halving PE counts to 2 hurts clearly (the edge stream outruns the
    # PEs at 8 edges per block).
    two_spe = next(p for p in report["n_spe"] if p.value == 2)
    default_spe = next(
        p for p in report["n_spe"]
        if p.value == base.n_spe
    )
    assert two_spe.makespan_cycles > 1.5 * default_spe.makespan_cycles