"""Chaos-soak benchmark: campaign survival and resilience overhead.

Runs one bounded seeded campaign per intensity preset and reports, per
intensity: survival rate, how many cells actually absorbed faults, the
fault/retry/re-plan/breaker-trip totals, and the mean resilience
overhead across fault-hit cells.  The light campaign doubles as the
survival gate — the survivable fault envelope must yield zero failures.
"""

from repro.chaos import CampaignConfig, generate_cells, run_cell
from repro.reporting import format_table, write_report

CAMPAIGN_SEED = 11
CELLS_PER_INTENSITY = 12


def _soak(intensity: str):
    config = CampaignConfig(
        seed=CAMPAIGN_SEED, cells=CELLS_PER_INTENSITY, intensity=intensity
    )
    return [run_cell(cell) for cell in generate_cells(config)]


def test_chaos_soak_survival(benchmark):
    results = {}

    def run_all():
        results.clear()
        for intensity in ("light", "moderate", "heavy"):
            results[intensity] = _soak(intensity)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for intensity, cell_results in results.items():
        survived = sum(r.survived for r in cell_results)
        faults = sum(len(r.health.get("faults", [])) for r in cell_results)
        hit = [r for r in cell_results if r.health.get("faults")]
        retries = sum(r.health.get("retries", 0) for r in cell_results)
        replans = sum(r.health.get("replans", 0) for r in cell_results)
        trips = sum(r.health.get("breaker_trips", 0) for r in cell_results)
        overhead = (
            sum(r.health.get("overhead_cycles", 0.0) for r in hit)
            / max(sum(
                r.total_cycles - r.health.get("overhead_cycles", 0.0)
                for r in hit
            ), 1.0)
        )
        rows.append([
            intensity,
            f"{survived}/{len(cell_results)}",
            str(len(hit)),
            str(faults),
            str(retries),
            str(replans),
            str(trips),
            f"{overhead:.1%}",
        ])
    text = format_table(
        ["intensity", "survived", "fault-hit cells", "faults",
         "retries", "re-plans", "breaker trips", "overhead"],
        rows,
        title=f"chaos soak: {CELLS_PER_INTENSITY} cells/intensity, "
              f"seed {CAMPAIGN_SEED}",
    )
    write_report("chaos_soak", text)

    # The survivable envelope means exactly that: no failures, at any
    # intensity, and breaker state present on every single cell.
    for intensity, cell_results in results.items():
        for result in cell_results:
            assert result.survived, (intensity, result.cell_id, result.detail)
            assert result.health.get("channel_breakers"), result.cell_id
    # Escalating intensity must actually escalate injected pressure.
    light = sum(len(r.health.get("faults", [])) for r in results["light"])
    heavy = sum(len(r.health.get("faults", [])) for r in results["heavy"])
    assert heavy >= light
