"""Fig. 10: PR performance across pipeline combinations (M Little, N Big).

Sweeps every combination at benchmark scale, highlighting the paper's
three observations: (1) the best combination is always mixed, (2) the
framework's model-guided selection lands close to the best (~92% on
average), (3) synthetic RMAT graphs want more Little pipelines than
real-world graphs.
"""

import pytest

from repro.apps.pagerank import PageRank
from repro.core.system import SystemSimulator
from repro.sched.scheduler import build_schedule
from repro.reporting import format_table, write_report

from conftest import SWEEP_GRAPHS, bench_framework

#: Pipelines swept at bench scale (14 on the real U280).
NUM_PIPELINES = 8

PR_ITERATIONS = 5


def _mteps(framework, plan, graph):
    sim = SystemSimulator(plan, framework.platform, framework.channel)
    run = sim.run(
        PageRank(graph), max_iterations=PR_ITERATIONS, functional=False
    )
    return run.mteps


def _sweep(framework, pre):
    """MTEPS for every forced combination plus the selected one."""
    per_combo = {}
    for m in range(NUM_PIPELINES + 1):
        plan = build_schedule(
            pre.pset,
            framework.model,
            NUM_PIPELINES,
            forced_combo=(m, NUM_PIPELINES - m),
        )
        per_combo[f"{m}L{NUM_PIPELINES - m}B"] = _mteps(
            framework, plan, pre.graph
        )
    selected = _mteps(framework, pre.plan, pre.graph)
    return per_combo, selected


@pytest.fixture(scope="module")
def framework():
    return bench_framework("U280", num_pipelines=NUM_PIPELINES)


def test_fig10_pipeline_combinations(benchmark, framework, datasets):
    results = {}

    def run_all():
        results.clear()
        for key in SWEEP_GRAPHS:
            pre = framework.preprocess(datasets[key])
            results[key] = (_sweep(framework, pre), pre.plan.accelerator.label)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    combos = [f"{m}L{NUM_PIPELINES - m}B" for m in range(NUM_PIPELINES + 1)]
    rows = []
    for key, ((per_combo, selected), label) in results.items():
        best_combo = max(per_combo, key=per_combo.get)
        rows.append(
            [key]
            + [f"{per_combo[c]:.0f}" for c in combos]
            + [label, best_combo, f"{selected / per_combo[best_combo]:.0%}"]
        )
    text = format_table(
        ["graph"] + combos + ["selected", "best", "sel/best"],
        rows,
        title=f"Fig. 10: PR MTEPS vs pipeline combination ({NUM_PIPELINES} pipelines)",
    )
    write_report("fig10_heterogeneity", text)

    ratios = []
    for key, ((per_combo, selected), _label) in results.items():
        best_combo = max(per_combo, key=per_combo.get)
        homog = {c for c in combos if c.startswith("0L") or c.endswith("0B")}
        # (1) Mixed beats homogeneous on skewed graphs.
        assert best_combo not in homog, key
        # (2) Selection quality.
        ratios.append(selected / per_combo[best_combo])
    assert sum(ratios) / len(ratios) > 0.80
