"""Fig. 2: workload characteristics of graph partitions with DBG.

For R24, G23, HD and WP stand-ins, profiles the percentage of edges and
of accessed source vertices per partition, with and without DBG, and
checks the dense-head / sparse-tail structure the figure shows.
"""

import pytest

from repro.graph.datasets import load_dataset
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping, identity_ordering
from repro.graph.stats import diversity_summary, profile_partitions
from repro.reporting import format_table, write_report

from conftest import BENCH_BUFFER_U280, BENCH_SCALE

FIG2_GRAPHS = ("R24", "G23", "HD", "WP")


def _profile(graph, reorder):
    res = reorder(graph)
    pset = partition_graph(res.graph, BENCH_BUFFER_U280)
    return profile_partitions(pset)


def _build_report(graphs) -> str:
    sections = []
    for key, graph in graphs.items():
        profiles = _profile(graph, degree_based_grouping)
        rows = [
            (p.index, p.num_edges, f"{p.edge_percent:.2f}%",
             f"{p.src_percent:.2f}%")
            for p in profiles[:6]
        ]
        if len(profiles) > 6:
            tail = profiles[-1]
            rows.append(("...", "...", "...", "..."))
            rows.append(
                (tail.index, tail.num_edges, f"{tail.edge_percent:.2f}%",
                 f"{tail.src_percent:.2f}%")
            )
        summary = diversity_summary(profiles)
        sections.append(
            format_table(
                ["partition", "edges", "% edges", "% src accessed"],
                rows,
                title=(
                    f"{key} (DBG): {len(profiles)} non-empty partitions, "
                    f"imbalance {summary['imbalance']:.1f}x"
                ),
            )
        )
    return "\n\n".join(sections)


@pytest.fixture(scope="module")
def fig2_graphs():
    return {
        key: load_dataset(key, scale=BENCH_SCALE, seed=1)
        for key in FIG2_GRAPHS
    }


def test_fig2_partition_diversity(benchmark, fig2_graphs):
    text = benchmark(_build_report, fig2_graphs)
    write_report("fig2_workload_characteristics", text)

    for key, graph in fig2_graphs.items():
        profiles = _profile(graph, degree_based_grouping)
        # Dense head: the first partition concentrates edges and sources.
        assert profiles[0].edge_percent > 5.0, key
        # Sparse tail: the last partition is much lighter than the head.
        assert profiles[-1].edge_percent < profiles[0].edge_percent / 2, key
        # Diversity: orders of magnitude between head and median.
        assert diversity_summary(profiles)["imbalance"] > 3.0, key


def test_fig2_dbg_vs_no_dbg(benchmark, fig2_graphs):
    """DBG concentrates the head; without it dense partitions scatter."""

    def profile_all():
        return {
            key: (
                _profile(graph, degree_based_grouping),
                _profile(graph, identity_ordering),
            )
            for key, graph in fig2_graphs.items()
        }

    profiles = benchmark.pedantic(profile_all, rounds=1, iterations=1)
    for key, (with_dbg, without) in profiles.items():
        head_with = max(p.edge_percent for p in with_dbg[:2])
        head_without = max(p.edge_percent for p in without)
        assert head_with >= 0.9 * head_without, key
