"""Table I: resource utilisation of existing designs vs HBM channels.

Regenerates the projection showing every prior design exceeds the U280's
resources at or before 8 channels, and contrasts it with ReGraph's
per-pipeline cost, which fits 14 pipelines comfortably.
"""

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.arch.resources import report
from repro.baselines.resource_table import (
    TABLE1_CHANNELS,
    TABLE1_DESIGNS,
    feasible_channel_summary,
    table1_rows,
)
from repro.reporting import format_table, write_report


def _build_report() -> str:
    headers = ["Design", "Resource"] + [
        f"{ch}CH ({bw:.0f}GB/s)" for ch, bw in TABLE1_CHANNELS
    ] + ["paper cells"]
    rows = []
    for name, res, projected, paper in table1_rows():
        rows.append([name, res] + [f"{p}%" for p in projected] + [str(paper)])

    # ReGraph's own cost per pipeline-channel for contrast (Sec. VI-D).
    u280 = get_platform("U280")
    accel = AcceleratorConfig(7, 7, PipelineConfig(gather_buffer_vertices=65_536))
    rep = report(accel, u280)
    per_channel = 100 * rep.lut_util / accel.total_pipelines
    rows.append(
        ["ReGraph (ours, 7L7B)", "LUT"]
        + [f"{per_channel * ch:.1f}%" for ch, _ in TABLE1_CHANNELS]
        + ["~30% at 14 pipelines"]
    )

    table = format_table(headers, rows, title="Table I: projected utilisation")
    summary = format_table(
        ["Design", "max feasible channels (<80% LUT)"],
        sorted(feasible_channel_summary().items()),
        title="Feasible channel counts",
    )
    return table + "\n\n" + summary


def test_table1_projection_regenerates(benchmark):
    text = benchmark(_build_report)
    write_report("table1_resource_scaling", text)
    # Shape claims: every prior design exceeds the device at 8 channels.
    for design in TABLE1_DESIGNS:
        assert design.utilization(8) > 1.0
    # ReGraph's 14-pipeline design stays around 30% LUT.
    accel = AcceleratorConfig(7, 7, PipelineConfig(gather_buffer_vertices=65_536))
    assert report(accel, get_platform("U280")).lut_util < 0.40
