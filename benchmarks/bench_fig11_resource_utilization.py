"""Fig. 11: resource utilisation and frequency per pipeline combination.

Regenerates the full-scale (U280, 65,536-vertex buffers) resource table
for all fifteen combinations and checks the paper's observations: ~30%
LUT at the performant mixed points, <50% BRAM, URAM pinned near 96%,
LUT falling / BRAM rising with more Little pipelines, frequency always
above 210 MHz.
"""

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.arch.resources import report
from repro.reporting import format_table, write_report

FULL_CONFIG = PipelineConfig(gather_buffer_vertices=65_536)
U280 = get_platform("U280")


def _reports():
    out = {}
    for m in range(15):
        accel = AcceleratorConfig(m, 14 - m, FULL_CONFIG)
        out[accel.label] = report(accel, U280)
    return out


def test_fig11_resource_utilization(benchmark):
    reports = benchmark(_reports)
    rows = [
        (
            label,
            f"{r.lut_util:.1%}",
            f"{r.ff_util:.1%}",
            f"{r.bram_util:.1%}",
            f"{r.uram_util:.1%}",
            f"{r.frequency_mhz:.0f}",
        )
        for label, r in reports.items()
    ]
    text = format_table(
        ["combo", "LUT", "FF", "BRAM", "URAM", "freq MHz"],
        rows,
        title="Fig. 11: PR implementations on U280 (full scale)",
    )
    write_report("fig11_resource_utilization", text)

    r77 = reports["7L7B"]
    assert 0.25 < r77.lut_util < 0.36          # "around 30% of LUTs"
    assert r77.bram_util < 0.50                # "less than 50% of BRAMs"
    assert 0.90 < r77.uram_util < 1.00         # "constantly 96%"

    labels = list(reports)
    luts = [reports[l].lut_util for l in labels]
    brams = [reports[l].bram_util for l in labels]
    assert all(a >= b for a, b in zip(luts, luts[1:]))    # LUT falls with M
    assert all(a <= b for a, b in zip(brams, brams[1:]))  # BRAM rises with M
    assert all(r.frequency_mhz > 210 for r in reports.values())
