"""Fig. 9: measured vs estimated execution time of Big/Little pipelines.

Per group of eight partitions (Big executes eight per execution), runs
the cycle-level simulators ("measured") and the Eq. 1-4 analytic model
("estimated") for PR on four graphs, reporting per-group times and the
average error ratio.  The paper's error bands: 4% (Big) and 6% (Little).
"""

import numpy as np
import pytest

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.graph.datasets import load_dataset
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_pipeline_config

FIG9_GRAPHS = ("R21", "HD", "PK", "HW")


@pytest.fixture(scope="module")
def setup():
    config = bench_pipeline_config()
    channel = HbmChannelModel()
    return {
        "config": config,
        "channel": channel,
        "big": BigPipelineSim(config, channel),
        "little": LittlePipelineSim(config, channel),
        "model": calibrate_performance_model(config, channel),
    }


def _groups(graph, config):
    pset = partition_graph(
        degree_based_grouping(graph).graph, config.gather_buffer_vertices
    )
    parts = pset.nonempty()
    n = config.n_gpe
    return [parts[i : i + n] for i in range(0, len(parts), n)]


def _run_graph(key, setup):
    graph = load_dataset(key, scale=BENCH_SCALE, seed=1)
    rows, err_big, err_little = [], [], []
    for gi, group in enumerate(_groups(graph, setup["config"])):
        sim_big = setup["big"].execute(group)[0].total_cycles
        sim_little = sum(
            setup["little"].execute(p)[0].total_cycles for p in group
        )
        est_big = setup["model"].estimate_big_group([p.src for p in group])
        est_little = sum(
            setup["model"].estimate_little_execution(p.src) for p in group
        )
        err_big.append(abs(est_big - sim_big) / sim_big)
        err_little.append(abs(est_little - sim_little) / sim_little)
        rows.append(
            (
                f"{key}/g{gi}",
                sum(p.num_edges for p in group),
                f"{sim_little:.0f}",
                f"{est_little:.0f}",
                f"{sim_big:.0f}",
                f"{est_big:.0f}",
                "Little" if sim_little < sim_big else "Big",
            )
        )
    return rows, float(np.mean(err_big)), float(np.mean(err_little))


def test_fig9_model_vs_measured(benchmark, setup):
    all_rows, errs_b, errs_l = [], [], []

    def run_all():
        all_rows.clear(), errs_b.clear(), errs_l.clear()
        for key in FIG9_GRAPHS:
            rows, eb, el = _run_graph(key, setup)
            all_rows.extend(rows)
            errs_b.append(eb)
            errs_l.append(el)
        return all_rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["group (8 parts)", "edges", "Little sim", "Little est",
         "Big sim", "Big est", "faster"],
        all_rows,
        title=(
            "Fig. 9: per-group cycles, PR, single pipeline "
            f"(avg err: Big {np.mean(errs_b):.1%}, "
            f"Little {np.mean(errs_l):.1%}; paper: 4% / 6%)"
        ),
    )
    write_report("fig9_model_accuracy", text)

    # Error bands in the paper's neighbourhood.
    assert np.mean(errs_b) < 0.12
    assert np.mean(errs_l) < 0.12
    # Crossover: the first group prefers Little, the last prefers Big.
    assert all_rows[0][-1] == "Little"
    assert all_rows[-1][-1] == "Big"
