"""Table IV: preprocessing time (DBG; partitioning & scheduling).

Measures single-thread preprocessing wall-clock for every Table III
stand-in at benchmark scale, next to the paper's reported milliseconds
(measured on a Xeon Gold 6248R at full scale).  The claim reproduced is
the *complexity shape*: O(V) grouping plus O(E)-dominated partitioning
and scheduling, i.e. time tracks graph size and DBG stays the cheaper
phase overall.
"""

import time

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, load_dataset
from repro.reporting import format_table, write_report

from conftest import BENCH_SCALE, bench_framework

#: Paper-reported (DBG ms, partition+schedule ms) per graph, Table IV.
PAPER_TABLE4 = {
    "R19": (3.4, 168.9), "R21": (14.2, 719.6), "R24": (111.2, 4054.1),
    "G23": (29.9, 2943.3), "GG": (9.6, 66.1), "AM": (7.3, 57.0),
    "HD": (12.6, 171.1), "BB": (18.8, 229.4), "TC": (13.9, 357.1),
    "PK": (14.9, 318.9), "FU": (10.8, 436.5), "WP": (28.9, 508.9),
    "LJ": (34.3, 996.3), "HW": (7.3, 1290.4), "DB": (131.0, 2842.9),
    "OR": (30.9, 2977.1),
}

#: Subset benchmarked (keeps the suite fast; all 16 keys work).
TABLE4_GRAPHS = (
    "R19", "R21", "GG", "AM", "HD", "BB", "TC", "PK", "FU", "WP", "HW", "OR",
)


@pytest.fixture(scope="module")
def framework():
    return bench_framework("U280")


def _preprocess_times(framework, graph):
    t0 = time.perf_counter()
    pre = framework.preprocess(graph)
    total = time.perf_counter() - t0
    return pre.dbg_seconds * 1e3, pre.schedule_seconds * 1e3, total * 1e3


def test_table4_preprocessing_cost(benchmark, framework):
    graphs = {
        key: load_dataset(key, scale=BENCH_SCALE, seed=1)
        for key in TABLE4_GRAPHS
    }
    # Warm the calibrated model so scheduling times exclude calibration.
    framework.model
    results = {}

    def run_all():
        results.clear()
        for key, graph in graphs.items():
            results[key] = _preprocess_times(framework, graph)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for key, (dbg_ms, sched_ms, _total) in results.items():
        paper_dbg, paper_sched = PAPER_TABLE4[key]
        rows.append(
            (key, graphs[key].num_edges, f"{dbg_ms:.1f}", f"{sched_ms:.1f}",
             paper_dbg, paper_sched)
        )
    text = format_table(
        ["graph", "edges (scaled)", "DBG ms (ours)",
         "part+sched ms (ours)", "DBG ms (paper)", "part+sched ms (paper)"],
        rows,
        title=f"Table IV: preprocessing at scale {BENCH_SCALE:.3f}",
    )
    write_report("table4_preprocessing", text)

    # Shape checks: preprocessing stays lightweight and scales with E.
    edges = np.array([graphs[k].num_edges for k in results])
    sched = np.array([results[k][1] for k in results])
    assert np.all(sched < 60_000)  # everything well under a minute
    # Larger graphs cost more: positive correlation between E and time.
    corr = np.corrcoef(edges, sched)[0, 1]
    assert corr > 0.5
