"""Fig. 12: PR performance with a varying total number of pipelines.

Sweeps pipeline counts at bench scale and reproduces the shape: skewed /
high-average-degree graphs scale well; super sparse graphs saturate
because partition-switch overheads dominate.  Out-of-memory points are
determined from the *published* full-size dataset footprints against the
256 MB-per-channel HBM capacity.
"""

import pytest

from repro.apps.pagerank import PageRank
from repro.core.system import SystemSimulator
from repro.graph.datasets import DATASETS
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES
from repro.reporting import format_table, write_report

from conftest import SWEEP_GRAPHS, bench_framework

PIPELINE_COUNTS = (2, 4, 8, 14)
PR_ITERATIONS = 5


def _full_size_oom(key: str, num_pipelines: int) -> bool:
    """OoM check using the published V/E (one channel pair per pipeline)."""
    spec = DATASETS[key]
    channels = 2 * num_pipelines
    per_channel = (
        2 * spec.num_vertices * 4
        + spec.num_edges * 8 / max(channels, 1)
    )
    return per_channel > CHANNEL_CAPACITY_BYTES


def _mteps(graph, num_pipelines):
    fw = bench_framework("U280", num_pipelines=num_pipelines)
    pre = fw.preprocess(graph)
    sim = SystemSimulator(pre.plan, fw.platform, fw.channel)
    run = sim.run(
        PageRank(pre.graph), max_iterations=PR_ITERATIONS, functional=False
    )
    return run.mteps


def test_fig12_scalability(benchmark, datasets):
    results = {}

    def run_all():
        results.clear()
        for key in SWEEP_GRAPHS:
            series = []
            for n in PIPELINE_COUNTS:
                if _full_size_oom(key, n):
                    series.append(None)
                else:
                    series.append(_mteps(datasets[key], n))
            results[key] = series
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for key, series in results.items():
        cells = ["OoM" if v is None else f"{v:.0f}" for v in series]
        valid = [v for v in series if v is not None]
        scaling = valid[-1] / valid[0] if len(valid) > 1 else float("nan")
        rows.append([key] + cells + [f"{scaling:.1f}x"])
    text = format_table(
        ["graph"] + [f"{n} pipes" for n in PIPELINE_COUNTS] + ["scaling"],
        rows,
        title="Fig. 12: PR MTEPS vs total pipelines (OoM from full-size footprints)",
    )
    write_report("fig12_scalability", text)

    # Shape: every graph gains from more pipelines...
    for key, series in results.items():
        valid = [v for v in series if v is not None]
        assert valid[-1] > valid[0], key
    # ...and the dense synthetic graph scales at least as well as the
    # sparsest real-world one.
    r21 = [v for v in results["R21"] if v is not None]
    gg = [v for v in results["GG"] if v is not None]
    assert r21[-1] / r21[0] >= 0.8 * (gg[-1] / gg[0])
