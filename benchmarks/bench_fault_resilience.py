"""Fault-resilience benchmark: throughput degradation vs injected faults.

Sweeps PageRank on one skewed bench graph across escalating fault
scenarios — clean, bit-flip rates, a latency-spike burst, and a dead
channel forcing degradation — and reports the effective MTEPS (useful
edges over *total* simulated cycles, overhead included) plus what the
resilient layer absorbed.  The clean scenario doubles as the
zero-overhead check: it must reproduce the fault-free cycle count
exactly.

Besides the human-readable table, the sweep persists a machine-readable
``results/BENCH_resilience.json`` (schema ``regraph-bench-resilience/v1``,
the ``BENCH_fleet.json`` precedent): per-scenario MTEPS, degradation
ratio vs clean, and the absorbed-fault accounting regression dashboards
diff across commits.
"""

import json
from pathlib import Path

from repro.faults import (
    BitFlipFault,
    DeadChannelFault,
    FaultPlan,
    LatencySpikeFault,
)
from repro.reporting import format_table, write_report

from conftest import bench_framework

PR_ITERATIONS = 10

#: Versioned machine-readable output (the BENCH_fleet.json twin).
BENCH_RESILIENCE_SCHEMA = "regraph-bench-resilience/v1"
BENCH_RESILIENCE_JSON = (
    Path(__file__).parent / "results" / "BENCH_resilience.json"
)

#: (label, FaultPlan) scenarios, mildest first.
SCENARIOS = (
    ("clean", FaultPlan()),
    ("flips 0.5%", FaultPlan(
        seed=11, bit_flips=(BitFlipFault(probability=0.005),),
    )),
    ("flips 2%", FaultPlan(
        seed=11, bit_flips=(BitFlipFault(probability=0.02),),
    )),
    ("spike 16x", FaultPlan(
        seed=11, latency_spikes=(LatencySpikeFault(
            channel=0, duration_cycles=120_000.0, multiplier=16.0,
        ),),
    )),
    ("dead channel", FaultPlan(
        seed=11, dead_channels=(DeadChannelFault(
            channel=0, onset_cycle=10_000.0,
        ),),
    )),
)


def test_fault_resilience_overhead(benchmark, datasets):
    fw = bench_framework("U280", num_pipelines=6)
    pre = fw.preprocess(datasets["HD"])
    baseline = fw.run_pagerank(pre, max_iterations=PR_ITERATIONS)
    results = {}

    def run_all():
        results.clear()
        for label, plan in SCENARIOS:
            results[label] = fw.run_pagerank(
                pre, max_iterations=PR_ITERATIONS, fault_plan=plan
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, run in results.items():
        health = run.health
        rows.append([
            label,
            f"{run.mteps:,.0f}",
            f"{run.mteps / baseline.mteps:.2f}x",
            str(health.fault_count),
            str(health.retries),
            str(health.replans),
            f"{health.overhead_fraction:.0%}",
            health.final_label,
        ])
    text = format_table(
        ["scenario", "MTEPS", "vs clean", "faults", "retries",
         "re-plans", "overhead", "final"],
        rows,
        title="PR throughput under injected faults (resilient runtime)",
    )
    write_report("fault_resilience", text)

    # Zero-fault resilience costs exactly nothing.
    clean = results["clean"]
    assert clean.total_cycles == baseline.total_cycles
    # Every scenario still converges to the same fixed point.
    for label, run in results.items():
        assert run.converged, label
    # Throughput degrades monotonically with fault pressure within the
    # bit-flip family, and every faulted scenario pays some overhead.
    assert results["flips 2%"].mteps <= results["flips 0.5%"].mteps
    assert results["dead channel"].health.replans >= 1

    # The versioned machine-readable record (regraph-bench-resilience/v1).
    payload = {
        "schema": BENCH_RESILIENCE_SCHEMA,
        "app": "pagerank",
        "dataset": "HD",
        "iterations": PR_ITERATIONS,
        "baseline_mteps": baseline.mteps,
        "scenarios": {
            label: {
                "mteps": run.mteps,
                "vs_clean": run.mteps / baseline.mteps,
                "faults": run.health.fault_count,
                "retries": run.health.retries,
                "replans": run.health.replans,
                "overhead_fraction": run.health.overhead_fraction,
                "final_label": run.health.final_label,
                "converged": run.converged,
            }
            for label, run in results.items()
        },
    }
    BENCH_RESILIENCE_JSON.parent.mkdir(parents=True, exist_ok=True)
    with open(BENCH_RESILIENCE_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    data = json.loads(BENCH_RESILIENCE_JSON.read_text())
    assert data["schema"] == BENCH_RESILIENCE_SCHEMA
    assert data["scenarios"]["clean"]["vs_clean"] == 1.0
    print(f"BENCH_resilience.json: {len(data['scenarios'])} scenarios, "
          f"clean {data['baseline_mteps']:,.0f} MTEPS")
